//! Exact optimizers: subset DP, branch-and-bound, exhaustive (E5/E13, F3).

use aqo_bignum::{BigInt, BigRational, BigUint, LogNum};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, SelectivityMatrix};
use aqo_graph::generators;
use aqo_core::budget::Budget;
use aqo_optimizer::engine::DpOptions;
use aqo_optimizer::{branch_bound, dp, engine, exhaustive, ikkbz};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn instance(n: usize, seed: u64) -> QoNInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::random_connected(n, n + n / 2, &mut rng);
    let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(rng.gen_range(2u64..500))).collect();
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (u, v) in g.edges().collect::<Vec<_>>() {
        let sel = BigRational::new(BigInt::one(), BigUint::from(rng.gen_range(2u64..50)));
        s.set(u, v, sel.clone());
        for (j, k) in [(u, v), (v, u)] {
            let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
            w.set(j, k, lower.magnitude().clone());
        }
    }
    QoNInstance::new(g, sizes, s, w)
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("subset_dp");
    for n in [10usize, 14, 18] {
        let inst = instance(n, 1);
        group.bench_with_input(BenchmarkId::new("lognum", n), &n, |b, _| {
            b.iter(|| dp::optimize::<LogNum>(black_box(&inst), true));
        });
        if n <= 14 {
            group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
                b.iter(|| dp::optimize::<BigRational>(black_box(&inst), true));
            });
        }
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_engine");
    for n in [10usize, 14, 18] {
        let inst = instance(n, 1);
        for threads in [1usize, 0] {
            let label = if threads == 1 { "seq" } else { "auto" };
            let opts = DpOptions { allow_cartesian: true, threads };
            group.bench_with_input(
                BenchmarkId::new(format!("lognum_{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        engine::optimize_log_parallel(
                            black_box(&inst),
                            &opts,
                            &Budget::unlimited(),
                        )
                    });
                },
            );
            if n <= 14 {
                group.bench_with_input(
                    BenchmarkId::new(format!("two_phase_exact_{label}"), n),
                    &n,
                    |b, _| {
                        b.iter(|| {
                            engine::optimize_two_phase::<BigRational>(
                                black_box(&inst),
                                &opts,
                                &Budget::unlimited(),
                            )
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_bnb_parallel(c: &mut Criterion) {
    let inst = instance(10, 4);
    let mut group = c.benchmark_group("branch_bound_n10");
    for threads in [1usize, 0] {
        let label = if threads == 1 { "seq" } else { "auto" };
        group.bench_function(label, |b| {
            b.iter(|| {
                branch_bound::optimize_par::<BigRational>(black_box(&inst), true, threads)
            });
        });
    }
    group.finish();
}

fn bench_bnb_vs_exhaustive(c: &mut Criterion) {
    let inst = instance(8, 2);
    let mut group = c.benchmark_group("exact_search_n8");
    group.bench_function("branch_bound", |b| {
        b.iter(|| branch_bound::optimize::<LogNum>(black_box(&inst), true));
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| exhaustive::optimize::<LogNum>(black_box(&inst)));
    });
    group.finish();
}

fn bench_ikkbz(c: &mut Criterion) {
    let mut group = c.benchmark_group("ikkbz_trees");
    for n in [20usize, 60, 120] {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::random_tree(n, &mut rng);
        let sizes: Vec<BigUint> =
            (0..n).map(|_| BigUint::from(rng.gen_range(2u64..500))).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let sel = BigRational::new(BigInt::one(), BigUint::from(rng.gen_range(2u64..20)));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        let inst = QoNInstance::new(g, sizes, s, w);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ikkbz::optimize(black_box(&inst)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_dp, bench_engine, bench_bnb_parallel, bench_bnb_vs_exhaustive, bench_ikkbz
}
criterion_main!(benches);
