//! QO_N cost evaluation: exact vs log backend on reduction instances
//! (E2/E3, F3).

use aqo_bignum::{BigRational, BigUint, LogNum};
use aqo_core::JoinSequence;
use aqo_graph::generators;
use aqo_reductions::fn_reduction;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cost_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("qon_cost_eval");
    for n in [16usize, 32, 64] {
        let g = generators::dense_known_omega(n, 3 * n / 4);
        let red = fn_reduction::reduce(&g, &BigUint::from(4u64), (n / 2) as u64);
        let z = JoinSequence::identity(n);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| red.instance.total_cost::<BigRational>(black_box(&z)));
        });
        group.bench_with_input(BenchmarkId::new("log", n), &n, |b, _| {
            b.iter(|| red.instance.total_cost::<LogNum>(black_box(&z)));
        });
    }
    group.finish();
}

fn bench_k_bound(c: &mut Criterion) {
    c.bench_function("k_bound_a4_e64", |b| {
        let a = BigUint::from(4u64);
        b.iter(|| fn_reduction::k_bound(black_box(&a), 64));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_cost_eval, bench_k_bound
}
criterion_main!(benches);
