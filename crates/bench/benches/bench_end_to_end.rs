//! The full hardness chains, end to end (E6/E10, F1).

use aqo_bignum::{BigRational, BigUint};
use aqo_graph::{clique, generators};
use aqo_optimizer::dp;
use aqo_reductions::{clique_reduction, fh_reduction, fn_reduction};
use aqo_sat::generators as satgen;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_qon_chain(c: &mut Criterion) {
    c.bench_function("chain_3sat_to_qon_certificates", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        let (f, _) = satgen::planted_3sat(3, 3, &mut rng);
        b.iter(|| {
            let red_g = clique_reduction::sat_to_clique(black_box(&f));
            let omega = clique::clique_number(&red_g.graph) as u64;
            let a = BigUint::from(4u64);
            let red = fn_reduction::reduce(&red_g.graph, &a, omega - 2);
            let witness = clique::max_clique(&red_g.graph);
            let z = fn_reduction::lemma6_sequence(&red_g.graph, &witness);
            red.instance.total_cost::<BigRational>(&z)
        });
    });
}

fn bench_qon_promise_gap(c: &mut Criterion) {
    c.bench_function("qon_promise_gap_n12_exact_dp", |b| {
        let a = BigUint::from(4u64);
        let g_yes = generators::dense_known_omega(12, 9);
        let g_no = generators::dense_known_omega(12, 6);
        let red_yes = fn_reduction::reduce(&g_yes, &a, 8);
        let red_no = fn_reduction::reduce(&g_no, &a, 8);
        b.iter(|| {
            let y = dp::optimize::<BigRational>(black_box(&red_yes.instance), true).unwrap();
            let n = dp::optimize::<BigRational>(black_box(&red_no.instance), true).unwrap();
            (y.cost, n.cost)
        });
    });
}

fn bench_qoh_witness(c: &mut Criterion) {
    c.bench_function("qoh_witness_cost_n9", |b| {
        let n = 9usize;
        let bb = BigUint::from(2u64).pow(2 * n as u64);
        let g = generators::dense_known_omega(n, 2 * n / 3);
        let red = fh_reduction::reduce(&g, &bb);
        let cl = clique::max_clique(&g);
        let (z, d) = fh_reduction::lemma12_witness(&red, &cl[..2 * n / 3]);
        b.iter(|| red.instance.plan_cost_optimal_alloc(black_box(&z), &d));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_qon_chain, bench_qon_promise_gap, bench_qoh_witness
}
criterion_main!(benches);
