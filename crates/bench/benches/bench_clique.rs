//! Exact max-clique on the instance families of the reductions (E1/E4, F3).

use aqo_graph::{clique, generators};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_dense_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("max_clique_dense_min_degree");
    for n in [20usize, 40, 60] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let graph = generators::dense_min_degree_family(n, 13, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| clique::max_clique(black_box(&graph)));
        });
    }
    g.finish();
}

fn bench_gnp(c: &mut Criterion) {
    let mut g = c.benchmark_group("max_clique_gnp_05");
    for n in [20usize, 30, 40] {
        let mut rng = StdRng::seed_from_u64(7);
        let graph = generators::gnp(n, 0.5, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| clique::max_clique(black_box(&graph)));
        });
    }
    g.finish();
}

fn bench_bron_kerbosch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let graph = generators::gnp(18, 0.5, &mut rng);
    c.bench_function("bron_kerbosch_enumerate_n18", |b| {
        b.iter(|| clique::all_maximal_cliques(black_box(&graph)).len());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_dense_family, bench_gnp, bench_bron_kerbosch
}
criterion_main!(benches);
