//! Polynomial-time heuristics on adversarial instances (F2).

use aqo_bignum::{BigUint, LogNum};
use aqo_graph::generators;
use aqo_optimizer::{genetic, greedy, local_search};
use aqo_reductions::fn_reduction;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn adversarial(n: usize) -> aqo_core::qon::QoNInstance {
    let g = generators::dense_known_omega(n, 3 * n / 4);
    fn_reduction::reduce(&g, &BigUint::from(64u64), (3 * n / 4 - 1) as u64).instance
}

fn bench_greedy(c: &mut Criterion) {
    let inst = adversarial(16);
    c.bench_function("greedy_min_intermediate_n16", |b| {
        b.iter(|| greedy::min_intermediate(black_box(&inst), true));
    });
    c.bench_function("greedy_min_cost_n16", |b| {
        b.iter(|| greedy::min_incremental_cost(black_box(&inst), true));
    });
}

fn bench_sa(c: &mut Criterion) {
    let inst = adversarial(16);
    c.bench_function("simulated_annealing_3k_iters_n16", |b| {
        let params = local_search::SaParams { iterations: 3000, ..Default::default() };
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            local_search::simulated_annealing(black_box(&inst), &params, &mut rng)
        });
    });
}

fn bench_ga(c: &mut Criterion) {
    let inst = adversarial(16);
    c.bench_function("genetic_24x40_n16", |b| {
        let params = genetic::GaParams { population: 24, generations: 40, ..Default::default() };
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            genetic::optimize(black_box(&inst), &params, &mut rng)
        });
    });
}

fn bench_cost_eval_log(c: &mut Criterion) {
    let inst = adversarial(24);
    let z = aqo_core::JoinSequence::identity(24);
    c.bench_function("lognum_cost_eval_n24", |b| {
        b.iter(|| inst.total_cost::<LogNum>(black_box(&z)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_greedy, bench_sa, bench_ga, bench_cost_eval_log
}
criterion_main!(benches);
