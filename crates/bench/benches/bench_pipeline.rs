//! QO_H machinery: optimal memory allocation and the decomposition DP
//! (E7–E9, F3).

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qoh::QoHInstance;
use aqo_core::{JoinSequence, SelectivityMatrix};
use aqo_graph::Graph;
use aqo_optimizer::pipeline;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn path(n: usize, t: u64, mem: u64) -> QoHInstance {
    let mut g = Graph::new(n);
    let mut s = SelectivityMatrix::new();
    for v in 1..n {
        g.add_edge(v - 1, v);
        s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(8u64)));
    }
    QoHInstance::new(g, vec![BigUint::from(t); n], s, BigUint::from(mem))
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_allocation");
    for n in [8usize, 16, 32] {
        let inst = path(n, 4096, 4096 * (n as u64) / 2);
        let z = JoinSequence::identity(n);
        let inter: Vec<BigRational> = inst.intermediates(&z);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| inst.optimal_allocation(black_box(&z), (1, n - 1), &inter));
        });
    }
    group.finish();
}

fn bench_decomposition_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition_dp");
    for n in [8usize, 16, 32] {
        let inst = path(n, 4096, 3 * 4096);
        let z = JoinSequence::identity(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| pipeline::best_decomposition(black_box(&inst), &z));
        });
    }
    group.finish();
}

fn bench_exhaustive_qoh(c: &mut Criterion) {
    let inst = path(6, 4096, 3 * 4096);
    c.bench_function("qoh_exhaustive_n6", |b| {
        b.iter(|| pipeline::optimize_exhaustive(black_box(&inst)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_allocation, bench_decomposition_dp, bench_exhaustive_qoh
}
criterion_main!(benches);
