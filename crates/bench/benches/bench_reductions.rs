//! Construction cost of the reductions themselves (E1/E6, F3): all are
//! polynomial-time, and these benches measure the polynomials.

use aqo_bignum::BigUint;
use aqo_graph::generators;
use aqo_reductions::{clique_reduction, fh_reduction, fn_reduction, sat_to_vc};
use aqo_sat::generators as satgen;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sat_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_to_clique_chain");
    for m in [10usize, 30, 60] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let (f, _) = satgen::planted_3sat(8, m, &mut rng);
        group.bench_with_input(BenchmarkId::new("sat_to_vc", m), &m, |b, _| {
            b.iter(|| sat_to_vc::reduce(black_box(&f)));
        });
        group.bench_with_input(BenchmarkId::new("sat_to_clique", m), &m, |b, _| {
            b.iter(|| clique_reduction::sat_to_clique(black_box(&f)));
        });
    }
    group.finish();
}

fn bench_fn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fn_reduction");
    for n in [16usize, 48, 96] {
        let g = generators::dense_known_omega(n, 3 * n / 4);
        let a = BigUint::from(4u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fn_reduction::reduce(black_box(&g), &a, (n / 2) as u64));
        });
    }
    group.finish();
}

fn bench_fh(c: &mut Criterion) {
    let mut group = c.benchmark_group("fh_reduction");
    for n in [6usize, 12, 18] {
        let g = generators::dense_known_omega(n, 2 * n / 3);
        let b_param = BigUint::from(2u64).pow(2 * n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fh_reduction::reduce(black_box(&g), &b_param));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_sat_chain, bench_fn, bench_fh
}
criterion_main!(benches);
