//! The Appendix A/B chain (E14/E15, F3).

use aqo_bignum::BigUint;
use aqo_optimizer::star;
use aqo_reductions::partition::PartitionInstance;
use aqo_reductions::sppcs::{partition_to_sppcs, Normalized, SppcsInstance};
use aqo_reductions::sqo_reduction;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_partition_to_sppcs(c: &mut Criterion) {
    let p = PartitionInstance::new(vec![3, 1, 4, 1, 5, 9, 2, 6, 1, 2]);
    c.bench_function("partition_to_sppcs_10_items", |b| {
        b.iter(|| partition_to_sppcs(black_box(&p)));
    });
}

fn bench_sppcs_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("sppcs_exhaustive_solver");
    for m in [8usize, 12, 16] {
        let pairs: Vec<(BigUint, BigUint)> = (0..m)
            .map(|i| (BigUint::from(2 + (i % 5) as u64), BigUint::from(1 + (i % 7) as u64)))
            .collect();
        let inst = SppcsInstance { pairs, l: BigUint::from(25u64) };
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(&inst).is_yes());
        });
    }
    group.finish();
}

fn bench_sqo_chain(c: &mut Criterion) {
    c.bench_function("sppcs_to_sqo_star_dp_m4", |b| {
        let s = SppcsInstance {
            pairs: vec![
                (BigUint::from(2u64), BigUint::from(3u64)),
                (BigUint::from(3u64), BigUint::from(1u64)),
                (BigUint::from(2u64), BigUint::from(2u64)),
                (BigUint::from(4u64), BigUint::from(5u64)),
            ],
            l: BigUint::from(11u64),
        };
        let norm = match s.normalize() {
            Normalized::Instance(i) => i,
            Normalized::Trivial(_) => unreachable!(),
        };
        b.iter(|| {
            let red = sqo_reduction::reduce(black_box(&norm));
            star::optimize(&red.instance).1 <= red.budget
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_partition_to_sppcs, bench_sppcs_solver, bench_sqo_chain
}
criterion_main!(benches);
