//! Microbenchmarks for the bignum substrate — the inner loop of every exact
//! certification (F3 component scaling).

use aqo_bignum::{BigRational, BigUint};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("biguint_mul");
    for bits in [256u64, 2048, 16384, 65536] {
        let a = (BigUint::one() << bits) - BigUint::from(12345u64);
        let b = (BigUint::one() << bits) - BigUint::from(987u64);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| black_box(&a) * black_box(&b));
        });
    }
    g.finish();
}

fn bench_divrem(c: &mut Criterion) {
    let mut g = c.benchmark_group("biguint_divrem");
    for bits in [2048u64, 16384] {
        let a = (BigUint::one() << (2 * bits)) - BigUint::from(3u64);
        let b = (BigUint::one() << bits) - BigUint::from(7u64);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| black_box(&a).div_rem(black_box(&b)));
        });
    }
    g.finish();
}

fn bench_pow(c: &mut Criterion) {
    c.bench_function("biguint_pow_4^4096", |b| {
        let base = BigUint::from(4u64);
        b.iter(|| black_box(&base).pow(4096));
    });
}

fn bench_rational_reduce(c: &mut Criterion) {
    c.bench_function("bigrational_mul_reduced", |b| {
        let x = BigRational::new(
            aqo_bignum::BigInt::from(BigUint::from(3u64).pow(500)),
            BigUint::from(2u64).pow(800),
        );
        let y = BigRational::new(
            aqo_bignum::BigInt::from(BigUint::from(2u64).pow(700)),
            BigUint::from(3u64).pow(400),
        );
        b.iter(|| black_box(&x) * black_box(&y));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_mul, bench_divrem, bench_pow, bench_rational_reduce
}
criterion_main!(benches);
