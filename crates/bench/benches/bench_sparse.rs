//! The §6 sparse reductions (E11/E12, F3).

use aqo_bignum::BigUint;
use aqo_graph::{generators, Graph};
use aqo_reductions::sparse;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_reduce_fn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_reduce_fn");
    let alpha = BigUint::from(4u64).pow(64);
    let beta = BigUint::from(4u64);
    for (n, k) in [(3usize, 2u32), (4, 2), (3, 3)] {
        let g = Graph::complete(n);
        let m = n.pow(k);
        let target = (g.m() + m - n + 1).max(m + 4);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| sparse::reduce_fn(black_box(&g), k, target, &alpha, &beta, 2));
        });
    }
    group.finish();
}

fn bench_reduce_fh(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_reduce_fh");
    for n in [6usize, 9] {
        let g = generators::dense_known_omega(n, 2 * n / 3);
        let b_param = BigUint::from(2u64).pow((n * (n * n - n)) as u64);
        // E₂ needs at least |V₂| − 1 = n² − n − 2 edges for connectivity.
        let target = g.m() + n + 1 + (n * n - n) + 8;
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &n, |b, _| {
            b.iter(|| sparse::reduce_fh(black_box(&g), 2, target, &b_param));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_reduce_fn, bench_reduce_fh
}
criterion_main!(benches);
