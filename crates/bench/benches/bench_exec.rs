//! The execution engine (E17, F3): data generation, tuple-level execution,
//! calibration.

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, JoinSequence, SelectivityMatrix};
use aqo_exec::{Database, Executor};
use aqo_graph::Graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn chain(n: usize, t: u64, d: u64) -> QoNInstance {
    let mut g = Graph::new(n);
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for v in 1..n {
        g.add_edge(v - 1, v);
        s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(d)));
        let wv = BigUint::from((t as f64 / d as f64).ceil().max(1.0) as u64);
        w.set(v - 1, v, wv.clone());
        w.set(v, v - 1, wv);
    }
    QoNInstance::new(g, vec![BigUint::from(t); n], s, w)
}

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_generate");
    for t in [1_000u64, 10_000] {
        let inst = chain(4, t, 100);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| Database::generate(black_box(&inst), &mut rng));
        });
    }
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_run_index");
    for t in [500u64, 1_000] {
        let inst = chain(4, t, 100);
        let mut rng = StdRng::seed_from_u64(2);
        let db = Database::generate(&inst, &mut rng);
        let ex = Executor::new(&inst, &db);
        let z = JoinSequence::identity(4);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| ex.run(black_box(&z), true));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_generate, bench_execute
}
criterion_main!(benches);
