//! End-to-end tests of the `aqo` CLI binary: generate → optimize round
//! trips through the on-disk formats.

use std::process::Command;

fn aqo(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_aqo"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn gen_then_optimize_roundtrip() {
    let (ok, instance, _) = aqo(&["gen", "chain", "5", "7"]);
    assert!(ok);
    assert!(instance.starts_with("qon\n"));
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chain5.qon");
    std::fs::write(&path, &instance).unwrap();

    let (ok, dp_out, _) = aqo(&["optimize", path.to_str().unwrap()]);
    assert!(ok, "dp optimize failed");
    assert!(dp_out.contains("cost"));

    // Exhaustive must agree with the DP on the reported cost line.
    let (ok, ex_out, _) = aqo(&["optimize", path.to_str().unwrap(), "--method", "exhaustive"]);
    assert!(ok);
    let cost_of = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("cost"))
            .map(|l| l.split(':').nth(1).unwrap().trim().to_string())
            .expect("cost line")
    };
    assert_eq!(cost_of(&dp_out), cost_of(&ex_out));

    // IKKBZ applies (chains are trees) and may not beat the exact optimum.
    let (ok, ik_out, _) = aqo(&["optimize", path.to_str().unwrap(), "--method", "ikkbz"]);
    assert!(ok);
    assert_eq!(cost_of(&ik_out), cost_of(&dp_out), "trees: IKKBZ is exact");
}

#[test]
fn optimize_with_threads_matches_sequential_cost() {
    let (ok, instance, _) = aqo(&["gen", "cycle", "6", "11"]);
    assert!(ok);
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cycle6.qon");
    std::fs::write(&path, &instance).unwrap();

    let cost_of = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("cost"))
            .map(|l| l.split(':').nth(1).unwrap().trim().to_string())
            .expect("cost line")
    };
    let (ok, seq_out, err) = aqo(&["optimize", path.to_str().unwrap(), "--threads", "1"]);
    assert!(ok, "stderr: {err}");
    for threads in ["2", "0"] {
        for method in ["dp", "bnb", "exhaustive"] {
            let (ok, par_out, err) = aqo(&[
                "optimize",
                path.to_str().unwrap(),
                "--method",
                method,
                "--threads",
                threads,
            ]);
            assert!(ok, "{method} --threads {threads} failed: {err}");
            assert_eq!(
                cost_of(&seq_out),
                cost_of(&par_out),
                "{method} --threads {threads} changed the optimum"
            );
        }
    }
}

#[test]
fn bench_quick_writes_wellformed_json() {
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("BENCH_optimizer.json");
    let (ok, stdout, err) = aqo(&[
        "bench",
        "--quick",
        "--threads",
        "2",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(ok, "bench failed: {err}");
    assert!(stdout.contains("wrote"), "stdout: {stdout}");
    let json = std::fs::read_to_string(&out_path).expect("bench JSON written");
    assert!(json.contains("\"schema\": \"aqo-bench-optimizer/v3\""), "json: {json}");
    assert!(json.contains("\"records\""));
    assert!(json.contains("\"median_ms\""));
    assert!(json.contains("\"speedup\""));
    assert!(json.contains("\"metrics\""), "v2+ records embed metrics: {json}");
    assert!(
        json.contains("optimizer.dp.subsets_expanded"),
        "dp cross-check run captured counters: {json}"
    );
    assert!(
        json.contains("\"algo\": \"ccp\"") && json.contains("optimizer.ccp.subsets_expanded"),
        "v3 benches a ccp cell with its counters: {json}"
    );
    // Structural sanity: balanced braces/brackets, non-empty records array.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.matches("\"family\"").count() >= 4, "too few records: {json}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (ok, _, err) = aqo(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("usage"));
}

#[test]
fn value_flags_without_value_are_usage_errors() {
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("badflags.qon");
    let (ok, instance, _) = aqo(&["gen", "chain", "4", "1"]);
    assert!(ok);
    std::fs::write(&path, &instance).unwrap();

    for flag in [
        "--trace-json",
        "--report-json",
        "--threads",
        "--timeout-ms",
        "--max-expansions",
        "--fallback",
    ] {
        let (ok, _, err) = aqo(&["optimize", path.to_str().unwrap(), flag]);
        assert!(!ok, "{flag} without value should fail");
        assert!(err.contains("requires a value"), "{flag}: stderr was {err}");
        let (ok, _, err) = aqo(&["optimize-qoh", path.to_str().unwrap(), flag]);
        assert!(!ok, "optimize-qoh {flag} without value should fail");
        assert!(err.contains("requires a value"), "{flag}: stderr was {err}");
    }
    let (ok, _, err) = aqo(&["bench", "--out"]);
    assert!(!ok, "--out without value should fail");
    assert!(err.contains("requires a value"), "stderr was {err}");
}

#[test]
fn trace_json_and_metrics_roundtrip_through_trace_check() {
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let qon = dir.join("trace8.qon");
    let trace = dir.join("trace8.jsonl");
    let (ok, instance, _) = aqo(&["gen", "chain", "8", "5"]);
    assert!(ok);
    std::fs::write(&qon, &instance).unwrap();

    let (ok, _, err) = aqo(&[
        "optimize",
        qon.to_str().unwrap(),
        "--threads",
        "2",
        "--metrics",
        "--trace-json",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {err}");
    assert!(err.contains("metrics:"), "--metrics prints the summary: {err}");
    assert!(err.contains("optimizer.engine.subsets_expanded"), "stderr: {err}");

    let (ok, out, err) = aqo(&["trace-check", trace.to_str().unwrap()]);
    assert!(ok, "trace-check failed: {err}");
    assert!(out.contains("tier_start"), "stdout: {out}");
    assert!(out.contains("span"), "stdout: {out}");
    assert!(out.trim_end().ends_with("ok"), "stdout: {out}");
}

#[test]
fn trace_check_rejects_garbage_and_missing_events() {
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("garbage.jsonl");
    std::fs::write(&bad, "not json at all\n").unwrap();
    let (ok, _, _) = aqo(&["trace-check", bad.to_str().unwrap()]);
    assert!(!ok, "garbage journal must fail validation");

    let empty_types = dir.join("nospans.jsonl");
    std::fs::write(&empty_types, "{\"seq\": 0, \"us\": 1, \"type\": \"budget\"}\n").unwrap();
    let (ok, _, err) = aqo(&["trace-check", empty_types.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("span"), "stderr: {err}");

    // A journal with driver activity but no tier_start is broken.
    let no_tier_start = dir.join("notierstart.jsonl");
    std::fs::write(
        &no_tier_start,
        "{\"seq\": 0, \"us\": 1, \"type\": \"span\", \"name\": \"x\"}\n\
         {\"seq\": 1, \"us\": 2, \"type\": \"fallback\"}\n",
    )
    .unwrap();
    let (ok, _, err) = aqo(&["trace-check", no_tier_start.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("tier_start"), "stderr: {err}");
}

#[test]
fn trace_check_accepts_explicit_method_journal() {
    // `--method dp` bypasses the driver, so its journal has spans but no
    // tier events; trace-check must still accept what the tool itself wrote.
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let qon = dir.join("explicit8.qon");
    let trace = dir.join("explicit8.jsonl");
    let (ok, instance, _) = aqo(&["gen", "chain", "8", "3"]);
    assert!(ok);
    std::fs::write(&qon, &instance).unwrap();

    let (ok, _, err) = aqo(&[
        "optimize",
        qon.to_str().unwrap(),
        "--method",
        "dp",
        "--trace-json",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {err}");

    let (ok, out, err) = aqo(&["trace-check", trace.to_str().unwrap()]);
    assert!(ok, "trace-check rejected an explicit-method journal: {err}");
    assert!(out.contains("span"), "stdout: {out}");
    assert!(out.trim_end().ends_with("ok"), "stdout: {out}");
}

#[test]
fn report_json_is_machine_readable() {
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let qon = dir.join("report6.qon");
    let report = dir.join("report6.json");
    let (ok, instance, _) = aqo(&["gen", "chain", "6", "2"]);
    assert!(ok);
    std::fs::write(&qon, &instance).unwrap();

    let (ok, _, err) = aqo(&[
        "optimize",
        qon.to_str().unwrap(),
        "--report-json",
        report.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {err}");
    let json = std::fs::read_to_string(&report).expect("report written");
    assert!(json.contains("\"tier\": \"dp\""), "json: {json}");
    assert!(json.contains("\"exact\": true"), "json: {json}");
    assert!(json.contains("\"failures\": []"), "json: {json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn injected_faults_appear_in_trace_journal() {
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let qon = dir.join("faults6.qon");
    let trace = dir.join("faults6.jsonl");
    let (ok, instance, _) = aqo(&["gen", "chain", "6", "9"]);
    assert!(ok);
    std::fs::write(&qon, &instance).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_aqo"))
        .args([
            "optimize",
            qon.to_str().unwrap(),
            "--trace-json",
            trace.to_str().unwrap(),
            "--metrics",
        ])
        .env("AQO_FAULTS", "qon::dp=err*2")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("faults.injected.qon::dp"), "stderr: {stderr}");

    let journal = std::fs::read_to_string(&trace).expect("trace written");
    let injected = journal
        .lines()
        .filter(|l| l.contains("\"type\": \"fault_injected\""))
        .count();
    assert_eq!(injected, 2, "two transient faults were injected: {journal}");
    let retries = journal.lines().filter(|l| l.contains("\"type\": \"retry\"")).count();
    assert_eq!(retries, 2, "each injection triggered a retry: {journal}");
}

#[test]
fn clique_subcommand_on_dimacs() {
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("k4.dimacs");
    std::fs::write(&path, "p edge 5 6\ne 1 2\ne 1 3\ne 1 4\ne 2 3\ne 2 4\ne 3 4\n").unwrap();
    let (ok, out, _) = aqo(&["clique", path.to_str().unwrap()]);
    assert!(ok);
    assert!(out.contains("omega  : 4"), "output: {out}");
}

#[test]
fn reduce_3sat_emits_instance() {
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.cnf");
    std::fs::write(&path, "p cnf 3 2\n1 2 3 0\n-1 2 -3 0\n").unwrap();
    let (ok, out, err) = aqo(&["reduce-3sat", path.to_str().unwrap()]);
    assert!(ok, "stderr: {err}");
    assert!(out.starts_with("qon\n"));
    assert!(err.contains("Lemma 3"));
    // The emitted instance parses back.
    let inst = aqo_core::textio::qon_from_text(&out).unwrap();
    assert!(inst.n() > 0);
}

#[test]
fn analyze_subcommand_gates_clean_and_emits_json() {
    // From inside the workspace the linter finds the root and the
    // committed baseline by itself; the tree must gate clean.
    let out = Command::new(env!("CARGO_BIN_EXE_aqo"))
        .args(["analyze", "--json"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "analyze regressed: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"aqo-analyze/v2\""), "{stdout}");
    assert!(stderr.contains("0 regressions"), "{stderr}");

    // Linter usage errors exit 2 and do NOT print the aqo usage banner
    // (findings and linter flags are aqo-analyze's own surface).
    let out = Command::new(env!("CARGO_BIN_EXE_aqo"))
        .args(["analyze", "--frobnicate"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("unknown flag"), "{stderr}");
}

#[test]
fn version_flag_prints_version_and_exits_zero() {
    for flag in ["--version", "-V"] {
        let (ok, out, err) = aqo(&[flag]);
        assert!(ok, "{flag} must exit 0: {err}");
        assert_eq!(out.trim(), concat!("aqo ", env!("CARGO_PKG_VERSION")));
        assert!(err.is_empty(), "{flag} prints nothing to stderr: {err}");
    }
}

#[test]
fn bare_invocation_prints_full_synopsis() {
    let (ok, _, err) = aqo(&[]);
    assert!(!ok, "bare `aqo` exits nonzero");
    assert!(err.contains("missing subcommand"), "{err}");
    // The synopsis must enumerate every subcommand, including the
    // service surface, so operators can discover it from the banner.
    for cmd in [
        "aqo gen", "aqo optimize", "aqo optimize-qoh", "aqo serve", "aqo request",
        "aqo loadgen", "aqo bench", "aqo trace-check", "aqo analyze", "aqo reduce-3sat",
        "aqo clique", "--version",
    ] {
        assert!(err.contains(cmd), "synopsis is missing `{cmd}`:\n{err}");
    }
}

#[test]
fn unknown_subcommand_is_named_in_the_error() {
    let (ok, _, err) = aqo(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown subcommand `frobnicate`"), "{err}");
    assert!(err.contains("usage:"), "bad invocations still get the banner: {err}");
}

#[test]
fn ccp_method_matches_dp_and_enforces_no_cartesian() {
    let (ok, instance, _) = aqo(&["gen", "cycle", "9", "17"]);
    assert!(ok);
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cycle9.qon");
    std::fs::write(&path, &instance).unwrap();
    let cost_of = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("cost"))
            .map(|l| l.split(':').nth(1).unwrap().trim().to_string())
            .expect("cost line")
    };

    let (ok, dp_out, err) =
        aqo(&["optimize", path.to_str().unwrap(), "--method", "dp", "--no-cartesian"]);
    assert!(ok, "stderr: {err}");
    for threads in ["1", "2"] {
        let (ok, ccp_out, err) = aqo(&[
            "optimize",
            path.to_str().unwrap(),
            "--method",
            "ccp",
            "--no-cartesian",
            "--threads",
            threads,
        ]);
        assert!(ok, "ccp --threads {threads} failed: {err}");
        assert_eq!(cost_of(&dp_out), cost_of(&ccp_out), "ccp must be exact");
    }

    // Without --no-cartesian the connected-only enumeration would not be
    // exact, so the CLI must refuse up front (usage error, banner shown).
    let (ok, _, err) = aqo(&["optimize", path.to_str().unwrap(), "--method", "ccp"]);
    assert!(!ok);
    assert!(err.contains("--no-cartesian"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn oversized_instances_get_structured_rejections_not_mask_wraparound() {
    let dir = std::env::temp_dir().join("aqo_cli_test");
    std::fs::create_dir_all(&dir).unwrap();

    // n = 28: over the dp cap, inside the ccp cap. dp must refuse with a
    // structured error (no usage banner — the invocation was fine); ccp
    // must just answer.
    let (ok, instance, _) = aqo(&["gen", "chain", "28", "5"]);
    assert!(ok);
    let p28 = dir.join("chain28.qon");
    std::fs::write(&p28, &instance).unwrap();
    let (ok, _, err) =
        aqo(&["optimize", p28.to_str().unwrap(), "--method", "dp", "--no-cartesian"]);
    assert!(!ok);
    assert!(err.contains("handles n <="), "{err}");
    assert!(!err.contains("usage:"), "not a usage error: {err}");
    let (ok, out, err) =
        aqo(&["optimize", p28.to_str().unwrap(), "--method", "ccp", "--no-cartesian"]);
    assert!(ok, "ccp handles the 28-chain: {err}");
    assert!(out.contains("DPccp"), "{out}");

    // n = 33: past every u32-mask method, including ccp.
    let (ok, instance, _) = aqo(&["gen", "chain", "33", "5"]);
    assert!(ok);
    let p33 = dir.join("chain33.qon");
    std::fs::write(&p33, &instance).unwrap();
    for method in ["dp", "ccp"] {
        let (ok, _, err) =
            aqo(&["optimize", p33.to_str().unwrap(), "--method", method, "--no-cartesian"]);
        assert!(!ok, "{method} must reject n = 33");
        assert!(err.contains("handles n <="), "{method}: {err}");
    }
    // The polynomial methods still answer at n = 33.
    let (ok, _, err) =
        aqo(&["optimize", p33.to_str().unwrap(), "--method", "greedy", "--no-cartesian"]);
    assert!(ok, "greedy at n = 33: {err}");
}
