//! End-to-end CLI tests for the budgeted driver flags: the `aqo` binary
//! must degrade gracefully (exit 0, valid plan, report on stderr) under
//! tiny budgets and injected faults, and reproduce the direct DP answer
//! under generous ones.

use std::path::PathBuf;
use std::process::{Command, Output};

fn aqo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aqo"))
}

fn run_checked(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn aqo");
    assert!(
        out.status.success(),
        "aqo failed ({:?}):\nstdout: {}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

/// Generates a `.qon` instance into the target tmp dir and returns its path.
fn gen_instance(shape: &str, n: usize, seed: u64) -> PathBuf {
    let out = run_checked(aqo().args(["gen", shape, &n.to_string(), &seed.to_string()]));
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join(format!("cli_driver_{shape}_{n}_{seed}.qon"));
    std::fs::write(&path, &out.stdout).expect("write instance");
    path
}

fn stdout_cost(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find(|l| l.starts_with("cost"))
        .expect("cost line")
        .to_string()
}

#[test]
fn tiny_timeout_on_clique_degrades_and_exits_zero() {
    let path = gen_instance("clique", 14, 7);
    let out = run_checked(aqo().args([
        "optimize",
        path.to_str().unwrap(),
        "--timeout-ms",
        "0",
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("driver (greedy tier)"), "stdout: {stdout}");
    assert!(stderr.contains("tier=greedy"), "stderr: {stderr}");
    assert!(stderr.contains("kind=heuristic"), "stderr: {stderr}");
    assert!(stderr.contains("degraded-past="), "stderr: {stderr}");
}

#[test]
fn injected_dp_panic_still_exits_zero_with_valid_plan() {
    let path = gen_instance("clique", 8, 3);
    let out = run_checked(
        aqo()
            .args(["optimize", path.to_str().unwrap(), "--max-expansions", "100000000"])
            .env("AQO_FAULTS", "qon::dp=panic"),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("driver (bnb tier)"), "stdout: {stdout}");
    assert!(stderr.contains("dp attempt 1: panic"), "stderr: {stderr}");

    // The surviving exact tier answers with the true optimum: compare
    // against a plain `--method dp` run of the same instance.
    let direct = run_checked(aqo().args(["optimize", path.to_str().unwrap(), "--method", "dp"]));
    assert_eq!(stdout_cost(&out), stdout_cost(&direct));
}

#[test]
fn generous_budget_matches_direct_dp_bit_for_bit() {
    let path = gen_instance("cycle", 10, 11);
    let budgeted = run_checked(aqo().args([
        "optimize",
        path.to_str().unwrap(),
        "--timeout-ms",
        "600000",
        "--max-expansions",
        "1000000000",
    ]));
    assert!(String::from_utf8_lossy(&budgeted.stdout).contains("driver (dp tier)"));
    let direct = run_checked(aqo().args(["optimize", path.to_str().unwrap(), "--method", "dp"]));
    assert_eq!(stdout_cost(&budgeted), stdout_cost(&direct));
}

#[test]
fn custom_fallback_chain_is_respected() {
    let path = gen_instance("chain", 9, 1);
    // Chain without dp: bnb answers under a generous budget.
    let out = run_checked(aqo().args([
        "optimize",
        path.to_str().unwrap(),
        "--fallback",
        "bnb,greedy",
    ]));
    assert!(String::from_utf8_lossy(&out.stdout).contains("driver (bnb tier)"));

    // An unknown tier is a usage error: nonzero exit, usage on stderr.
    let bad = aqo()
        .args(["optimize", path.to_str().unwrap(), "--fallback", "oracle"])
        .output()
        .expect("spawn aqo");
    assert!(!bad.status.success());
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("unknown tier"), "stderr: {stderr}");
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn malformed_faults_spec_is_reported() {
    let path = gen_instance("chain", 5, 2);
    let out = aqo()
        .args(["optimize", path.to_str().unwrap()])
        .env("AQO_FAULTS", "qon::dp=warble")
        .output()
        .expect("spawn aqo");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("AQO_FAULTS"), "stderr: {stderr}");
}
