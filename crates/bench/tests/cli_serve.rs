//! End-to-end tests of the service surface of the `aqo` binary: a real
//! `aqo serve` process on a loopback port driven by `aqo request` and
//! `aqo loadgen`, plus the `--stdio` transport with `AQO_FAULTS` armed.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

fn aqo(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_aqo")).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Spawns `aqo serve` on an OS-assigned port and scrapes the port from
/// the startup line on stderr.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_aqo"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines.next().expect("startup line").expect("readable stderr");
        if let Some(rest) = line.strip_prefix("serve: listening on ") {
            break rest.to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn write_instance(name: &str, content: &str) -> String {
    let dir = std::env::temp_dir().join("aqo_cli_serve_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path.to_str().unwrap().to_string()
}

#[test]
fn serve_request_loadgen_roundtrip() {
    let (ok, qon, _) = aqo(&["gen", "chain", "6", "3"]);
    assert!(ok);
    let qon_path = write_instance("chain6.qon", &qon);

    let (mut child, addr) = spawn_serve(&["--threads", "2"]);

    let (ok, out, err) = aqo(&["request", &addr, "optimize", &qon_path]);
    assert!(ok, "request failed: {err}");
    assert!(out.contains("\"ok\": true"), "unexpected response: {out}");
    assert!(out.contains("\"tier\""), "response names the answering tier: {out}");

    // The identical instance again: the plan must come from the cache.
    let (ok, out, _) = aqo(&["request", &addr, "optimize", &qon_path]);
    assert!(ok);
    assert!(out.contains("\"cached\": true"), "second request not cached: {out}");

    // Explain rides the same instance and carries the walkthrough text.
    let (ok, out, _) = aqo(&["request", &addr, "explain", &qon_path]);
    assert!(ok);
    assert!(out.contains("\"explain\""), "no explain text: {out}");

    // A small loadgen against the same live server: zero wrong costs is
    // a hard exit-code requirement of the subcommand.
    let out_path = write_instance("bench_cli.json", "");
    let (ok, out, err) = aqo(&[
        "loadgen",
        "--addr",
        &addr,
        "--requests",
        "6",
        "--concurrency",
        "1,2",
        "--mix",
        "qon",
        "--pool",
        "2",
        "--out",
        &out_path,
    ]);
    assert!(ok, "loadgen failed: {err}");
    assert!(out.contains("wrong_cost=0"), "loadgen saw wrong costs: {out}");
    let bench = std::fs::read_to_string(&out_path).unwrap();
    assert!(bench.contains("\"schema\": \"aqo-bench-serve/v2\""));
    assert!(bench.contains("\"p999_us\""), "v2 rows carry tail quantiles: {bench}");

    let (ok, out, _) = aqo(&["request", &addr, "status"]);
    assert!(ok);
    assert!(out.contains("\"cache\""), "status carries cache counters: {out}");

    let (ok, out, _) = aqo(&["request", &addr, "shutdown"]);
    assert!(ok);
    assert!(out.contains("draining"), "shutdown ack: {out}");
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exits cleanly after shutdown");
}

#[test]
fn remote_errors_fail_without_usage_banner() {
    let (mut child, addr) = spawn_serve(&[]);
    // A qoh payload declared as qon: the server answers a structured
    // parse/usage error; the client exits nonzero, repeats the error, and
    // must NOT dump the usage banner (the invocation itself was fine).
    let bad = write_instance("bad.qon", "definitely not a qon instance\n");
    let (ok, _, err) = aqo(&["request", &addr, "optimize", &bad]);
    assert!(!ok);
    assert!(err.contains("server error"), "stderr: {err}");
    assert!(!err.contains("usage:"), "usage banner on a remote error: {err}");
    let (ok, _, _) = aqo(&["request", &addr, "shutdown"]);
    assert!(ok);
    child.wait().expect("serve exits");
}

#[test]
fn stdio_transport_with_armed_faults_returns_structured_error() {
    let (ok, qon, _) = aqo(&["gen", "chain", "5", "5"]);
    assert!(ok);
    let mut req = String::from("{\"op\": \"optimize\", \"id\": 1, \"instance\": ");
    // Reuse the binary's own JSON by hand: escape the instance text.
    req.push('"');
    for c in qon.chars() {
        match c {
            '"' => req.push_str("\\\""),
            '\\' => req.push_str("\\\\"),
            '\n' => req.push_str("\\n"),
            c => req.push(c),
        }
    }
    req.push_str("\"}\n");

    let mut child = Command::new(env!("CARGO_BIN_EXE_aqo"))
        .args(["serve", "--stdio"])
        .env("AQO_FAULTS", "serve::request=err*1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("stdio serve spawns");
    let mut stdin = child.stdin.take().expect("piped stdin");
    // Same request twice: the armed fault fails the first, the second
    // proves the loop survived; then shutdown ends the session.
    stdin.write_all(req.as_bytes()).unwrap();
    stdin.write_all(req.as_bytes()).unwrap();
    stdin.write_all(b"{\"op\": \"shutdown\", \"id\": 3}\n").unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("stdio serve exits");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "three replies: {stdout}");
    assert!(
        lines[0].contains("\"kind\": \"injected\""),
        "first reply carries the injected fault: {}",
        lines[0]
    );
    assert!(lines[1].contains("\"ok\": true"), "second reply succeeds: {}", lines[1]);
    assert!(lines[2].contains("draining"), "shutdown ack: {}", lines[2]);
}
