//! Experiment driver for the reproduction.
//!
//! The paper contains no numbered tables or figures — its "evaluation" is a
//! chain of lemmas and theorems. Each module under [`experiments`]
//! regenerates the empirical counterpart of one statement (the experiment
//! index lives in DESIGN.md §6); the `experiments` binary prints every
//! table, and `--markdown` emits the EXPERIMENTS.md body.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod optbench;
pub mod table;

pub use table::Table;

/// A registered experiment.
pub struct Experiment {
    /// Identifier from DESIGN.md §6 (e.g. "E6").
    pub id: &'static str,
    /// The paper statement being reproduced.
    pub paper_ref: &'static str,
    /// Runs the experiment, returning one or more result tables.
    pub run: fn() -> Vec<Table>,
}

/// All experiments, in DESIGN.md order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment { id: "E1", paper_ref: "Lemma 3 (3SAT → CLIQUE gap)", run: experiments::lemma3::run },
        Experiment { id: "E2", paper_ref: "Lemma 5 (decay of H_i past the clique prefix)", run: experiments::lemma5::run },
        Experiment { id: "E3", paper_ref: "Lemma 6 (upper bound K_{c,d})", run: experiments::lemma6::run },
        Experiment { id: "E4", paper_ref: "Lemma 7 (edge bound from the clique number)", run: experiments::lemma7::run },
        Experiment { id: "E5", paper_ref: "Lemma 8 (certified lower bound)", run: experiments::lemma8::run },
        Experiment { id: "E6", paper_ref: "Theorem 9 (QO_N inapproximability gap)", run: experiments::thm9::run },
        Experiment { id: "E7", paper_ref: "Lemma 10 (optimal pipeline memory allocation)", run: experiments::lemma10::run },
        Experiment { id: "E8", paper_ref: "Lemmas 11–12 (QO_H upper bound O(L))", run: experiments::lemma12::run },
        Experiment { id: "E9", paper_ref: "Lemmas 13–14 (QO_H lower bound Ω(G))", run: experiments::lemma13::run },
        Experiment { id: "E10", paper_ref: "Theorem 15 (QO_H inapproximability gap)", run: experiments::thm15::run },
        Experiment { id: "E11", paper_ref: "Theorem 16 (sparse QO_N)", run: experiments::sparse_n::run },
        Experiment { id: "E12", paper_ref: "Theorem 17 (sparse QO_H)", run: experiments::sparse_h::run },
        Experiment { id: "E13", paper_ref: "§6.3 (tree queries are polynomial: IKKBZ)", run: experiments::ikkbz_easy::run },
        Experiment { id: "E14", paper_ref: "Appendix A (PARTITION → SPPCS)", run: experiments::appendix_a::run },
        Experiment { id: "E15", paper_ref: "Appendix B (SPPCS → SQO−CP)", run: experiments::appendix_b::run },
        Experiment { id: "E16", paper_ref: "Certificate decoding (constructive NP-hardness)", run: experiments::decoding::run },
        Experiment { id: "E17", paper_ref: "Cost-model calibration (§2.1 estimates vs real executions)", run: experiments::calibration::run },
        Experiment { id: "F1", paper_ref: "Headline gap figure (log₂ gap vs log₂ K)", run: experiments::figure_gap::run },
        Experiment { id: "F2", paper_ref: "Heuristic competitive ratios, adversarial vs random", run: experiments::figure_heuristics::run },
    ]
}
