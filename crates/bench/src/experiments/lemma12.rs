//! E8 — Lemmas 11–12: on the `f_H` instance of a graph with a `2n/3`
//! clique, the five-pipeline witness plan costs `O(L(a,n))`, and the five
//! materialized intermediates are each `O(L)`.

use crate::table::{cell, log2_cell, verdict, Table};
use aqo_bignum::BigRational;
use aqo_graph::{clique, generators};
use aqo_reductions::fh_reduction;

/// Runs E8.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E8 / Lemmas 11–12 — witness plan cost is O(L), intermediates O(L)",
        &["n", "log₂ a", "log₂ L", "log₂ C(witness)", "C ≤ 16·L", "max boundary N_j ≤ 4·L", "verdict"],
    );
    for n in [6usize, 9, 12, 15] {
        let b = aqo_bignum::BigUint::from(2u64).pow(2 * n as u64);
        let g = generators::dense_known_omega(n, 2 * n / 3);
        let red = fh_reduction::reduce(&g, &b);
        let c = clique::max_clique(&g);
        assert!(c.len() >= 2 * n / 3);
        let (z, decomp) = fh_reduction::lemma12_witness(&red, &c[..2 * n / 3]);
        let cost = red.instance.plan_cost_optimal_alloc(&z, &decomp).expect("feasible");
        let l = BigRational::from(fh_reduction::l_bound(&red));
        let inter: Vec<BigRational> = red.instance.intermediates(&z);
        // The five boundary intermediates of the Lemma 12 decomposition.
        let max_boundary = decomp
            .fragments()
            .iter()
            .map(|&(_, k)| inter[k].clone())
            .max()
            .expect("five fragments");
        let cost_ok = cost <= &l * &BigRational::from(16u64);
        let boundary_ok = max_boundary <= &l * &BigRational::from(4u64);
        t.row(vec![
            cell(n),
            format!("{:.0}", red.a.log2()),
            log2_cell(l.log2()),
            log2_cell(cost.log2()),
            cell(cost_ok),
            cell(boundary_ok),
            verdict(cost_ok && boundary_ok),
        ]);
    }
    t.note("L(a,n) = t₀·a^{n²/9}. Lemma 11 bounds N₁, N_{n/3}, N_{2n/3}, N_{n−1}, N_n — precisely the five materialization boundaries of Lemma 12's decomposition P₁…P₅ — by O(L); the constants here are measured at ≤ 16 and ≤ 4.");
    vec![t]
}
