//! E17 — cost-model calibration: the §2.1 estimates against real
//! executions of the same plans on synthetic data (the independence regime
//! in which the paper's `N(X)` is the exact expectation).

use crate::table::{cell, verdict, Table};
use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, JoinSequence, SelectivityMatrix};
use aqo_exec::validate::calibrate;
use aqo_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(shape: &str) -> (QoNInstance, JoinSequence) {
    let (edges, sizes, doms): (Vec<(usize, usize)>, Vec<u64>, Vec<u64>) = match shape {
        "chain" => (
            vec![(0, 1), (1, 2), (2, 3)],
            vec![500, 400, 300, 200],
            vec![100, 150, 100],
        ),
        "star" => (
            vec![(0, 1), (0, 2), (0, 3)],
            vec![1000, 300, 300, 300],
            vec![150, 150, 150],
        ),
        "cycle" => (
            vec![(0, 1), (1, 2), (2, 3), (0, 3)],
            vec![400, 400, 400, 400],
            vec![100, 100, 100, 50],
        ),
        _ => unreachable!(),
    };
    let n = sizes.len();
    let g = Graph::from_edges(n, &edges);
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (&(u, v), &d) in edges.iter().zip(&doms) {
        s.set(u, v, BigRational::new(BigInt::one(), BigUint::from(d)));
        w.set(u, v, BigUint::from((sizes[u] as f64 / d as f64).ceil().max(1.0) as u64));
        w.set(v, u, BigUint::from((sizes[v] as f64 / d as f64).ceil().max(1.0) as u64));
    }
    let sizes = sizes.into_iter().map(BigUint::from).collect();
    (QoNInstance::new(g, sizes, s, w), JoinSequence::identity(n))
}

/// Runs E17.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E17 — §2.1 estimates vs measured execution (independent uniform join columns)",
        &["query shape", "trials", "worst N error", "C(Z) error", "predicted C", "measured work", "verdict"],
    );
    let mut rng = StdRng::seed_from_u64(0xE17);
    for shape in ["chain", "star", "cycle"] {
        let (inst, z) = instance(shape);
        let cal = calibrate(&inst, &z, 5, &mut rng);
        let n_err = cal.worst_intermediate_error(100.0);
        let c_err = cal.cost_error();
        let ok = n_err < 0.2 && c_err < 0.25;
        t.row(vec![
            shape.into(),
            cell(cal.trials),
            format!("{:.1}%", n_err * 100.0),
            format!("{:.1}%", c_err * 100.0),
            format!("{:.0}", cal.predicted_cost),
            format!("{:.0}", cal.measured_work),
            verdict(ok),
        ]);
    }
    t.note("The engine executes the plans tuple-by-tuple on synthetic data whose join columns have exactly the declared selectivities; N(X) is then the true expectation, and H_i's per-outer-tuple probe counts match the access-cost entries w = ⌈t·s⌉. This is the regime the paper's cost model assumes — the hardness results say optimizing even this *ideal* model is intractable.");

    // E17b: the §2.2 g-shape, measured from a hybrid-hash spill simulation.
    let mut t2 = Table::new(
        "E17b — §2.2's g(m, b_S): hybrid-hash spill fraction vs memory",
        &["b_S (pages)", "g at min memory", "g at b_S", "monotone", "max deviation from linear", "verdict"],
    );
    for build in [512usize, 1024, 2048] {
        let curve = aqo_exec::hashjoin::g_curve(build, 2 * build, 16, 9, 8, &mut rng);
        let g_min = curve.first().unwrap().1;
        let g_max_mem = curve.last().unwrap().1;
        let monotone = curve.windows(2).all(|w| w[1].1 <= w[0].1 + 0.03);
        let (x0, y0) = curve[0];
        let (x1, y1) = *curve.last().unwrap();
        let max_dev = curve[1..curve.len() - 1]
            .iter()
            .map(|&(x, y)| {
                let tt = (x - x0) as f64 / (x1 - x0) as f64;
                (y - (y0 + tt * (y1 - y0))).abs()
            })
            .fold(0.0f64, f64::max);
        let ok = g_min > 0.85 && g_max_mem == 0.0 && monotone && max_dev < 0.15;
        t2.row(vec![
            cell(build),
            format!("{g_min:.3}"),
            format!("{g_max_mem:.3}"),
            cell(monotone),
            format!("{max_dev:.3}"),
            verdict(ok),
        ]);
    }
    t2.note("The simulator spills whole hash partitions when memory runs short; the measured spill-I/O fraction reproduces every constraint §2.2 places on g — linear decreasing, Θ(1) at minimum memory, 0 at m ≥ b_S — so the paper's abstraction is the right envelope of the mechanism.");
    vec![t, t2]
}
