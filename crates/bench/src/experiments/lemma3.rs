//! E1 — Lemma 3: the 3SAT → CLIQUE reduction maps the MaxSAT gap onto a
//! clique-number gap, `ω = 5v + 4m − u` with `u` the minimum number of
//! unsatisfied clauses.

use crate::table::{cell, verdict, Table};
use aqo_graph::clique;
use aqo_reductions::clique_reduction;
use aqo_sat::{generators, maxsat, CnfFormula};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_family(t: &mut Table, label: &str, f: &CnfFormula) {
    let u = f.num_clauses() - maxsat::max_sat(f).max_satisfied;
    let red = clique_reduction::sat_to_clique(f);
    let omega = clique::clique_number(&red.graph);
    let predicted = red.predicted_omega(u);
    t.row(vec![
        label.into(),
        cell(f.num_vars()),
        cell(f.num_clauses()),
        cell(u),
        cell(predicted),
        cell(omega),
        verdict(omega == predicted),
    ]);
}

/// Runs E1.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E1 / Lemma 3 — ω(f(F)) = 5v + 4m − minUnsat(F)",
        &["formula", "v", "m", "minUnsat", "predicted ω", "measured ω", "verdict"],
    );
    let mut rng = StdRng::seed_from_u64(0xE1);
    for i in 0..3 {
        let (f, _) = generators::planted_3sat(4, 4 + i, &mut rng);
        run_family(&mut t, &format!("planted-sat #{i}"), &f);
    }
    run_family(&mut t, "contradiction ×1 (u=1)", &generators::contradiction_blocks(1));
    for i in 0..2 {
        let f = generators::random_3sat(3, 6, &mut rng);
        run_family(&mut t, &format!("random #{i}"), &f);
    }
    t.note("satisfiable formulas reach ω = 5v+4m exactly; every unsatisfied clause of the best assignment costs one clique vertex (Lemma 3's gap).");
    vec![t]
}
