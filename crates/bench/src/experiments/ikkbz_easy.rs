//! E13 — the §6.3 contrast: acyclic (tree) query graphs are optimizable in
//! polynomial time by IKKBZ, and the implementation is exactly optimal.

use crate::table::{cell, verdict, Table};
use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, CostScalar, SelectivityMatrix};
use aqo_graph::generators;
use aqo_optimizer::{dp, ikkbz};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn tree_instance(n: usize, rng: &mut StdRng) -> QoNInstance {
    let g = generators::random_tree(n, rng);
    let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(rng.gen_range(2u64..200))).collect();
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (u, v) in g.edges().collect::<Vec<_>>() {
        let sel = BigRational::new(BigInt::one(), BigUint::from(rng.gen_range(2u64..20)));
        s.set(u, v, sel.clone());
        for (j, k) in [(u, v), (v, u)] {
            let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
            w.set(j, k, lower.magnitude().clone());
        }
    }
    QoNInstance::new(g, sizes, s, w)
}

/// Runs E13.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E13 / §6.3 — IKKBZ is exactly optimal on trees, in polynomial time",
        &["n", "trials", "IKKBZ = DP optimum", "IKKBZ time (µs/instance)", "DP time (µs/instance)", "verdict"],
    );
    let mut rng = StdRng::seed_from_u64(0xE13);
    for n in [6usize, 9, 12, 15, 18] {
        let trials = 10;
        let mut all_match = true;
        let mut ik_us = 0u128;
        let mut dp_us = 0u128;
        for _ in 0..trials {
            let inst = tree_instance(n, &mut rng);
            let t0 = Instant::now();
            let ik = ikkbz::optimize(&inst);
            ik_us += t0.elapsed().as_micros();
            let t1 = Instant::now();
            let exact = dp::optimize::<BigRational>(&inst, false).expect("connected tree");
            dp_us += t1.elapsed().as_micros();
            if ik.cost != exact.cost {
                all_match = false;
            }
        }
        t.row(vec![
            cell(n),
            cell(trials),
            cell(all_match),
            cell(ik_us / trials as u128),
            cell(dp_us / trials as u128),
            verdict(all_match),
        ]);
    }
    // Polynomial scaling demonstration beyond DP reach.
    let mut t2 = Table::new(
        "E13b — IKKBZ scales polynomially where the DP cannot go",
        &["n", "IKKBZ time (ms)", "2^n (DP table size)", "verdict"],
    );
    for n in [40usize, 80, 120] {
        let inst = tree_instance(n, &mut rng);
        let t0 = Instant::now();
        let ik = ikkbz::optimize(&inst);
        let ms = t0.elapsed().as_millis();
        t2.row(vec![
            cell(n),
            cell(ms),
            format!("2^{n}"),
            verdict(CostScalar::log2(&ik.cost).is_finite()),
        ]);
    }
    t2.note("Hardness needs e(m) ≥ m + Θ(m^τ) edges (§6.3); with m − 1 edges the ASI rank argument closes the problem in O(n² log n).");
    vec![t, t2]
}
