//! One module per experiment (DESIGN.md §6). Every `run()` regenerates the
//! corresponding table(s) of EXPERIMENTS.md from scratch.

pub mod appendix_a;
pub mod calibration;
pub mod decoding;
pub mod appendix_b;
pub mod figure_gap;
pub mod figure_heuristics;
pub mod ikkbz_easy;
pub mod lemma10;
pub mod lemma12;
pub mod lemma13;
pub mod lemma3;
pub mod lemma5;
pub mod lemma6;
pub mod lemma7;
pub mod lemma8;
pub mod sparse_h;
pub mod sparse_n;
pub mod thm15;
pub mod thm9;

#[cfg(test)]
mod tests {
    fn check(ids: &[&str]) {
        for exp in crate::registry() {
            if !ids.contains(&exp.id) {
                continue;
            }
            let tables = (exp.run)();
            assert!(!tables.is_empty(), "{} produced no tables", exp.id);
            for t in &tables {
                assert!(!t.rows.is_empty(), "{}: table '{}' is empty", exp.id, t.title);
                for row in &t.rows {
                    for cellv in row {
                        assert!(
                            cellv != "VIOLATED",
                            "{}: table '{}' reports a violated inequality",
                            exp.id,
                            t.title
                        );
                    }
                }
            }
        }
    }

    /// Cheap experiments run in every profile: a fast smoke signal.
    #[test]
    fn light_experiments_run_clean() {
        check(&["E1", "E3", "E4", "E7", "E14", "F1"]);
    }

    /// Every experiment must run and report no violated inequality — the
    /// highest-level regression test of the reproduction. The heavyweight
    /// members (exhaustive QO_H searches, 81-relation pipeline DPs) are
    /// only reasonable under optimization: `cargo test --release`.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavyweight: run with --release")]
    fn all_experiments_run_clean() {
        let ids: Vec<&str> = crate::registry().iter().map(|e| e.id).collect();
        check(&ids);
    }
}
