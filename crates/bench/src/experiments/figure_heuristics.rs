//! F2 — what the theorems mean for real optimizers: polynomial-time
//! heuristics are near-optimal on random queries and exponentially off on
//! the reduction-produced adversarial instances.

use crate::table::Table;
use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, CostScalar, JoinSequence, SelectivityMatrix};
use aqo_graph::generators;
use aqo_optimizer::{dp, genetic, greedy, local_search};
use aqo_reductions::fn_reduction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(n: usize, rng: &mut StdRng) -> QoNInstance {
    let g = generators::random_connected(n, n + n / 2, rng);
    let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(rng.gen_range(10u64..5000))).collect();
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (u, v) in g.edges().collect::<Vec<_>>() {
        let sel = BigRational::new(BigInt::one(), BigUint::from(rng.gen_range(2u64..100)));
        s.set(u, v, sel.clone());
        for (j, k) in [(u, v), (v, u)] {
            let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
            w.set(j, k, lower.magnitude().clone());
        }
    }
    QoNInstance::new(g, sizes, s, w)
}

fn adversarial_instance(n: usize, seed: u64) -> QoNInstance {
    // f_N on the complement of a sparse random graph: the instance is dense
    // (as the paper's CLIQUE family demands), every join sequence has
    // near-maximal prefix density, and the optimum hinges on packing a
    // *maximum independent set of the sparse complement* into the prefix —
    // each clique vertex a greedy prefix misses costs a factor of a at the
    // peak join. Prefix-density greedoids have no handle on MIS structure.
    let mut rng = StdRng::seed_from_u64(seed);
    let sparse = generators::gnp(n, 4.0 / n as f64, &mut rng);
    let g = sparse.complement();
    let omega = aqo_graph::clique::clique_number(&g) as u64;
    let a = BigUint::from(64u64);
    fn_reduction::reduce(&g, &a, omega.saturating_sub(1).max(2)).instance
}

fn ratios(inst: &QoNInstance, rng: &mut StdRng) -> Vec<(&'static str, f64)> {
    // Search in log domain, certify the winner exactly.
    let opt = dp::optimize::<aqo_bignum::LogNum>(inst, true).expect("connected");
    let exact: BigRational = inst.total_cost(&opt.sequence);
    let opt_bits = CostScalar::log2(&exact);
    let eval = |z: &JoinSequence| -> f64 {
        let c: BigRational = inst.total_cost(z);
        CostScalar::log2(&c) - opt_bits
    };
    let n = inst.n();
    vec![
        ("greedy-min-N", eval(&greedy::min_intermediate(inst, true).unwrap())),
        ("greedy-min-H", eval(&greedy::min_incremental_cost(inst, true).unwrap())),
        ("sim-annealing", {
            let z = local_search::simulated_annealing(
                inst,
                &local_search::SaParams { iterations: 3000, ..Default::default() },
                rng,
            );
            eval(&z)
        }),
        ("genetic", {
            let z = genetic::optimize(
                inst,
                &genetic::GaParams { population: 24, generations: 40, ..Default::default() },
                rng,
            );
            eval(&z)
        }),
        ("random-order", eval(&greedy::random_sequence(n, rng))),
    ]
}

/// Runs F2.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "F2 — competitive ratio (log₂: bits above the exact optimum)",
        &["heuristic", "random queries n=12 (avg bits)", "adversarial f_N n=14 (avg bits)", "adversarial f_N n=18 (avg bits)"],
    );
    let mut rng = StdRng::seed_from_u64(0xF2);
    let trials = 3;
    let mut acc: std::collections::BTreeMap<&'static str, [f64; 3]> = Default::default();
    for _ in 0..trials {
        let inst = random_instance(12, &mut rng);
        for (name, bits) in ratios(&inst, &mut rng) {
            acc.entry(name).or_default()[0] += bits / trials as f64;
        }
    }
    for (col, n) in [(1usize, 14usize), (2, 18)] {
        for t in 0..trials {
            let inst = adversarial_instance(n, 1000 + t as u64);
            for (name, bits) in ratios(&inst, &mut rng) {
                acc.entry(name).or_default()[col] += bits / trials as f64;
            }
        }
    }
    for (name, vals) in acc {
        t.row(vec![
            name.into(),
            format!("{:.1}", vals[0]),
            format!("{:.1}", vals[1]),
            format!("{:.1}", vals[2]),
        ]);
    }
    t.note("On random catalogues the heuristics sit within a few bits of optimal; on the dense adversarial f_N family each clique vertex a heuristic prefix misses costs log2(a) = 6 bits at the peak join. At toy sizes metaheuristics can still stumble onto maximum independent sets; the theorems say no polynomial algorithm wins on the SAT-encoded instances at scale.");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_instance_is_connected() {
        let inst = adversarial_instance(12, 5);
        assert!(inst.graph().is_connected());
    }

    #[test]
    fn random_instance_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = random_instance(8, &mut rng);
        assert_eq!(inst.n(), 8);
    }
}
