//! E14 — Appendix A: PARTITION → SPPCS, verified exhaustively over a small
//! instance space and on structured families.

use crate::table::{cell, verdict, Table};
use aqo_reductions::partition::PartitionInstance;
use aqo_reductions::sppcs::{self, partition_to_sppcs};

/// Runs E14.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E14 / Appendix A — PARTITION → SPPCS equivalence",
        &["family", "instances", "YES preserved", "NO preserved", "mismatches", "verdict"],
    );

    // Exhaustive: all item multisets of size 3 with values 0..=5, even total.
    {
        let (mut yes, mut no, mut bad, mut total) = (0usize, 0usize, 0usize, 0usize);
        for a in 0u64..=5 {
            for b in a..=5 {
                for c in b..=5 {
                    if (a + b + c) % 2 != 0 {
                        continue;
                    }
                    total += 1;
                    let p = PartitionInstance::new(vec![a, b, c]);
                    let s = partition_to_sppcs(&p);
                    let (pa, sa) = (p.is_yes(), s.is_yes());
                    if pa != sa {
                        bad += 1;
                    } else if pa {
                        yes += 1;
                    } else {
                        no += 1;
                    }
                }
            }
        }
        t.row(vec![
            "exhaustive: 3 items, values ≤ 5".into(),
            cell(total),
            cell(yes),
            cell(no),
            cell(bad),
            verdict(bad == 0),
        ]);
    }
    // Exhaustive: 4 items, values 0..=4.
    {
        let (mut yes, mut no, mut bad, mut total) = (0usize, 0usize, 0usize, 0usize);
        for a in 0u64..=4 {
            for b in a..=4 {
                for c in b..=4 {
                    for d in c..=4 {
                        if (a + b + c + d) % 2 != 0 {
                            continue;
                        }
                        total += 1;
                        let p = PartitionInstance::new(vec![a, b, c, d]);
                        let s = partition_to_sppcs(&p);
                        let (pa, sa) = (p.is_yes(), s.is_yes());
                        if pa != sa {
                            bad += 1;
                        } else if pa {
                            yes += 1;
                        } else {
                            no += 1;
                        }
                    }
                }
            }
        }
        t.row(vec![
            "exhaustive: 4 items, values ≤ 4".into(),
            cell(total),
            cell(yes),
            cell(no),
            cell(bad),
            verdict(bad == 0),
        ]);
    }
    t.note("The certified reduction replaces the paper's g_q-rounded exponentials by exact powers of two (see crates/reductions/src/sppcs.rs for the full proof; the g_q machinery itself lives in aqo-bignum::fixed and is exercised below).");

    // g_q sanity: the rounded-exponential encoding is strictly monotone and
    // within one grid step of e^{b/2K}.
    let mut t2 = Table::new(
        "E14b — the paper's g_q(b) = ⌈2^q·e^{b/2K}⌉ fixed-point machinery",
        &["q", "items", "strictly monotone", "max |g_q − 2^q·e^{b/2K}|", "verdict"],
    );
    for q in [16u32, 24, 32] {
        let items = vec![1u64, 2, 3, 5, 8, 13];
        let factors = sppcs::gq_encoded_factors(&items, q);
        let monotone = factors.windows(2).all(|w| w[0] < w[1]);
        let two_k: u64 = items.iter().sum();
        let max_err = items
            .iter()
            .zip(&factors)
            .map(|(&b, f)| {
                let exact = (b as f64 / two_k as f64).exp() * (1u64 << q) as f64;
                (f.to_f64() - exact).abs()
            })
            .fold(0.0f64, f64::max);
        t2.row(vec![
            cell(q),
            cell(items.len()),
            cell(monotone),
            format!("{max_err:.3}"),
            verdict(monotone && max_err <= 1.0),
        ]);
    }
    vec![t, t2]
}
