//! E6 — Theorem 9: the end-to-end QO_N hardness statement.
//!
//! Two layers:
//!
//! 1. **Formula-to-instance, certified** — satisfiable vs ≤(7/8)-satisfiable
//!    formulas run through Lemma 3 and `f_N`; the satisfiable side exhibits
//!    a witness below `K`, the gap side is *certified* above
//!    `K·a^{e − ω − 1}` for every join sequence, all in exact arithmetic.
//! 2. **Synthetic promise families, exact** — graphs with planted vs
//!    bounded cliques at DP-verifiable sizes show the measured optimum gap.

use crate::table::{cell, log2_cell, verdict, Table};
use aqo_bignum::{BigRational, BigUint};
use aqo_core::CostScalar;
use aqo_graph::{clique, generators};
use aqo_optimizer::dp;
use aqo_reductions::{clique_reduction, fn_reduction};
use aqo_sat::{generators as satgen, maxsat};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E6.
pub fn run() -> Vec<Table> {
    let mut t1 = Table::new(
        "E6a / Theorem 9 — full chain 3SAT → CLIQUE → QO_N (certified bounds)",
        &["formula", "QO_N n", "ω", "e", "log₂ K", "side", "log₂ bound", "verdict"],
    );
    let mut rng = StdRng::seed_from_u64(0xE6);
    let a = BigUint::from(4u64);

    // Satisfiable: witness below K with e = ω (the clique is big enough).
    let (f_sat, _) = satgen::planted_3sat(3, 3, &mut rng);
    {
        let red_g = clique_reduction::sat_to_clique(&f_sat);
        let omega = clique::clique_number(&red_g.graph) as u64;
        assert_eq!(omega as usize, red_g.satisfiable_omega);
        let e = omega - 2;
        let red = fn_reduction::reduce(&red_g.graph, &a, e);
        let witness = clique::max_clique(&red_g.graph);
        let z = fn_reduction::lemma6_sequence(&red_g.graph, &witness);
        let c: BigRational = red.instance.total_cost(&z);
        let k = BigRational::from(fn_reduction::k_bound(&a, e));
        t1.row(vec![
            "satisfiable (planted)".into(),
            cell(red_g.graph.n()),
            cell(omega),
            cell(e),
            log2_cell(k.log2()),
            "witness C(Z) ≤ K".into(),
            log2_cell(CostScalar::log2(&c)),
            verdict(c <= k),
        ]);
    }
    // Gap side: one contradiction block (u = 1 exactly) drops ω by 1; the
    // certified LB for *all* sequences sits a^{e−ω−1} above K.
    {
        let f_unsat = satgen::contradiction_blocks(1);
        let u = f_unsat.num_clauses() - maxsat::max_sat(&f_unsat).max_satisfied;
        let red_g = clique_reduction::sat_to_clique(&f_unsat);
        let omega = clique::clique_number(&red_g.graph) as u64;
        assert_eq!(omega as usize, red_g.predicted_omega(u));
        // Same scale rule the satisfiable side would have used: e = ω_sat−2.
        let e = red_g.satisfiable_omega as u64 - 2;
        let red = fn_reduction::reduce(&red_g.graph, &a, e);
        let lb = BigRational::from(fn_reduction::lemma8_lower_bound(
            &a,
            e,
            omega,
            red_g.graph.n() as u64,
        ));
        let k = BigRational::from(fn_reduction::k_bound(&a, e));
        let gap_exp = fn_reduction::certified_gap_exponent(e, omega);
        let _ = &red; // the instance itself exists; the bound covers all its sequences
        // Identity check of the bound calculators: LB/K = a^{e−ω−1} exactly.
        let identity_ok =
            (lb.log2() - k.log2() - gap_exp as f64 * a.log2()).abs() < 1e-6;
        t1.row(vec![
            "≤7/8-satisfiable (u=1)".into(),
            cell(red_g.graph.n()),
            cell(omega),
            cell(e),
            log2_cell(k.log2()),
            format!("certified LB = K·a^{gap_exp}"),
            log2_cell(lb.log2()),
            verdict(identity_ok),
        ]);
    }
    // Micro chain, fully exact: a one-variable, one-clause formula maps to a
    // 12-vertex graph — small enough for the subset DP to certify the true
    // optimum of the chain's output.
    {
        use aqo_sat::{CnfFormula, Lit};
        let f = CnfFormula::from_clauses(1, vec![vec![Lit::pos(0)]]);
        let red_g = clique_reduction::sat_to_clique(&f);
        let omega = clique::clique_number(&red_g.graph) as u64;
        let e = omega - 2;
        let red = fn_reduction::reduce(&red_g.graph, &a, e);
        let opt = dp::optimize::<BigRational>(&red.instance, true).expect("connected");
        let k = BigRational::from(fn_reduction::k_bound(&a, e));
        t1.row(vec![
            "micro (x): exact optimum".into(),
            cell(red_g.graph.n()),
            cell(omega),
            cell(e),
            log2_cell(k.log2()),
            "true optimum C* ≤ K".into(),
            log2_cell(CostScalar::log2(&opt.cost)),
            verdict(opt.cost <= k),
        ]);
    }
    t1.note("u = 1 at toy scale gives gap exponent e − ω − 1 = −3 < 0 here; the Θ(n)-wide MaxSAT gap of the PCP-powered 3SAT(13) (Theorem 1) is what makes the exponent Θ(n) at scale — see E6b for the gap regime made exact.");

    // E6b: synthetic promise families where the DP certifies the measured gap.
    let mut t2 = Table::new(
        "E6b / Theorem 9 — promise families, exact optima (subset DP)",
        &["n", "ω_yes", "ω_no", "e", "log₂ C*_yes", "log₂ C*_no", "measured gap (bits)", "certified gap (bits)", "verdict"],
    );
    for (n, k_yes, k_no) in [(10usize, 8usize, 5usize), (12, 9, 6), (14, 11, 7), (16, 12, 8)] {
        let e = k_yes as u64 - 1;
        let g_yes = generators::dense_known_omega(n, k_yes);
        let g_no = generators::dense_known_omega(n, k_no);
        let red_yes = fn_reduction::reduce(&g_yes, &a, e);
        let red_no = fn_reduction::reduce(&g_no, &a, e);
        let opt_yes = dp::optimize::<BigRational>(&red_yes.instance, true).unwrap();
        let opt_no = dp::optimize::<BigRational>(&red_no.instance, true).unwrap();
        let measured = CostScalar::log2(&opt_no.cost) - CostScalar::log2(&opt_yes.cost);
        let certified = fn_reduction::certified_gap_exponent(e, k_no as u64) as f64 * a.log2();
        let ok = measured >= certified - 1e-6;
        t2.row(vec![
            cell(n),
            cell(k_yes),
            cell(k_no),
            cell(e),
            log2_cell(CostScalar::log2(&opt_yes.cost)),
            log2_cell(CostScalar::log2(&opt_no.cost)),
            format!("{measured:.1}"),
            format!("{certified:.1}"),
            verdict(ok),
        ]);
    }
    t2.note("The measured optimum gap always meets or beats the certified a^{e−ω−1}; the paper's chain supplies ω gaps of Θ(n), i.e. gaps 2^{Θ(n·log a)} = 2^{Θ(log^{1−δ} K)} after calibrating a(n) = 4^{n^{1/δ}}.");
    vec![t1, t2]
}
