//! E10 — Theorem 15: the end-to-end QO_H hardness statement: satisfiable
//! side below `O(L)`, clique-deficient side certified `Ω(G)` with
//! `G = L·a^{Θ(n)}`.

use crate::table::{cell, log2_cell, verdict, Table};
use aqo_bignum::BigRational;
use aqo_graph::{clique, generators};
use aqo_reductions::fh_reduction;

/// Runs E10.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E10 / Theorem 15 — witness ≤ 16·L vs certified mid-sequence Ω(G) = L·a^{Θ(n)}",
        &["n", "ω_yes", "ω_no", "log₂ L", "log₂ C(witness_yes)", "log₂ N-bound_no", "N-bound / L (×a bits)", "verdict"],
    );
    for n in [6usize, 9, 12, 15, 18] {
        let b = aqo_bignum::BigUint::from(2u64).pow(2 * n as u64);
        let k_yes = 2 * n / 3;
        let g_yes = generators::dense_known_omega(n, k_yes);
        let g_no = generators::turan(n, 3);
        let omega_no = clique::clique_number(&g_no) as u64;
        let red_yes = fh_reduction::reduce(&g_yes, &b);
        let red_no = fh_reduction::reduce(&g_no, &b);

        // Satisfiable side: explicit witness.
        let c = clique::max_clique(&g_yes);
        let (z, decomp) = fh_reduction::lemma12_witness(&red_yes, &c[..k_yes]);
        let cost = red_yes.instance.plan_cost_optimal_alloc(&z, &decomp).expect("feasible");
        let l = BigRational::from(fh_reduction::l_bound(&red_yes));
        let yes_ok = cost <= &l * &BigRational::from(16u64);

        // Deficient side: certified lower bound on the N_{2n/3} intermediate
        // of every feasible sequence — the quantity Lemma 14 shows every
        // pipeline decomposition must pay.
        let nb = fh_reduction::lemma13_n2n3_lower_bound(&red_no, omega_no);
        let a_bits = red_no.a.log2();
        let ratio_in_a = (nb.log2() - l.log2()) / a_bits;
        // Expected: D slack = (2n/3 − ω) extra powers of a, minus 2^{Θ(n)} slop.
        let expected = (k_yes as f64 - omega_no as f64) - 0.5;
        let no_ok = ratio_in_a >= expected - 0.6;
        t.row(vec![
            cell(n),
            cell(k_yes),
            cell(omega_no),
            log2_cell(l.log2()),
            log2_cell(cost.log2()),
            log2_cell(nb.log2()),
            format!("{ratio_in_a:.2}"),
            verdict(yes_ok && no_ok),
        ]);
    }
    t.note("N-bound/L grows like a^{2n/3 − ω}: with ω pinned at 3 by the Turán family, the exponent grows linearly in n — the paper's Θ(n) gap (Theorem 15.3: G = L·a^{Θ(n)}), i.e. 2^{log^{1−δ}L} after the paper's a(n) calibration.");
    vec![t]
}
