//! E11 — Theorem 16: the sparse variant `f_{N,e}` pins the query-graph edge
//! count to a target `e(m)` inside the window `(m + Θ(m^τ), m²/2 − Θ(m^τ))`
//! while preserving the QO_N gap.

use crate::table::{cell, log2_cell, verdict, Table};
use aqo_bignum::{BigUint, LogNum};
use aqo_core::CostScalar;
use aqo_graph::Graph;
use aqo_optimizer::dp;
use aqo_reductions::sparse;

/// `e(m) = m + ⌈m^τ⌉` — the lower edge of the Theorem 16 window.
fn edge_target(m: usize, tau: f64) -> usize {
    m + (m as f64).powf(tau).ceil() as usize
}

/// Runs E11.
pub fn run() -> Vec<Table> {
    let mut t1 = Table::new(
        "E11a / Theorem 16 — edge-count conformance of f_{N,e}",
        &["τ", "n", "k", "m = n^k", "target e(m)", "built edges", "window ok", "connected", "verdict"],
    );
    for (tau, n, k) in [(0.25f64, 3usize, 2u32), (0.5, 3, 2), (0.75, 3, 2), (0.5, 4, 2), (0.5, 3, 3)] {
        let m = n.pow(k);
        let target = edge_target(m, tau).max(Graph::complete(n).m() + m - n + 1);
        let alpha = BigUint::from(4u64).pow(64);
        let beta = BigUint::from(4u64);
        let red = sparse::reduce_fn(&Graph::complete(n), k, target, &alpha, &beta, 2);
        let g = red.instance.graph();
        let window_ok = g.m() > m && g.m() < m * (m - 1) / 2;
        t1.row(vec![
            format!("{tau}"),
            cell(n),
            cell(k),
            cell(m),
            cell(target),
            cell(g.m()),
            cell(window_ok),
            cell(g.is_connected()),
            verdict(g.m() == target && window_ok && g.is_connected()),
        ]);
    }
    t1.note("e(m) = m + ⌈m^τ⌉ (raised to the connectivity minimum when the auxiliary graph needs it): the sparsest end of the paper's window.");

    let mut t2 = Table::new(
        "E11b / Theorem 16 — gap persists on sparse frames (exact DP over 2^m subsets)",
        &["m", "edges", "ω_yes", "ω_no", "log₂ C*_yes", "log₂ C*_no", "gap (×α bits)", "verdict"],
    );
    let alpha = BigUint::from(4u64).pow(128);
    let beta = BigUint::from(4u64);
    let e = 4u64;
    let g_yes = Graph::complete(4);
    let g_no = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
    for target in [30usize, 40, 60] {
        let red_yes = sparse::reduce_fn(&g_yes, 2, target, &alpha, &beta, e);
        let red_no = sparse::reduce_fn(&g_no, 2, target, &alpha, &beta, e);
        let opt_yes = dp::optimize::<LogNum>(&red_yes.instance, true).unwrap();
        let opt_no = dp::optimize::<LogNum>(&red_no.instance, true).unwrap();
        let gap = CostScalar::log2(&opt_no.cost) - CostScalar::log2(&opt_yes.cost);
        let in_alpha = gap / alpha.log2();
        t2.row(vec![
            cell(16),
            cell(target),
            cell(4),
            cell(2),
            log2_cell(CostScalar::log2(&opt_yes.cost)),
            log2_cell(CostScalar::log2(&opt_no.cost)),
            format!("{in_alpha:.2}"),
            verdict(in_alpha >= 0.4),
        ]);
    }
    t2.note("K₄ vs S₄ inside the same sparse frame (m = 16 vertices): the certified gap exponent e − ω_no − 1 = 1 power of α survives the auxiliary graph at every edge budget.");
    vec![t1, t2]
}
