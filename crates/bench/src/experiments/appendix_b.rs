//! E15 — Appendix B: SPPCS → SQO−CP, verified against the exact star-query
//! optimizer, plus the full PARTITION → SPPCS → SQO−CP chain.

use crate::table::{cell, verdict, Table};
use aqo_bignum::BigUint;
use aqo_optimizer::star;
use aqo_reductions::partition::PartitionInstance;
use aqo_reductions::sppcs::{partition_to_sppcs, Normalized, SppcsInstance};
use aqo_reductions::sqo_reduction;

fn sppcs(pairs: &[(u64, u64)], l: u64) -> SppcsInstance {
    SppcsInstance {
        pairs: pairs.iter().map(|&(p, c)| (BigUint::from(p), BigUint::from(c))).collect(),
        l: BigUint::from(l),
    }
}

/// Runs E15.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E15 / Appendix B — SPPCS → SQO−CP equivalence (exact star DP)",
        &["family", "instances", "agreements", "mismatches", "verdict"],
    );
    // Exhaustive small space: all 2-pair instances with p ∈ 2..=4, c ∈ 1..=3,
    // L swept around the reachable objectives.
    {
        let (mut total, mut agree) = (0usize, 0usize);
        for p1 in 2u64..=4 {
            for c1 in 1u64..=3 {
                for p2 in 2u64..=4 {
                    for c2 in 1u64..=3 {
                        for l in 0u64..=12 {
                            let s = sppcs(&[(p1, c1), (p2, c2)], l);
                            let expected = s.is_yes();
                            let red = sqo_reduction::reduce(&s);
                            let (_, opt) = star::optimize(&red.instance);
                            total += 1;
                            if (opt <= red.budget) == expected {
                                agree += 1;
                            }
                        }
                    }
                }
            }
        }
        t.row(vec![
            "exhaustive: 2 pairs, p ≤ 4, c ≤ 3, L ≤ 12".into(),
            cell(total),
            cell(agree),
            cell(total - agree),
            verdict(total == agree),
        ]);
    }
    // Random larger instances.
    {
        let mut state = 0xE15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let (mut total, mut agree) = (0usize, 0usize);
        for _ in 0..30 {
            let m = 1 + (next() % 5) as usize;
            let pairs: Vec<(u64, u64)> =
                (0..m).map(|_| (2 + next() % 6, 1 + next() % 8)).collect();
            let l = next() % 60;
            let s = sppcs(&pairs, l);
            let expected = s.is_yes();
            let red = sqo_reduction::reduce(&s);
            let (_, opt) = star::optimize(&red.instance);
            total += 1;
            if (opt <= red.budget) == expected {
                agree += 1;
            }
        }
        t.row(vec![
            "random: up to 5 pairs".into(),
            cell(total),
            cell(agree),
            cell(total - agree),
            verdict(total == agree),
        ]);
    }

    // The full Appendix chain.
    let mut t2 = Table::new(
        "E15b — full chain PARTITION → SPPCS → SQO−CP",
        &["items", "PARTITION", "SPPCS", "SQO−CP plan ≤ M", "verdict"],
    );
    for items in [vec![1u64, 2, 3], vec![1, 3], vec![3, 5, 4, 2], vec![2, 2], vec![1, 1, 4]] {
        let p = PartitionInstance::new(items.clone());
        let expected = p.is_yes();
        let s = partition_to_sppcs(&p);
        let s_ans = s.is_yes();
        let sqo_ans = match s.normalize() {
            Normalized::Trivial(ans) => ans,
            Normalized::Instance(norm) => {
                let red = sqo_reduction::reduce(&norm);
                let (_, opt) = star::optimize(&red.instance);
                opt <= red.budget
            }
        };
        t2.row(vec![
            format!("{items:?}"),
            cell(expected),
            cell(s_ans),
            cell(sqo_ans),
            verdict(expected == s_ans && s_ans == sqo_ans),
        ]);
    }
    t2.note("The star plans that meet the budget are exactly the subset encodings: NL-joined satellites before R_{m+1} ↔ the subset A, sort-merged satellites ↔ the complement (module docs of aqo-reductions::sqo_reduction).");
    vec![t, t2]
}
