//! F1 — the headline figure: the certified gap (in bits) against `log₂ K`
//! as the instance family scales, for both QO_N and QO_H.
//!
//! The paper's Theorem 9/15 shape: with `a(n) = 4^{n^{1/δ}}`,
//! `log K = Θ(n²·log a)` while the gap is `a^{Θ(n)} = 2^{Θ(n·log a)}`, i.e.
//! `gap = 2^{Θ((log K)^{1−δ'})}`: the gap exponent grows *sublinearly* in
//! `log K` but polynomially — faster than any polylog. The series below
//! print both coordinates so the curve can be plotted directly.

use crate::table::{cell, Table};
use aqo_bignum::BigUint;
use aqo_graph::{clique, generators};
use aqo_reductions::{fh_reduction, fn_reduction};

/// Runs F1.
pub fn run() -> Vec<Table> {
    let mut t1 = Table::new(
        "F1a — QO_N series: log₂ K vs certified gap bits (a = 4^⌈√n⌉, e = ⌊3n/4⌋, ω_no = ⌊n/2⌋)",
        &["n", "log₂ a", "log₂ K", "certified gap bits", "gap / log₂K", "polylog(K) bits for comparison"],
    );
    for n in [16usize, 24, 32, 48, 64, 96, 128] {
        // a(n) = 4^{n^{1/2}}: δ = 1/2 in the paper's calibration.
        let a = BigUint::from(4u64).pow((n as f64).sqrt().ceil() as u64);
        let e = (3 * n / 4) as u64;
        let omega_no = (n / 2) as u64;
        let k = fn_reduction::k_bound(&a, e);
        let gap_exp = fn_reduction::certified_gap_exponent(e, omega_no);
        let gap_bits = gap_exp as f64 * a.log2();
        let log_k = k.log2();
        // A polylog competitor: log₂²(K) bits.
        let polylog = log_k.log2().powi(2);
        t1.row(vec![
            cell(n),
            format!("{:.0}", a.log2()),
            format!("{log_k:.0}"),
            format!("{gap_bits:.0}"),
            format!("{:.3}", gap_bits / log_k),
            format!("{polylog:.1}"),
        ]);
    }
    t1.note("gap bits = (e − ω − 1)·log₂ a = Θ(n·log a) while log₂ K = Θ(n²·log a): the ratio decays like 1/n, yet the gap dwarfs any polylog(K) — no polynomial-time algorithm can be 2^{log^{1−δ}K}-competitive unless P = NP.");

    let mut t2 = Table::new(
        "F1b — QO_H series: log₂ L vs certified Ω(G)/L bits (Turán ω = 3 family)",
        &["n", "log₂ a", "log₂ L", "N-bound/L bits", "ratio"],
    );
    for n in [6usize, 12, 18, 24, 30] {
        let b = BigUint::from(2u64).pow(2 * n as u64);
        let g = generators::turan(n, 3);
        let omega = clique::clique_number(&g) as u64;
        let red = fh_reduction::reduce(&g, &b);
        let l = fh_reduction::l_bound(&red);
        let nb = fh_reduction::lemma13_n2n3_lower_bound(&red, omega);
        let gap_bits = nb.log2() - l.log2();
        t2.row(vec![
            cell(n),
            format!("{:.0}", red.a.log2()),
            format!("{:.0}", l.log2()),
            format!("{gap_bits:.0}"),
            format!("{:.3}", gap_bits / l.log2()),
        ]);
    }
    t2.note("G/L = a^{Θ(n)} while log L = Θ(n²·log a) — the same 2^{log^{1−δ}L} shape as QO_N (Theorem 15.3).");
    vec![t1, t2]
}
