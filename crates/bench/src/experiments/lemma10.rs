//! E7 — Lemma 10: the closed-form optimal memory allocation for a pipeline.
//!
//! The three cases of the lemma, with `M = (n/3 − 1)t + 2·hjmin(t)`:
//! a pipeline of `≤ n/3 − 1` joins runs entirely in memory; one of `n/3`
//! joins sends exactly one join to minimum memory (the one with the
//! smallest outer); `n/3 + 1` joins send two. We verify the greedy
//! allocator against an exhaustive discretized allocation search.

use crate::table::{cell, verdict, Table};
use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qoh::QoHInstance;
use aqo_core::{JoinSequence, SelectivityMatrix};
use aqo_graph::Graph;

fn path_instance(n_rel: usize, t: u64, mem: BigUint) -> QoHInstance {
    let mut g = Graph::new(n_rel);
    let mut s = SelectivityMatrix::new();
    for v in 1..n_rel {
        g.add_edge(v - 1, v);
        s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(4u64)));
    }
    QoHInstance::new(g, vec![BigUint::from(t); n_rel], s, mem)
}

/// Exhaustive allocation over a grid: every join gets hjmin, t, or an even
/// split of the remainder — a discretized oracle for the optimum.
fn grid_best(
    inst: &QoHInstance,
    z: &JoinSequence,
    frag: (usize, usize),
    inter: &[BigRational],
) -> Option<BigRational> {
    let joins = frag.1 - frag.0 + 1;
    let t = inst.sizes()[z.at(1)].clone();
    let hj = inst.hjmin(&t);
    let levels = [BigRational::from(hj), BigRational::from(t)];
    let mut best: Option<BigRational> = None;
    for mask in 0u32..(1 << joins) {
        let alloc: Vec<BigRational> =
            (0..joins).map(|j| levels[(mask >> j & 1) as usize].clone()).collect();
        let total: BigRational = alloc.iter().cloned().sum();
        if total > BigRational::from(inst.memory().clone()) {
            continue;
        }
        if let Some(c) = inst.fragment_cost(z, frag, &alloc, inter) {
            if best.as_ref().is_none_or(|b| c < *b) {
                best = Some(c);
            }
        }
    }
    best
}

/// Runs E7.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E7 / Lemma 10 — optimal pipeline memory allocation",
        &["pipeline joins", "n/3", "min-memory joins (greedy)", "greedy ≤ grid oracle", "lemma case", "verdict"],
    );
    let n = 9usize; // so n/3 = 3
    let t_size = 4096u64;
    let hjmin = 64u64; // sqrt(4096)
    let mem = BigUint::from((n as u64 / 3 - 1) * t_size + 2 * hjmin);
    // Build one long path query; fragments of varying length are pipelines.
    let inst = path_instance(n + 1, t_size, mem);
    let z = JoinSequence::identity(n + 1);
    let inter: Vec<BigRational> = inst.intermediates(&z);
    for joins in 1..=(n / 3 + 1) {
        let frag = (1usize, joins);
        let alloc = inst.optimal_allocation(&z, frag, &inter).expect("feasible");
        let greedy_cost = inst.fragment_cost(&z, frag, &alloc, &inter).expect("feasible");
        let grid = grid_best(&inst, &z, frag, &inter);
        // Count joins pinned at (or near) minimum memory.
        let hj = BigRational::from(inst.hjmin(&BigUint::from(t_size)));
        let t_full = BigRational::from(BigUint::from(t_size));
        let pinned = alloc.iter().filter(|m| **m < t_full).count();
        let pinned_exact = alloc.iter().filter(|m| **m == hj).count();
        let case = match joins {
            j if j < n / 3 => "≤ n/3−1: all in memory",
            j if j == n / 3 => "= n/3: one at hjmin",
            _ => "= n/3+1: two at hjmin",
        };
        let expected_pinned = match joins {
            j if j < n / 3 => 0usize,
            j if j == n / 3 => 1,
            _ => 2,
        };
        let ok = grid.as_ref().is_none_or(|g| greedy_cost <= *g)
            && pinned <= expected_pinned.max(1)
            && pinned_exact <= expected_pinned;
        t.row(vec![
            cell(joins),
            cell(n / 3),
            format!("{pinned_exact} at hjmin / {pinned} below full"),
            cell(grid.map_or("n/a".into(), |g| cell(greedy_cost <= g))),
            case.into(),
            verdict(ok),
        ]);
    }
    t.note("The allocator is a continuous greedy on marginal rates — provably optimal for the paper's linear g; the grid oracle (all hjmin/full patterns) can never beat it.");
    vec![t]
}
