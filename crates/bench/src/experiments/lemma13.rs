//! E9 — Lemmas 13–14: without a `(2−ε)n/3` clique, the mid-sequence
//! intermediates of every feasible sequence are huge (`Ω(G)`), and the
//! exact QO_H optimum reflects it.

use crate::table::{cell, log2_cell, verdict, Table};
use aqo_bignum::BigRational;
use aqo_core::JoinSequence;
use aqo_graph::{clique, generators};
use aqo_optimizer::pipeline;
use aqo_reductions::fh_reduction;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

/// Runs E9.
pub fn run() -> Vec<Table> {
    // Part 1: the N_{2n/3} lower bound versus actual intermediates over
    // random feasible sequences (exhaustive at n = 6).
    let mut t1 = Table::new(
        "E9a / Lemma 13 — N_{2n/3}(Z) ≥ t₀·t^{2n/3}·a^{−D_max}·2^{−2n/3} for every feasible Z",
        &["n", "ω", "log₂ bound", "min observed log₂ N_{2n/3}", "sequences checked", "verdict"],
    );
    let mut rng = StdRng::seed_from_u64(0xE9);
    for n in [6usize, 9, 12] {
        let g = generators::turan(n, 3); // ω = 3 < 2n/3 for n ≥ 6
        let omega = clique::clique_number(&g) as u64;
        let b = aqo_bignum::BigUint::from(2u64).pow(2 * n as u64);
        let red = fh_reduction::reduce(&g, &b);
        let lb = fh_reduction::lemma13_n2n3_lower_bound(&red, omega);
        let k = 2 * n / 3;
        let mut min_seen: Option<BigRational> = None;
        let mut checked = 0usize;
        let trials = if n == 6 { 720 } else { 500 };
        let mut perm: Vec<usize> = (0..n).collect();
        for i in 0..trials {
            if n == 6 {
                // Exhaustive: i-th permutation.
                perm = aqo_core::join::permutations(n).nth(i).unwrap();
            } else {
                perm.shuffle(&mut rng);
            }
            let mut order = vec![red.v0];
            order.extend(perm.iter().copied());
            let z = JoinSequence::new(order);
            let inter: Vec<BigRational> = red.instance.intermediates(&z);
            let nk = inter[k].clone();
            if min_seen.as_ref().is_none_or(|m| nk < *m) {
                min_seen = Some(nk);
            }
            checked += 1;
        }
        let min_seen = min_seen.unwrap();
        let ok = min_seen >= lb;
        t1.row(vec![
            cell(n),
            cell(omega),
            log2_cell(lb.log2()),
            log2_cell(min_seen.log2()),
            cell(checked),
            verdict(ok),
        ]);
    }
    t1.note("Bound derived from Lemma 7 on the prefix: D_{2n/3} ≤ (2n/3 choose 2) − 2n/3 + ω. At n = 6 the check is exhaustive over all feasible sequences.");

    // Part 2: the exact optimum pays for it (n = 6, exhaustive QO_H search).
    let mut t2 = Table::new(
        "E9b / Lemma 14 — exact QO_H optimum, big-clique vs clique-free family (n = 6)",
        &["family", "ω", "log₂ C*", "gap vs yes (bits)", "verdict"],
    );
    let b = aqo_bignum::BigUint::from(2u64).pow(12);
    let g_yes = generators::dense_known_omega(6, 4);
    let g_no = generators::turan(6, 3);
    let red_yes = fh_reduction::reduce(&g_yes, &b);
    let red_no = fh_reduction::reduce(&g_no, &b);
    let opt_yes = pipeline::optimize_exhaustive(&red_yes.instance).expect("feasible");
    let opt_no = pipeline::optimize_exhaustive(&red_no.instance).expect("feasible");
    let gap = opt_no.cost.log2() - opt_yes.cost.log2();
    t2.row(vec!["ω = 2n/3 = 4".into(), cell(4), log2_cell(opt_yes.cost.log2()), "—".into(), verdict(true)]);
    t2.row(vec![
        "ω = 3 (Turán T(6,3))".into(),
        cell(3),
        log2_cell(opt_no.cost.log2()),
        format!("{gap:.1}"),
        verdict(gap >= 0.4 * red_yes.a.log2()),
    ]);
    t2.note("Exhaustive over all 7! sequences with per-sequence optimal decomposition and allocation; the clique-free family pays ≥ a^{0.4} more (a^{1/2} minus 2^{Θ(n)} selectivity slop at this tiny scale).");
    vec![t1, t2]
}
