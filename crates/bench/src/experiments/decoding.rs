//! E16 — certificate decoding: the constructive half of NP-hardness.
//! Cheap plans decode back into the hidden combinatorial objects — cliques
//! from QO_N sequences, SPPCS subsets (and thence PARTITION witnesses) from
//! star plans.

use crate::table::{cell, verdict, Table};
use aqo_bignum::{BigRational, BigUint};
use aqo_graph::generators;
use aqo_optimizer::{dp, star};
use aqo_reductions::partition::PartitionInstance;
use aqo_reductions::sppcs::{partition_to_sppcs, Normalized};
use aqo_reductions::{decode, fn_reduction, sqo_reduction};

/// Runs E16.
pub fn run() -> Vec<Table> {
    let mut t1 = Table::new(
        "E16a — decoding cliques from cheap QO_N plans",
        &["n", "ω", "threshold κ", "optimal plan decodes to", "clique valid", "verdict"],
    );
    for (n, k) in [(10usize, 8usize), (12, 9), (14, 10), (16, 12)] {
        let g = generators::dense_known_omega(n, k);
        let red = fn_reduction::reduce(&g, &BigUint::from(4u64), (k - 1) as u64);
        let opt = dp::optimize::<BigRational>(&red.instance, true).unwrap();
        let kappa = k - 2;
        let decoded = decode::clique_from_sequence(&red, &opt.sequence, kappa);
        let (desc, ok) = match &decoded {
            Some(c) => (format!("clique of size {}", c.len()), g.is_clique(c) && c.len() > kappa),
            None => ("nothing".into(), false),
        };
        t1.row(vec![cell(n), cell(k), cell(kappa), desc, cell(decoded.is_some()), verdict(ok)]);
    }
    t1.note("An optimizer that finds a cheap plan has implicitly found the planted clique: the dense prefix forced by a small H_e is a clique container (Lemma 7, contrapositive).");

    let mut t2 = Table::new(
        "E16b — decoding PARTITION witnesses from star plans",
        &["items", "PARTITION", "decoded subset objective ≤ L", "verdict"],
    );
    for items in [vec![1u64, 2, 3], vec![2, 2], vec![3, 5, 4, 2], vec![4, 3, 3, 2]] {
        let p = PartitionInstance::new(items.clone());
        if !p.is_yes() {
            continue;
        }
        let s = partition_to_sppcs(&p);
        let norm = match s.normalize() {
            Normalized::Trivial(_) => continue,
            Normalized::Instance(i) => i,
        };
        let red = sqo_reduction::reduce(&norm);
        let (plan, cost) = star::optimize(&red.instance);
        assert!(cost <= red.budget);
        let subset = decode::subset_from_star_plan(&plan);
        let mask = subset.iter().fold(0u64, |m, &i| m | 1 << i);
        let ok = norm.objective(mask) <= norm.l;
        t2.row(vec![format!("{items:?}"), cell(true), cell(ok), verdict(ok)]);
    }
    t2.note("The physical plan's method choices (nested loops vs sort-merge) are the subset: reading them off a within-budget plan yields an SPPCS witness, hence a PARTITION witness.");
    vec![t1, t2]
}
