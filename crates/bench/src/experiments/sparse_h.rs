//! E12 — Theorem 17: the sparse QO_H variant `f_{H,e}`: edge-count
//! conformance, feasibility structure (only `v₀`-first sequences), and the
//! witness cost frame.

use crate::table::{cell, log2_cell, verdict, Table};
use aqo_bignum::BigUint;
use aqo_core::JoinSequence;
use aqo_graph::{clique, generators};
use aqo_reductions::sparse;

/// Runs E12.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E12 / Theorem 17 — f_{H,e}: structure, feasibility and witness frame",
        &["n", "m = n^k", "edges", "v₀-first forced", "witness ≤ L·α", "log₂ C(witness)", "verdict"],
    );
    for (n, k, extra) in [(6usize, 2u32, 40usize), (6, 2, 200), (9, 2, 100)] {
        let g1 = generators::dense_known_omega(n, 2 * n / 3);
        let b = BigUint::from(2u64).pow((n * (n.pow(k) - n)) as u64);
        let target = g1.m() + n + 1 + extra;
        let red = sparse::reduce_fh(&g1, k, target, &b);
        let inst = &red.instance;
        let m = inst.n();

        // Feasibility: v0 must be first.
        let forced = {
            let mut bad: Vec<usize> = (0..m).collect();
            bad.swap(0, red.v0);
            bad.swap(0, 1);
            let mut good = vec![red.v0];
            good.extend((0..m).filter(|&v| v != red.v0));
            !inst.sequence_feasible(&JoinSequence::new(bad))
                && inst.sequence_feasible(&JoinSequence::new(good))
        };

        // Witness: v0, clique, rest of V1, V2 tail; optimal decomposition.
        let cl = clique::max_clique(&g1);
        let mut order = vec![red.v0];
        order.extend_from_slice(&cl[..2 * n / 3]);
        order.extend((0..n).filter(|v| !cl[..2 * n / 3].contains(v)));
        order.extend((0..m).filter(|&v| v > n));
        let z = JoinSequence::new(order);
        // Lemma 12's five pipelines on the V₁ core, the V₂ tail as one
        // pipeline (its relations are tiny): an explicit witness
        // decomposition, avoiding the O(m²) DP at 80+ relations.
        let third = n / 3;
        let mut frags = vec![(1, 1), (2, third), (third + 1, 2 * third)];
        if 2 * third < n {
            frags.push((2 * third + 1, n));
        }
        frags.push((n + 1, m - 1));
        let decomp = aqo_core::qoh::PipelineDecomposition::new(m, frags);
        let cost = inst.plan_cost_optimal_alloc(&z, &decomp).expect("feasible witness");
        let l_bits = red.t0.log2() + (n * n) as f64 / 9.0 * red.alpha.log2();
        let frame_ok = cost.log2() <= l_bits + red.alpha.log2();
        t.row(vec![
            cell(n),
            cell(m),
            cell(inst.graph().m()),
            cell(forced),
            cell(frame_ok),
            log2_cell(cost.log2()),
            verdict(forced && frame_ok && inst.graph().m() == target),
        ]);
    }
    t.note("α = 4^{n·|V₂|} dominates the auxiliary product 2^{n·|V₂|} (the paper's α = Ω(4^{n^{2k+2}}) at full asymptotic scale); the witness stays within L·α^{O(1)} and infeasibility still pins v₀ to the front, so the §5 gap argument carries over verbatim (Theorem 17).");
    vec![t]
}
