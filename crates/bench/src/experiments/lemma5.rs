//! E2 — Lemma 5: on an `f_N` instance, along the Lemma 6 clique-first
//! sequence the join costs `H_i` are unimodal with the discrete peak at
//! `i = e` or `e + 1`, and decay geometrically once the back-edge counts
//! exceed `e` (the paper's `i ≥ cn` regime).
//!
//! Smallness bookkeeping: the paper's family misses at most 14 neighbours
//! per vertex and places the peak `(d/2)n = Θ(n)` positions before the
//! clique ends; our family misses at most 3, so decay is guaranteed from
//! `i ≥ e + 4` provided the clique extends at least 5 positions past the
//! peak (`e ≤ ω − 5`).

use crate::table::{cell, verdict, Table};
use aqo_bignum::{BigRational, BigUint};
use aqo_core::CostScalar;
use aqo_graph::{clique, generators};
use aqo_reductions::fn_reduction;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E2.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E2 / Lemma 5 — H_i peaks at i ∈ {e, e+1}, then decays ≥ 4× per join",
        &["n", "ω", "e", "peak position", "peak ∈ {e,e+1}", "decay from e+4", "verdict"],
    );
    let mut rng = StdRng::seed_from_u64(0xE2);
    for (n, k) in [(12usize, 8usize), (14, 9), (16, 10), (18, 12)] {
        let mut g = generators::dense_min_degree_family(n, 3, &mut rng);
        for i in 0..k {
            for j in i + 1..k {
                g.add_edge(i, j);
            }
        }
        let omega = clique::clique_number(&g);
        let e = (omega as u64).saturating_sub(5).max(2);
        let a = BigUint::from(4u64);
        let red = fn_reduction::reduce(&g, &a, e);
        let witness = clique::max_clique(&g);
        let z = fn_reduction::lemma6_sequence(&g, &witness);
        let cost = red.instance.cost::<BigRational>(&z);
        let peak = cost
            .per_join
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .map(|(i, _)| i + 1)
            .unwrap();
        let peak_ok = peak as u64 == e || peak as u64 == e + 1;
        let start = (e as usize + 4).min(n - 1);
        let decay_ok = (start..n - 1).all(|i| {
            CostScalar::log2(&cost.per_join[i]) - CostScalar::log2(&cost.per_join[i - 1])
                <= -2.0 + 1e-9
        });
        t.row(vec![
            cell(n),
            cell(omega),
            cell(e),
            cell(peak),
            verdict(peak_ok),
            verdict(decay_ok),
            verdict(peak_ok && decay_ok),
        ]);
    }
    t.note("H_i = w·a^{e·i − i(i−1)/2} inside the clique prefix: unimodal with maximum at i = e or e+1; beyond it the back-edge counts push the ratio below a^{-2} = 1/16 (Lemma 5 with this family's miss-3 bookkeeping).");
    vec![t]
}
