//! E4 — Lemma 7: `|E| ≤ n(n−1)/2 − n + ω(G)` for every graph, checked
//! exhaustively for tiny `n` and on random/extremal families, with the
//! Turán tightness witness.

use crate::table::{cell, verdict, Table};
use aqo_graph::{clique, generators, lemma7_edge_bound, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E4.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E4 / Lemma 7 — |E| ≤ n(n−1)/2 − n + ω",
        &["family", "graphs", "max slack", "tight cases", "verdict"],
    );

    // Exhaustive over all graphs on 6 vertices (32768 graphs).
    {
        let n = 6;
        let pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
        let mut ok = true;
        let mut tight = 0usize;
        let mut max_slack = 0usize;
        for mask in 0u32..(1 << pairs.len()) {
            let mut g = Graph::new(n);
            for (b, &(u, v)) in pairs.iter().enumerate() {
                if mask >> b & 1 == 1 {
                    g.add_edge(u, v);
                }
            }
            let omega = clique::clique_number(&g);
            let bound = lemma7_edge_bound(n, omega);
            if g.m() > bound {
                ok = false;
            }
            if g.m() == bound {
                tight += 1;
            }
            max_slack = max_slack.max(bound.saturating_sub(g.m()));
        }
        t.row(vec![
            "all graphs, n = 6 (exhaustive)".into(),
            cell(1usize << pairs.len()),
            cell(max_slack),
            cell(tight),
            verdict(ok),
        ]);
    }

    // Random graphs.
    {
        let mut rng = StdRng::seed_from_u64(0xE4);
        let mut ok = true;
        let mut tight = 0usize;
        let mut max_slack = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let g = generators::gnp(14, 0.6, &mut rng);
            let omega = clique::clique_number(&g);
            let bound = lemma7_edge_bound(14, omega);
            if g.m() > bound {
                ok = false;
            }
            if g.m() == bound {
                tight += 1;
            }
            max_slack = max_slack.max(bound.saturating_sub(g.m()));
        }
        t.row(vec!["G(14, 0.6)".into(), cell(trials), cell(max_slack), cell(tight), verdict(ok)]);
    }

    // Turán graphs T(n, n−1) meet the bound with equality.
    {
        let mut ok = true;
        let mut tight = 0usize;
        for n in [6usize, 10, 20, 40] {
            let g = generators::turan(n, n - 1);
            let omega = clique::clique_number(&g);
            let bound = lemma7_edge_bound(n, omega);
            if g.m() > bound {
                ok = false;
            }
            if g.m() == bound {
                tight += 1;
            }
        }
        t.row(vec!["Turán T(n, n−1), n ∈ {6,10,20,40}".into(), cell(4), cell(0usize), cell(tight), verdict(ok && tight == 4)]);
    }

    t.note("The proof's extremal structure (each non-clique vertex misses ≥ 1 edge into the clique) is met with equality by K_n minus a perfect matching / T(n, n−1).");
    vec![t]
}
