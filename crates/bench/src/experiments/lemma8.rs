//! E5 — Lemma 8: the certified lower bound `w·a^{e(e+1)/2 + e − ω}` holds
//! for *every* join sequence of an `f_N` instance. Verified two ways:
//! against the exact DP optimum where the DP is feasible, and as a
//! certified (Lemma 7 powered) statement at sizes far beyond any optimizer.

use crate::table::{cell, log2_cell, verdict, Table};
use aqo_bignum::{BigRational, BigUint};
use aqo_core::CostScalar;
use aqo_graph::{clique, generators};
use aqo_optimizer::dp;
use aqo_reductions::fn_reduction;

/// Runs E5.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E5 / Lemma 8 — every sequence costs ≥ w·a^{e(e+1)/2 + e − ω}",
        &["n", "ω", "e", "log₂ LB", "log₂ C(optimal)", "optimum ≥ LB", "mode", "verdict"],
    );
    let a = BigUint::from(4u64);
    // Exact mode: DP-verifiable sizes.
    for (n, k, e) in [(8usize, 5usize, 6u64), (10, 6, 7), (12, 7, 9), (14, 8, 10)] {
        let g = generators::dense_known_omega(n, k);
        let omega = clique::clique_number(&g) as u64;
        let red = fn_reduction::reduce(&g, &a, e);
        let lb = BigRational::from(fn_reduction::lemma8_lower_bound(&a, e, omega, n as u64));
        let opt = dp::optimize::<BigRational>(&red.instance, true).expect("connected");
        let ok = opt.cost >= lb;
        t.row(vec![
            cell(n),
            cell(omega),
            cell(e),
            log2_cell(lb.log2()),
            log2_cell(CostScalar::log2(&opt.cost)),
            cell(ok),
            "exact DP".into(),
            verdict(ok),
        ]);
    }
    // Certified mode: the bound applies to all n! sequences; we evaluate it
    // and exhibit the Lemma 6 witness as an upper companion.
    for (n, k, e) in [(32usize, 20usize, 24u64), (64, 40, 48), (96, 60, 72)] {
        let g = generators::dense_known_omega(n, k);
        let omega = clique::clique_number(&g) as u64;
        let red = fn_reduction::reduce(&g, &a, e);
        let lb = BigRational::from(fn_reduction::lemma8_lower_bound(&a, e, omega, n as u64));
        // Certified: any witness we can produce must respect the bound.
        let witness = clique::max_clique(&g);
        let z = fn_reduction::lemma6_sequence(&g, &witness);
        let c: BigRational = red.instance.total_cost(&z);
        let ok = c >= lb;
        t.row(vec![
            cell(n),
            cell(omega),
            cell(e),
            log2_cell(lb.log2()),
            log2_cell(CostScalar::log2(&c)),
            cell(ok),
            "certified (witness shown)".into(),
            verdict(ok),
        ]);
    }
    t.note("LB is valid for every sequence: C(Z) ≥ H_e(Z) ≥ w·a^{e·e − D_e(Z)} and Lemma 7 caps D_e. In 'certified' mode the DP is infeasible (n! and 2^n both astronomical); the bound itself is the paper's instrument at scale.");
    vec![t]
}
