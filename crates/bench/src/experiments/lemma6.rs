//! E3 — Lemma 6: when `ω(G) ≥ e`, the clique-first sequence of the `f_N`
//! instance costs at most `K(a, e) = w·a^{e(e+1)/2 + 1}`, in exact
//! arithmetic.

use crate::table::{cell, log2_cell, verdict, Table};
use aqo_bignum::{BigRational, BigUint};
use aqo_core::CostScalar;
use aqo_graph::{clique, generators};
use aqo_reductions::fn_reduction;

/// Runs E3.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E3 / Lemma 6 — witness cost ≤ K(a,e) whenever ω ≥ e (exact arithmetic)",
        &["n", "ω", "e", "a", "log₂ C(witness)", "log₂ K", "C ≤ K", "verdict"],
    );
    for (n, k, a_val, e) in [
        (12usize, 9usize, 4u64, 7u64),
        (16, 12, 4, 9),
        (24, 18, 4, 14),
        (32, 24, 16, 18),
        (48, 36, 16, 28),
        (64, 48, 16, 38),
        (96, 72, 64, 58),
    ] {
        let g = generators::dense_known_omega(n, k);
        let a = BigUint::from(a_val);
        let red = fn_reduction::reduce(&g, &a, e);
        let witness = clique::max_clique(&g);
        assert!(witness.len() as u64 >= e);
        let z = fn_reduction::lemma6_sequence(&g, &witness);
        let c: BigRational = red.instance.total_cost(&z);
        let kb = BigRational::from(fn_reduction::k_bound(&a, e));
        let ok = c <= kb;
        t.row(vec![
            cell(n),
            cell(k),
            cell(e),
            cell(a_val),
            log2_cell(CostScalar::log2(&c)),
            log2_cell(kb.log2()),
            cell(ok),
            verdict(ok),
        ]);
    }
    t.note("K(a,e) = w·a^{e(e+1)/2+1}: the paper's K_{c,d}(a,n) with e = (c−d/2)n. All inequalities certified with exact rational arithmetic.");
    vec![t]
}
