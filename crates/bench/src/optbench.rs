//! Persistent optimizer benchmark harness behind `aqo bench`.
//!
//! Criterion benches are great interactively but leave no machine-readable
//! trail; this module is the CI-friendly counterpart. It times the
//! sequential and parallel optimizer engines over the deterministic
//! workload generators and emits one JSON document
//! (`BENCH_optimizer.json`, schema `aqo-bench-optimizer/v3`) with the
//! median wall-time per `(family, n, algorithm, scalar, mode)` cell and
//! the sequential-over-parallel speedup on every parallel record — so the
//! perf trajectory is tracked across PRs regardless of which machine ran
//! it. Every timed pair is also cross-checked for cost agreement: a bench
//! run that observes a seq/par divergence panics rather than recording a
//! lie. Since v2 each record embeds the nonzero deterministic counters
//! ([`aqo_obs::counters_snapshot`]) captured from its cross-check run;
//! the timed runs themselves execute with collection disabled, so the
//! medians measure the instrumented-but-disabled hot path. v3 adds
//! `algo = "ccp"` cells (connected-subgraph DP on the sparse families,
//! reaching past the dense engine's practical range — chain `n = 25`
//! against `2^25` all-subsets states) and an optional `note` field for
//! cell-level caveats such as the parallel branch-and-bound's sequential
//! delegation on one-worker hosts. Every ccp cell is verified three ways
//! before it is recorded: log-domain cost agreement with the sequential
//! `dp` oracle, exact recosting of the returned sequence, and
//! `optimizer.ccp.subsets_expanded` equal to the instance's true
//! connected-subgraph count.

use aqo_bignum::{BigRational, LogNum};
use aqo_core::budget::Budget;
use aqo_core::qon::QoNInstance;
use aqo_core::workloads;
use aqo_optimizer::{branch_bound, ccp, dp, engine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// What to run: the quick profile is sized for CI smoke tests (seconds,
/// debug build friendly); the full profile reaches `n = 18` where layer
/// parallelism pays.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Use the small quick profile instead of the full one.
    pub quick: bool,
    /// Worker threads for the parallel engines (`0` = auto).
    pub threads: usize,
}

/// One timed cell.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Workload generator family (`chain`, `star`, `cycle`, `clique`).
    pub family: &'static str,
    /// Relation count.
    pub n: usize,
    /// Algorithm identifier (`dp`, `engine`, `engine-two-phase`, `ccp`,
    /// `bnb`).
    pub algo: &'static str,
    /// Scalar backend (`lognum` or `rational`).
    pub scalar: &'static str,
    /// `seq` or `par`.
    pub mode: &'static str,
    /// Threads used (1 for `seq` records).
    pub threads: usize,
    /// Median wall time over [`BenchRecord::samples`] runs, milliseconds.
    pub median_ms: f64,
    /// Number of timed runs the median is over.
    pub samples: usize,
    /// `seq_median / par_median`, present on `par` records only.
    pub speedup: Option<f64>,
    /// Nonzero counters captured from this cell's (untimed) cross-check
    /// run, sorted by name. Deterministic for the DP/engine algorithms.
    pub metrics: Vec<(String, u64)>,
    /// Cell-level caveat (v3), e.g. the parallel branch-and-bound's
    /// sequential delegation when only one worker resolves.
    pub note: Option<&'static str>,
}

/// Runs `f` once with metric collection enabled and returns its result
/// together with the nonzero counters it produced. The registry and the
/// journal are cleared on both sides and collection is restored to its
/// prior state, so the timed runs that follow measure the disabled path.
fn capture_metrics<R>(f: impl FnOnce() -> R) -> (R, Vec<(String, u64)>) {
    let was_enabled = aqo_obs::enabled();
    aqo_obs::reset_metrics();
    aqo_obs::journal::clear();
    aqo_obs::set_enabled(true);
    let r = f();
    aqo_obs::set_enabled(was_enabled);
    let counters = aqo_obs::counters_snapshot();
    aqo_obs::reset_metrics();
    aqo_obs::journal::clear();
    (r, counters)
}

struct Family {
    name: &'static str,
    /// Sizes for the log-domain DP pair (sequential `dp` vs `engine`).
    lognum_ns: &'static [usize],
    /// Sizes for the exact pair (sequential `dp` vs `engine-two-phase`).
    exact_ns: &'static [usize],
    /// Sizes for the branch-and-bound pair.
    bnb_ns: &'static [usize],
    /// Sizes for the connected-subgraph DP (cartesian-free, exact). The
    /// state space is the connected-subgraph count, so sparse families
    /// reach well past the dense tiers' `2^n` wall (chain `n = 25` holds
    /// 325 states where the engine would hold 33 million).
    ccp_ns: &'static [usize],
}

const QUICK: &[Family] = &[
    Family { name: "chain", lognum_ns: &[9, 11], exact_ns: &[8], bnb_ns: &[7], ccp_ns: &[11] },
    Family { name: "cycle", lognum_ns: &[9], exact_ns: &[8], bnb_ns: &[], ccp_ns: &[] },
];

const FULL: &[Family] = &[
    Family {
        name: "chain",
        lognum_ns: &[12, 14, 16, 18],
        exact_ns: &[12, 14],
        bnb_ns: &[10],
        ccp_ns: &[18, 20, 22, 25],
    },
    Family { name: "star", lognum_ns: &[12, 14], exact_ns: &[12], bnb_ns: &[], ccp_ns: &[] },
    Family {
        name: "cycle",
        lognum_ns: &[12, 16, 18],
        exact_ns: &[12],
        bnb_ns: &[10],
        ccp_ns: &[18, 22],
    },
    Family { name: "clique", lognum_ns: &[12, 14], exact_ns: &[12], bnb_ns: &[], ccp_ns: &[14] },
];

fn instance(family: &str, n: usize, seed: u64) -> QoNInstance {
    let params = workloads::WorkloadParams::default();
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        "chain" => workloads::chain(n, &params, &mut rng),
        "star" => workloads::star(n, &params, &mut rng),
        "cycle" => workloads::cycle(n, &params, &mut rng),
        "clique" => workloads::clique(n, &params, &mut rng),
        other => unreachable!("unknown bench family {other}"),
    }
}

/// Median wall time of `samples` runs of `f`, in milliseconds.
fn median_ms<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let r = f();
            let t = start.elapsed().as_secs_f64() * 1e3;
            drop(r);
            t
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Runs the configured profile and returns every record.
pub fn run(cfg: &BenchConfig) -> Vec<BenchRecord> {
    let families = if cfg.quick { QUICK } else { FULL };
    let samples = if cfg.quick { 3 } else { 5 };
    let threads = aqo_core::parallel::resolve_threads(cfg.threads);
    let budget = Budget::unlimited();
    let mut records = Vec::new();

    for fam in families {
        for &n in fam.lognum_ns {
            let inst = instance(fam.name, n, 42 + n as u64);
            let opts = engine::DpOptions { allow_cartesian: true, threads };
            let (seq_run, seq_metrics) =
                capture_metrics(|| dp::optimize::<LogNum>(&inst, true));
            let seq_cost = seq_run.expect("connected").cost;
            let (par_run, par_metrics) = capture_metrics(|| {
                engine::optimize_log_parallel(&inst, &opts, &budget)
            });
            let par_cost = par_run.expect("unlimited").expect("connected").cost;
            assert!(
                (seq_cost.log2() - par_cost.log2()).abs() < 1e-6,
                "{} n={n}: log-domain seq/par cost divergence",
                fam.name
            );
            let seq_ms = median_ms(samples, || dp::optimize::<LogNum>(&inst, true));
            let par_ms = median_ms(samples, || {
                engine::optimize_log_parallel(&inst, &opts, &budget)
            });
            records.push(BenchRecord {
                family: fam.name,
                n,
                algo: "dp",
                scalar: "lognum",
                mode: "seq",
                threads: 1,
                median_ms: seq_ms,
                samples,
                speedup: None,
                metrics: seq_metrics,
                note: None,
            });
            records.push(BenchRecord {
                family: fam.name,
                n,
                algo: "engine",
                scalar: "lognum",
                mode: "par",
                threads,
                median_ms: par_ms,
                samples,
                speedup: Some(seq_ms / par_ms.max(1e-9)),
                metrics: par_metrics,
                note: None,
            });
        }
        for &n in fam.exact_ns {
            let inst = instance(fam.name, n, 42 + n as u64);
            let opts = engine::DpOptions { allow_cartesian: true, threads };
            let (seq_run, seq_metrics) =
                capture_metrics(|| dp::optimize::<BigRational>(&inst, true));
            let seq_cost = seq_run.expect("connected").cost;
            let (par_run, par_metrics) = capture_metrics(|| {
                engine::optimize_two_phase::<BigRational>(&inst, &opts, &budget)
            });
            let par_cost = par_run.expect("unlimited").expect("connected").cost;
            assert_eq!(seq_cost, par_cost, "{} n={n}: exact seq/par cost divergence", fam.name);
            let seq_ms = median_ms(samples, || dp::optimize::<BigRational>(&inst, true));
            let par_ms = median_ms(samples, || {
                engine::optimize_two_phase::<BigRational>(&inst, &opts, &budget)
            });
            records.push(BenchRecord {
                family: fam.name,
                n,
                algo: "dp",
                scalar: "rational",
                mode: "seq",
                threads: 1,
                median_ms: seq_ms,
                samples,
                speedup: None,
                metrics: seq_metrics,
                note: None,
            });
            records.push(BenchRecord {
                family: fam.name,
                n,
                algo: "engine-two-phase",
                scalar: "rational",
                mode: "par",
                threads,
                median_ms: par_ms,
                samples,
                speedup: Some(seq_ms / par_ms.max(1e-9)),
                metrics: par_metrics,
                note: None,
            });
        }
        for &n in fam.bnb_ns {
            let inst = instance(fam.name, n, 42 + n as u64);
            let (seq_run, seq_metrics) =
                capture_metrics(|| branch_bound::optimize::<BigRational>(&inst, true));
            let seq_cost = seq_run.expect("connected").cost;
            let (par_run, par_metrics) = capture_metrics(|| {
                branch_bound::optimize_par::<BigRational>(&inst, true, threads)
            });
            let par_cost = par_run.expect("connected").cost;
            assert_eq!(seq_cost, par_cost, "{} n={n}: B&B seq/par cost divergence", fam.name);
            let seq_ms =
                median_ms(samples, || branch_bound::optimize::<BigRational>(&inst, true));
            let par_ms = median_ms(samples, || {
                branch_bound::optimize_par::<BigRational>(&inst, true, threads)
            });
            records.push(BenchRecord {
                family: fam.name,
                n,
                algo: "bnb",
                scalar: "rational",
                mode: "seq",
                threads: 1,
                median_ms: seq_ms,
                samples,
                speedup: None,
                metrics: seq_metrics,
                note: None,
            });
            records.push(BenchRecord {
                family: fam.name,
                n,
                algo: "bnb",
                scalar: "rational",
                mode: "par",
                threads,
                median_ms: par_ms,
                samples,
                speedup: Some(seq_ms / par_ms.max(1e-9)),
                metrics: par_metrics,
                note: (threads == 1).then_some(
                    "one resolved worker: optimize_par delegates to the sequential DFS, \
                     so speedup ~1.0 measures delegation overhead, not contention",
                ),
            });
        }
        for &n in fam.ccp_ns {
            let inst = instance(fam.name, n, 42 + n as u64);
            // Sequential dp oracle, run in the log domain *outside* the
            // metric capture (so the cell's counters are purely
            // `optimizer.ccp.*`). At chain n = 25 the exact-rational dp
            // table would be gigabytes; LogNum keeps the oracle cheap
            // while still pinning the argmin to ~1e-6 bits.
            let oracle = dp::optimize::<LogNum>(&inst, false)
                .unwrap_or_else(|| panic!("{} n={n}: disconnected bench instance", fam.name));
            let (seq_run, seq_metrics) = capture_metrics(|| {
                ccp::optimize_two_phase::<BigRational>(&inst, 1, &budget)
            });
            let seq_opt = seq_run.expect("unlimited").expect("connected");
            assert!(
                (seq_opt.cost.log2() - oracle.cost.log2()).abs() < 1e-6,
                "{} n={n}: ccp diverged from the sequential dp oracle",
                fam.name
            );
            let recost: BigRational = inst.total_cost(&seq_opt.sequence);
            assert_eq!(recost, seq_opt.cost, "{} n={n}: ccp recost mismatch", fam.name);
            let expanded = seq_metrics
                .iter()
                .find(|(k, _)| k == "optimizer.ccp.subsets_expanded")
                .map(|(_, v)| *v);
            assert_eq!(
                expanded,
                Some(ccp::connected_subset_count(&inst)),
                "{} n={n}: ccp expansion count is not the connected-subgraph count",
                fam.name
            );
            let (par_run, par_metrics) = capture_metrics(|| {
                ccp::optimize_two_phase::<BigRational>(&inst, threads, &budget)
            });
            let par_cost = par_run.expect("unlimited").expect("connected").cost;
            assert_eq!(seq_opt.cost, par_cost, "{} n={n}: ccp seq/par divergence", fam.name);
            let seq_ms = median_ms(samples, || {
                ccp::optimize_two_phase::<BigRational>(&inst, 1, &budget)
            });
            let par_ms = median_ms(samples, || {
                ccp::optimize_two_phase::<BigRational>(&inst, threads, &budget)
            });
            let note = Some(
                "cost verified against the sequential dp oracle (lognum) and by exact \
                 recosting; subsets_expanded equals the connected-subgraph count",
            );
            records.push(BenchRecord {
                family: fam.name,
                n,
                algo: "ccp",
                scalar: "rational",
                mode: "seq",
                threads: 1,
                median_ms: seq_ms,
                samples,
                speedup: None,
                metrics: seq_metrics,
                note,
            });
            records.push(BenchRecord {
                family: fam.name,
                n,
                algo: "ccp",
                scalar: "rational",
                mode: "par",
                threads,
                median_ms: par_ms,
                samples,
                speedup: Some(seq_ms / par_ms.max(1e-9)),
                metrics: par_metrics,
                note,
            });
        }
    }
    records
}

/// Serializes a bench run as the `aqo-bench-optimizer/v3` JSON document.
/// Hand-rolled (no serde in the tree); every string field is a controlled
/// identifier or note literal (no quotes/backslashes), so no escaping is
/// required.
pub fn to_json(cfg: &BenchConfig, records: &[BenchRecord]) -> String {
    let mut out = String::with_capacity(256 + records.len() * 160);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"aqo-bench-optimizer/v3\",\n");
    out.push_str(&format!("  \"profile\": \"{}\",\n", if cfg.quick { "quick" } else { "full" }));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        aqo_core::parallel::resolve_threads(cfg.threads)
    ));
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        aqo_core::parallel::available_threads()
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"algo\": \"{}\", \"scalar\": \"{}\", \
             \"mode\": \"{}\", \"threads\": {}, \"median_ms\": {:.4}, \"samples\": {}",
            r.family, r.n, r.algo, r.scalar, r.mode, r.threads, r.median_ms, r.samples
        ));
        if let Some(s) = r.speedup {
            out.push_str(&format!(", \"speedup\": {s:.3}"));
        }
        if let Some(note) = r.note {
            debug_assert!(!note.contains('"') && !note.contains('\\'));
            out.push_str(&format!(", \"note\": \"{note}\""));
        }
        out.push_str(", \"metrics\": {");
        for (j, (name, value)) in r.metrics.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {value}"));
        }
        out.push_str("}}");
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// [`run`] + [`to_json`] in one call.
pub fn run_to_json(cfg: &BenchConfig) -> String {
    let records = run(cfg);
    to_json(cfg, &records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_produces_wellformed_records() {
        let cfg = BenchConfig { quick: true, threads: 2 };
        let records = run(&cfg);
        assert!(!records.is_empty());
        // Every parallel record pairs with a sequential one and carries a
        // positive speedup.
        for r in &records {
            assert!(r.median_ms >= 0.0);
            match r.mode {
                "seq" => assert!(r.speedup.is_none() && r.threads == 1),
                "par" => {
                    assert!(r.speedup.expect("par has speedup") > 0.0);
                    assert_eq!(r.threads, 2);
                }
                other => panic!("unknown mode {other}"),
            }
        }
        let seq = records.iter().filter(|r| r.mode == "seq").count();
        let par = records.iter().filter(|r| r.mode == "par").count();
        assert_eq!(seq, par);
        // The quick profile exercises a ccp cell; its expansion counter
        // is the chain's connected-subgraph count n(n+1)/2.
        let ccp_cell = records
            .iter()
            .find(|r| r.algo == "ccp" && r.mode == "seq")
            .expect("quick profile benches a ccp cell");
        assert_eq!(ccp_cell.family, "chain");
        assert_eq!(ccp_cell.n, 11);
        let expanded = ccp_cell
            .metrics
            .iter()
            .find(|(k, _)| k == "optimizer.ccp.subsets_expanded")
            .map(|(_, v)| *v);
        assert_eq!(expanded, Some(66));
        assert!(ccp_cell.note.is_some());
    }

    #[test]
    fn json_is_structurally_sound() {
        let cfg = BenchConfig { quick: true, threads: 1 };
        let records = vec![
            BenchRecord {
                family: "chain",
                n: 9,
                algo: "dp",
                scalar: "lognum",
                mode: "seq",
                threads: 1,
                median_ms: 1.25,
                samples: 3,
                speedup: None,
                metrics: vec![("optimizer.dp.subsets_expanded".to_string(), 511)],
                note: None,
            },
            BenchRecord {
                family: "chain",
                n: 9,
                algo: "engine",
                scalar: "lognum",
                mode: "par",
                threads: 4,
                median_ms: 0.5,
                samples: 3,
                speedup: Some(2.5),
                metrics: Vec::new(),
                note: Some("synthetic cell for the serializer test"),
            },
        ];
        let json = to_json(&cfg, &records);
        assert!(json.contains("\"schema\": \"aqo-bench-optimizer/v3\""));
        assert!(json.contains("\"speedup\": 2.500"));
        assert!(json.contains("\"note\": \"synthetic cell for the serializer test\""));
        assert!(json.contains("\"metrics\": {\"optimizer.dp.subsets_expanded\": 511}"));
        assert!(json.contains("\"metrics\": {}"));
        // Balanced braces/brackets and no trailing comma before closers.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",}"));
    }
}
