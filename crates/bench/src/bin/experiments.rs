//! Regenerates every experiment of EXPERIMENTS.md.
//!
//! ```text
//! experiments              # run everything, plain text
//! experiments E6 F1        # run selected ids
//! experiments --markdown   # emit the EXPERIMENTS.md body
//! experiments --list       # list experiment ids
//! ```

use aqo_bench::registry;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let list = args.iter().any(|a| a == "--list");
    let selected: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let experiments = registry();
    if list {
        for e in &experiments {
            println!("{:4}  {}", e.id, e.paper_ref);
        }
        return;
    }

    if markdown {
        println!("# EXPERIMENTS — paper vs. measured\n");
        println!(
            "Regenerate with `cargo run --release -p aqo-bench --bin experiments -- --markdown`."
        );
        println!("The paper (PODS 2002) has no numbered tables or figures; every experiment");
        println!("below reproduces one lemma/theorem, as indexed in DESIGN.md §6. A row saying");
        println!("`holds` is an inequality certified in exact rational arithmetic (or, where");
        println!("noted, measured by an exact optimizer).\n");
    }

    let total = Instant::now();
    for e in &experiments {
        if !selected.is_empty() && !selected.iter().any(|s| s.as_str() == e.id) {
            continue;
        }
        let t0 = Instant::now();
        let tables = (e.run)();
        let elapsed = t0.elapsed();
        if markdown {
            println!("## {} — {}\n", e.id, e.paper_ref);
            for t in &tables {
                print!("{}", t.render_markdown());
            }
            println!("*Regenerated in {elapsed:.2?}.*\n");
        } else {
            println!("### {} — {} ({elapsed:.2?})\n", e.id, e.paper_ref);
            for t in &tables {
                println!("{}", t.render_text());
            }
        }
    }
    eprintln!("total: {:.2?}", total.elapsed());
}
