//! `aqo` — command-line front end for the library.
//!
//! ```text
//! aqo gen <chain|star|snowflake|cycle|clique|grid> <n> [seed]   # emit a .qon instance
//! aqo optimize <file.qon> [--method dp|bnb|exhaustive|greedy|ikkbz|sa|ga] [--no-cartesian]
//!              [--timeout-ms <n>] [--max-expansions <n>] [--fallback <chain>]
//! aqo optimize-qoh <file.qoh> [--method exhaustive|greedy]
//!              [--timeout-ms <n>] [--max-expansions <n>] [--fallback <chain>]
//! aqo reduce-3sat <file.cnf> [--a <int>] [--e <int>]            # Lemma 3 + f_N chain
//! aqo clique <file.dimacs>                                      # exact max clique
//! aqo serve [--addr <host:port>] [--stdio] [--threads <n>]      # JSONL optimization service
//! aqo request <addr> <op> [file]                                # one-shot service client
//! aqo loadgen [--addr <host:port>] [--concurrency 1,2,4]        # benchmark a live server
//! aqo chaos [--quick] [--out CHAOS.json]                        # deterministic fault campaign
//! aqo top [--addr <host:port>] [--once] [--json]                # live metrics dashboard
//! aqo trace view <trace.jsonl>                                  # per-request span trees
//! ```
//!
//! Instances use the text formats of `aqo_core::textio` (`.qon`, `.qoh`),
//! DIMACS CNF for formulas and DIMACS edge format for graphs. Everything
//! prints to stdout; errors exit nonzero.
//!
//! Passing any of `--timeout-ms`, `--max-expansions`, or `--fallback` routes
//! the command through the budgeted driver ([`aqo_driver`]): the strongest
//! tier runs under the budget and failures degrade down the fallback chain
//! (`dp,bnb,ikkbz,greedy` for QO_N, `exhaustive,greedy` for QO_H). The
//! driver's report — which tier answered, budget consumed, failures
//! swallowed — goes to stderr; the plan goes to stdout as usual. The
//! `AQO_FAULTS` environment variable arms fault-injection sites (see
//! [`aqo_driver::faults`]).
//!
//! Observability: `--metrics` prints a metrics summary table to stderr,
//! `--trace-json <path>` writes the structured event journal as JSON Lines,
//! and `--report-json <path>` writes the driver report as JSON. Turning on
//! `--metrics` or `--trace-json` without an explicit `--method` routes
//! through the driver (so tier events appear in the trace) and forces the
//! DP tier through the parallel engine even at `--threads 1`, keeping the
//! deterministic `optimizer.engine.*` counters comparable across thread
//! counts. `aqo trace-check <path>` validates a journal without external
//! tools.

use aqo_bignum::{BigRational, BigUint};
use aqo_core::{textio, workloads, CostScalar};
use aqo_driver::{faults, BudgetSpec, QohDriverConfig, QohTier, QonDriverConfig, QonTier};
use aqo_optimizer::{
    branch_bound, ccp, dp, engine, exhaustive, genetic, greedy, ikkbz, local_search, pipeline,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::process::ExitCode;
use std::time::Duration;

/// Everything that can go wrong at the CLI boundary.
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown subcommand, missing operand, malformed flag.
    Usage(String),
    /// A file could not be read.
    Io { path: String, source: std::io::Error },
    /// A file was read but does not parse as its expected format.
    Parse { path: String, message: String },
    /// The instance admits no plan under the requested constraints.
    Infeasible(String),
    /// The requested method cannot handle this instance at all (too many
    /// relations for its subset-mask width). The invocation was
    /// well-formed, so the usage banner is suppressed.
    Unsupported(String),
    /// The `AQO_FAULTS` specification is malformed.
    Faults(String),
    /// Every tier of the driver's fallback chain failed.
    Driver(aqo_driver::DriverError),
    /// A remote `aqo serve` answered with a structured error (or loadgen
    /// found wrong-cost responses). The invocation itself was fine, so
    /// the usage banner is suppressed.
    Remote(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => write!(f, "reading {path}: {source}"),
            CliError::Parse { path, message } => write!(f, "parsing {path}: {message}"),
            CliError::Infeasible(msg) => write!(f, "{msg}"),
            CliError::Unsupported(msg) => write!(f, "{msg}"),
            CliError::Faults(msg) => write!(f, "AQO_FAULTS: {msg}"),
            CliError::Driver(e) => write!(f, "{e}"),
            CliError::Remote(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Driver(e) => Some(e),
            _ => None,
        }
    }
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The linter front end owns its own flags and exit codes (0 clean,
    // 1 baseline regressions, 2 bad invocation); findings are expected
    // output, so the usage banner must not follow them.
    if args.first().map(String::as_str) == Some("analyze") {
        return ExitCode::from(aqo_analyze::cli_main(&args[1..]) as u8);
    }
    if matches!(args.first().map(String::as_str), Some("--version" | "-V")) {
        println!("aqo {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        // A remote or unsupported error means the invocation was
        // well-formed; repeating the usage banner would bury it.
        Err(e @ (CliError::Remote(_) | CliError::Unsupported(_))) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  aqo gen <chain|star|snowflake|cycle|clique|grid> <n> [seed]\n  aqo optimize <file.qon> [--method dp|ccp|bnb|exhaustive|greedy|ikkbz|sa|ga] [--no-cartesian] [--explain]\n               [--threads <n>] [--timeout-ms <n>] [--max-expansions <n>] [--fallback <tier,tier,...>]\n               [--metrics] [--trace-json <path>] [--report-json <path>]\n  aqo optimize-qoh <file.qoh> [--method exhaustive|greedy]\n               [--threads <n>] [--timeout-ms <n>] [--max-expansions <n>] [--fallback <tier,tier,...>]\n               [--metrics] [--trace-json <path>] [--report-json <path>]\n  aqo serve [--addr <host:port>] [--stdio] [--threads <n>] [--max-inflight <n>]\n            [--cache-cap <n>] [--idle-timeout-ms <n>] [--default-timeout-ms <n>]\n            [--conn-timeout-ms <n>] [--read-deadline-ms <n>] [--max-line-bytes <n>]\n            [--no-degrade] [--cache-snapshot <path>] [--obs-interval-ms <n>]\n            [--record <path>] [--metrics] [--trace-json <path>] [--report-json <path>]\n                                                       # JSONL optimization service (docs/SERVING.md)\n  aqo request <addr> <optimize|explain|optimize-qoh|explain-qoh|clique|status|metrics|shutdown> [file]\n              [--id <n>] [--method <tier>] [--fallback <tier,tier,...>] [--timeout-ms <n>]\n              [--max-expansions <n>] [--threads <n>] [--no-cartesian] [--no-cache]\n  aqo loadgen [--addr <host:port>] [--requests <n>] [--concurrency <c1,c2,...>]\n              [--mix qon|qoh|mixed] [--pool <n>] [--seed <n>] [--record <path>] [--out <path>]\n                                                       # writes BENCH_serve.json\n  aqo chaos [--quick] [--requests <n>] [--fault-count <n>] [--seed <n>] [--out <path>]\n                                                       # fault campaign, writes CHAOS.json (docs/ROBUSTNESS.md)\n  aqo replay extract <journal.jsonl> [--out <path>]    # journal -> aqo-workload/v1\n  aqo replay run <workload.jsonl> [--addr <host:port>] [--strip-timing] [--out <path>]\n                                                       # re-drive + diff, exit 1 on regression\n  aqo replay validate [<workload.jsonl>] [--quick] [--instance <file.qon>] [--trials <n>]\n              [--tolerance <f>] [--min-gap-log2 <f>] [--seed <n>] [--max-rows <n>]\n              [--json] [--out <path>]                  # execution-backed ordering gate (docs/REPLAY.md)\n  aqo exec validate <file.qon> [--trials <n>] [--seed <n>] [--json] [--out <path>]\n                                                       # model-vs-measured calibration\n  aqo bench [--quick] [--threads <n>] [--out <path>]   # writes BENCH_optimizer.json\n  aqo trace-check <trace.jsonl>                        # validate a --trace-json journal\n  aqo trace view <trace.jsonl>                         # render per-request span trees\n  aqo top [--addr <host:port>] [--once] [--json] [--interval-ms <n>]\n                                                       # live dashboard from the `metrics` op\n  aqo analyze [--json] [--root <dir>] [--rule <id>] [--baseline <file>]\n              [--no-baseline] [--write-baseline]      # invariant linter (docs/ANALYSIS.md)\n  aqo reduce-3sat <file.cnf> [--a <int>] [--e <int>]\n  aqo clique <file.dimacs>\n  aqo --version | -V                                   # print version and exit\n\n--threads: 1 = sequential (default), 0 = one worker per hardware thread,\nk > 1 routes the exact tiers through the parallel engines (same optimum).\n--metrics prints a metrics summary to stderr; --trace-json writes the\nstructured event journal as JSON Lines; --report-json writes the driver\nreport as JSON (and routes through the driver)."
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// As [`flag_value`], but a flag present without a following value is a
/// usage error rather than silently absent.
fn required_flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, CliError> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(String::as_str)
            .map(Some)
            .ok_or_else(|| CliError::usage(format!("{name} requires a value"))),
    }
}

/// Parses an optional `--flag <u64>` into `Ok(None)` / `Ok(Some(v))`.
fn u64_flag(args: &[String], name: &str) -> Result<Option<u64>, CliError> {
    required_flag_value(args, name)?
        .map(|s| s.parse().map_err(|_| CliError::usage(format!("bad {name} value `{s}`"))))
        .transpose()
}

/// The `--threads` knob: defaults to 1 (sequential); 0 means auto.
fn threads_flag(args: &[String]) -> Result<usize, CliError> {
    Ok(u64_flag(args, "--threads")?.map_or(1, |v| v as usize))
}

/// The budget/fallback flags shared by `optimize` and `optimize-qoh`;
/// `Some` when any of them is present (which routes through the driver).
struct DriverFlags {
    budget: BudgetSpec,
    fallback: Option<String>,
}

fn driver_flags(args: &[String]) -> Result<Option<DriverFlags>, CliError> {
    let timeout = u64_flag(args, "--timeout-ms")?.map(Duration::from_millis);
    let max_expansions = u64_flag(args, "--max-expansions")?;
    let fallback = required_flag_value(args, "--fallback")?.map(str::to_string);
    if timeout.is_none() && max_expansions.is_none() && fallback.is_none() {
        return Ok(None);
    }
    Ok(Some(DriverFlags {
        budget: BudgetSpec { timeout, max_expansions, max_memory_bytes: None },
        fallback,
    }))
}

/// The observability flags shared by `optimize` and `optimize-qoh`.
/// Parsing does not enable collection; callers do that once arguments are
/// fully validated (so a usage error never leaves obs half-armed).
struct ObsFlags {
    metrics: bool,
    trace_json: Option<String>,
    report_json: Option<String>,
}

impl ObsFlags {
    /// Whether metric/journal collection should be switched on.
    fn collecting(&self) -> bool {
        self.metrics || self.trace_json.is_some()
    }
}

fn obs_flags(args: &[String]) -> Result<ObsFlags, CliError> {
    Ok(ObsFlags {
        metrics: args.iter().any(|a| a == "--metrics"),
        trace_json: required_flag_value(args, "--trace-json")?.map(str::to_string),
        report_json: required_flag_value(args, "--report-json")?.map(str::to_string),
    })
}

/// Flushes the journal to `--trace-json` and the summary table to stderr
/// for `--metrics`, after the optimization ran.
fn finish_obs(obs: &ObsFlags) -> Result<(), CliError> {
    if let Some(path) = &obs.trace_json {
        let events = aqo_obs::journal::drain();
        std::fs::write(path, aqo_obs::journal::to_jsonl(&events))
            .map_err(|source| CliError::Io { path: path.clone(), source })?;
    }
    if obs.metrics {
        eprint!("{}", aqo_obs::render_summary());
    }
    Ok(())
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_string(), source })
}

fn run(args: &[String]) -> Result<(), CliError> {
    faults::load_env().map_err(CliError::Faults)?;
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("optimize-qoh") => cmd_optimize_qoh(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("trace-check") => cmd_trace_check(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("exec") => cmd_exec(&args[1..]),
        Some("reduce-3sat") => cmd_reduce_3sat(&args[1..]),
        Some("clique") => cmd_clique(&args[1..]),
        Some(other) => Err(CliError::usage(format!("unknown subcommand `{other}`"))),
        None => Err(CliError::usage("missing subcommand")),
    }
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let shape = args.first().ok_or_else(|| CliError::usage("gen: missing shape"))?;
    let n: usize = args
        .get(1)
        .ok_or_else(|| CliError::usage("gen: missing size"))?
        .parse()
        .map_err(|_| CliError::usage("gen: bad size"))?;
    let seed: u64 = args
        .get(2)
        .map_or(Ok(0), |s| s.parse())
        .map_err(|_| CliError::usage("gen: bad seed"))?;
    let params = workloads::WorkloadParams::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = match shape.as_str() {
        "chain" => workloads::chain(n, &params, &mut rng),
        "star" => workloads::star(n, &params, &mut rng),
        "snowflake" => workloads::snowflake(n.max(1), 2, &params, &mut rng),
        "cycle" => workloads::cycle(n, &params, &mut rng),
        "clique" => workloads::clique(n, &params, &mut rng),
        "grid" => workloads::grid(n.div_ceil(2), 2, &params, &mut rng),
        other => return Err(CliError::usage(format!("gen: unknown shape {other}"))),
    };
    print!("{}", textio::qon_to_text(&inst));
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| CliError::usage("optimize: missing file"))?;
    // Flags are validated before the file is touched: a malformed
    // invocation is a usage error regardless of what the operand holds.
    let method_given = flag_value(args, "--method").is_some();
    let method = flag_value(args, "--method").unwrap_or("dp");
    let allow_cartesian = !args.iter().any(|a| a == "--no-cartesian");
    let threads = threads_flag(args)?;
    let obs = obs_flags(args)?;
    let dflags = driver_flags(args)?;
    let text = read_file(path)?;
    let inst = textio::qon_from_text(&text)
        .map_err(|e| CliError::Parse { path: path.to_string(), message: e.to_string() })?;
    // Any driver flag, --report-json, or obs without an explicit --method
    // routes through the driver (the trace then carries tier events).
    let route_driver =
        dflags.is_some() || obs.report_json.is_some() || (obs.collecting() && !method_given);
    if obs.collecting() {
        aqo_obs::set_enabled(true);
    }

    let (label, sequence): (String, aqo_core::JoinSequence) =
        if route_driver {
            let flags = dflags.unwrap_or(DriverFlags {
                budget: BudgetSpec::unlimited(),
                fallback: None,
            });
            let chain = match &flags.fallback {
                Some(spec) => QonTier::parse_chain(spec)
                    .map_err(|e| CliError::usage(format!("--fallback: {e}")))?,
                None => QonTier::default_chain(),
            };
            let cfg = QonDriverConfig {
                budget: flags.budget,
                chain,
                allow_cartesian,
                threads,
                force_engine_dp: obs.collecting(),
                ..QonDriverConfig::default()
            };
            let outcome = aqo_driver::optimize_qon(&inst, &cfg).map_err(CliError::Driver)?;
            eprintln!("driver: {}", outcome.report);
            if let Some(path) = &obs.report_json {
                std::fs::write(path, outcome.report.to_json())
                    .map_err(|source| CliError::Io { path: path.clone(), source })?;
            }
            (format!("driver ({} tier)", outcome.report.tier), outcome.optimum.sequence)
        } else {
            let mut rng = StdRng::seed_from_u64(0);
            let (label, sequence) = match method {
                "dp" | "exhaustive" | "ccp" if inst.n() > method_max_n(method) => {
                    let alt = if method == "ccp" || inst.n() > ccp::MAX_N {
                        "use a polynomial method (greedy|ikkbz|sa|ga)".to_string()
                    } else {
                        format!(
                            "use --method ccp for sparse no-cartesian instances up to \
                             n = {} or a polynomial method (greedy|ikkbz|sa|ga)",
                            ccp::MAX_N
                        )
                    };
                    return Err(CliError::Unsupported(format!(
                        "--method {method} handles n <= {} (instance has n = {}); {alt}",
                        method_max_n(method),
                        inst.n(),
                    )));
                }
                "ccp" if allow_cartesian => {
                    return Err(CliError::usage(
                        "optimize: --method ccp is exact only for the cartesian-free space; \
                         add --no-cartesian (or use --method dp)"
                            .to_string(),
                    ));
                }
                "ccp" => {
                    let o = ccp::optimize_two_phase::<BigRational>(
                        &inst,
                        threads,
                        &aqo_core::Budget::unlimited(),
                    )
                    .expect("unlimited budget cannot be exceeded")
                    .ok_or_else(infeasible_qon)?;
                    ("exact (DPccp connected-subgraph DP)", o.sequence)
                }
                "dp" if threads == 1 => {
                    let o = dp::optimize::<BigRational>(&inst, allow_cartesian)
                        .ok_or_else(infeasible_qon)?;
                    ("exact (subset DP)", o.sequence)
                }
                "dp" => {
                    let opts = engine::DpOptions { allow_cartesian, threads };
                    let o = engine::optimize_two_phase::<BigRational>(
                        &inst,
                        &opts,
                        &aqo_core::Budget::unlimited(),
                    )
                    .expect("unlimited budget cannot be exceeded")
                    .ok_or_else(infeasible_qon)?;
                    ("exact (parallel two-phase DP)", o.sequence)
                }
                "bnb" if threads == 1 => {
                    let o = branch_bound::optimize::<BigRational>(&inst, allow_cartesian)
                        .ok_or_else(infeasible_qon)?;
                    ("exact (branch & bound)", o.sequence)
                }
                "bnb" => {
                    let o =
                        branch_bound::optimize_par::<BigRational>(&inst, allow_cartesian, threads)
                            .ok_or_else(infeasible_qon)?;
                    ("exact (parallel branch & bound)", o.sequence)
                }
                "exhaustive" if threads == 1 => {
                    ("exact (exhaustive)", exhaustive::optimize::<BigRational>(&inst).sequence)
                }
                "exhaustive" => (
                    "exact (parallel exhaustive)",
                    exhaustive::optimize_par_with_budget::<BigRational>(
                        &inst,
                        threads,
                        &aqo_core::Budget::unlimited(),
                    )
                    .expect("unlimited budget cannot be exceeded")
                    .sequence,
                ),
                "greedy" => (
                    "greedy min-intermediate",
                    greedy::min_intermediate(&inst, allow_cartesian)
                        .ok_or_else(|| CliError::Infeasible("greedy got stuck".into()))?,
                ),
                "ikkbz" => ("IKKBZ (trees)", ikkbz::optimize(&inst).sequence),
                "sa" => (
                    "simulated annealing",
                    local_search::simulated_annealing(
                        &inst,
                        &local_search::SaParams::default(),
                        &mut rng,
                    ),
                ),
                "ga" => {
                    ("genetic", genetic::optimize(&inst, &genetic::GaParams::default(), &mut rng))
                }
                other => {
                    return Err(CliError::usage(format!("optimize: unknown method {other}")))
                }
            };
            (label.to_string(), sequence)
        };

    let cost: BigRational = inst.total_cost(&sequence);
    println!("method : {label}");
    println!("order  : {:?}", sequence.order());
    println!("cost   : {cost}");
    println!("log2   : {:.3}", CostScalar::log2(&cost));
    if args.iter().any(|a| a == "--explain") {
        println!();
        print!("{}", aqo_core::explain::explain_qon(&inst, &sequence));
    }
    finish_obs(&obs)
}

fn infeasible_qon() -> CliError {
    CliError::Infeasible("no cartesian-free sequence exists".into())
}

/// Largest `n` each subset-mask exact method accepts; beyond it the CLI
/// rejects with a structured error instead of letting mask arithmetic
/// wrap or an internal assert panic.
fn method_max_n(method: &str) -> usize {
    match method {
        "dp" => dp::MAX_N,
        "ccp" => ccp::MAX_N,
        "exhaustive" => exhaustive::MAX_N,
        _ => usize::MAX,
    }
}

fn cmd_optimize_qoh(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| CliError::usage("optimize-qoh: missing file"))?;
    let method_given = flag_value(args, "--method").is_some();
    let method = flag_value(args, "--method").unwrap_or("greedy");
    let threads = threads_flag(args)?;
    let obs = obs_flags(args)?;
    let dflags = driver_flags(args)?;
    let text = read_file(path)?;
    let inst = textio::qoh_from_text(&text)
        .map_err(|e| CliError::Parse { path: path.to_string(), message: e.to_string() })?;
    let route_driver =
        dflags.is_some() || obs.report_json.is_some() || (obs.collecting() && !method_given);
    if obs.collecting() {
        aqo_obs::set_enabled(true);
    }

    let (label, plan): (String, pipeline::QohPlan) = if route_driver {
        let flags = dflags.unwrap_or(DriverFlags {
            budget: BudgetSpec::unlimited(),
            fallback: None,
        });
        let chain = match &flags.fallback {
            Some(spec) => QohTier::parse_chain(spec)
                .map_err(|e| CliError::usage(format!("--fallback: {e}")))?,
            None => QohTier::default_chain(),
        };
        let cfg = QohDriverConfig {
            budget: flags.budget,
            chain,
            threads,
            ..QohDriverConfig::default()
        };
        let outcome = aqo_driver::optimize_qoh(&inst, &cfg).map_err(CliError::Driver)?;
        eprintln!("driver: {}", outcome.report);
        if let Some(path) = &obs.report_json {
            std::fs::write(path, outcome.report.to_json())
                .map_err(|source| CliError::Io { path: path.clone(), source })?;
        }
        (format!("driver ({} tier)", outcome.report.tier), outcome.plan)
    } else {
        let plan = match method {
            "exhaustive" if threads != 1 => pipeline::optimize_exhaustive_par_with_budget(
                &inst,
                threads,
                &aqo_core::Budget::unlimited(),
            )
            .expect("unlimited budget cannot be exceeded"),
            "exhaustive" => pipeline::optimize_exhaustive(&inst),
            "greedy" => pipeline::optimize_greedy(&inst),
            other => {
                return Err(CliError::usage(format!("optimize-qoh: unknown method {other}")))
            }
        }
        .ok_or_else(|| {
            CliError::Infeasible("no feasible plan under the memory budget".into())
        })?;
        (method.to_string(), plan)
    };

    println!("method        : {label}");
    println!("order         : {:?}", plan.sequence.order());
    println!("decomposition : {:?}", plan.decomposition.fragments());
    println!("cost          : {}", plan.cost);
    println!("log2          : {:.3}", plan.cost.log2());
    if args.iter().any(|a| a == "--explain") {
        if let Some(text) =
            aqo_core::explain::explain_qoh(&inst, &plan.sequence, &plan.decomposition)
        {
            println!();
            print!("{text}");
        }
    }
    finish_obs(&obs)
}

/// Validates a `--trace-json` journal: every nonempty line must parse as a
/// JSON object carrying a `type` field, and a healthy optimize trace must
/// contain at least one `span` event. `tier_start` is only required when
/// the journal carries driver events at all — an explicit `--method` run
/// bypasses the tier chain and legitimately journals no driver activity.
/// Prints per-type event counts; exits nonzero on any violation.
fn cmd_trace_check(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| CliError::usage("trace-check: missing file"))?;
    let text = read_file(path)?;
    let mut counts: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut total = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = aqo_obs::json::parse(line).map_err(|e| CliError::Parse {
            path: path.to_string(),
            message: format!("line {}: {e}", i + 1),
        })?;
        let etype = doc.get("type").and_then(|v| v.as_str()).ok_or_else(|| CliError::Parse {
            path: path.to_string(),
            message: format!("line {}: event has no `type` field", i + 1),
        })?;
        *counts.entry(etype.to_string()).or_insert(0) += 1;
        total += 1;
    }
    for (etype, n) in &counts {
        println!("{etype:<18} {n}");
    }
    println!("{:<18} {total}", "total");
    let driver_routed = ["tier_start", "tier_failure", "retry", "fallback", "fault_injected"]
        .iter()
        .any(|etype| counts.contains_key(*etype));
    let mut required = vec!["span"];
    if driver_routed {
        required.push("tier_start");
    }
    for required in required {
        if counts.get(required).copied().unwrap_or(0) == 0 {
            return Err(CliError::Parse {
                path: path.to_string(),
                message: format!("journal has no `{required}` events"),
            });
        }
    }
    // Schema-v2 nesting check: balanced span_start/span pairs, no orphan
    // parents, no cross-trace references. A journal with no trace context
    // (schema v1, or collection off) passes with a zero report.
    let report = aqo_obs::traceview::check(&text)
        .map_err(|message| CliError::Parse { path: path.to_string(), message })?;
    if report.traces > 0 {
        println!(
            "traces {} spans {} traced-events {}",
            report.traces, report.spans, report.traced_events
        );
    }
    println!("ok");
    Ok(())
}

/// `aqo trace view <journal>` — reconstructs the per-request span trees
/// from a schema-v2 journal and prints them with self/total times and the
/// critical path marked. `trace` exists as a command group so future
/// verbs (diff, grep) have a home.
fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("view") => {
            let path =
                args.get(1).ok_or_else(|| CliError::usage("trace view: missing file"))?;
            let text = read_file(path)?;
            let rendered = aqo_obs::traceview::render(&text)
                .map_err(|message| CliError::Parse { path: path.to_string(), message })?;
            if rendered.is_empty() {
                println!("(no traced spans in journal)");
            } else {
                print!("{rendered}");
            }
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!("trace: unknown verb `{other}`"))),
        None => Err(CliError::usage("trace: missing verb (try `trace view <file>`)")),
    }
}

/// One decoded `metrics` reply, reduced to what the dashboard shows.
struct TopSnapshot {
    uptime_us: u64,
    workers: u64,
    queue_depth: u64,
    executing: u64,
    max_inflight: u64,
    accepting: bool,
    /// Total requests accepted (sum of `serve.requests.*` counters).
    requests: u64,
    ok: u64,
    errors: u64,
    overloaded: u64,
    degraded: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// `(tier name, success count)` from `driver.tier_success.<tier>`.
    tiers: Vec<(String, u64)>,
    /// `serve.request_us` quantiles: (p50, p99), when any request ran.
    latency: Option<(u64, u64)>,
}

impl TopSnapshot {
    fn parse(line: &str) -> Result<TopSnapshot, String> {
        use aqo_obs::json::JsonValue;
        let doc = aqo_obs::json::parse(line)?;
        let num =
            |v: Option<&JsonValue>| -> u64 { v.and_then(|v| v.as_num()).unwrap_or(0.0) as u64 };
        let counters = doc.get("counters").ok_or("reply has no `counters` object")?;
        let counter = |name: &str| num(counters.get(name));
        let mut requests = 0u64;
        let mut tiers = Vec::new();
        if let JsonValue::Obj(fields) = counters {
            for (k, v) in fields {
                if let Some(tier) = k.strip_prefix("driver.tier_success.") {
                    tiers.push((tier.to_string(), num(Some(v))));
                } else if k.starts_with("serve.requests.") {
                    requests += num(Some(v));
                }
            }
        }
        let latency = doc
            .get("histograms")
            .and_then(|h| h.get("serve.request_us"))
            .map(|h| (num(h.get("p50")), num(h.get("p99"))));
        Ok(TopSnapshot {
            uptime_us: num(doc.get("uptime_us")),
            workers: num(doc.get("workers")),
            queue_depth: num(doc.get("queue_depth")),
            executing: num(doc.get("executing")),
            max_inflight: num(doc.get("max_inflight")),
            accepting: matches!(doc.get("accepting"), Some(JsonValue::Bool(true))),
            requests,
            ok: counter("serve.responses.ok"),
            errors: counter("serve.responses.error"),
            overloaded: counter("serve.overloaded"),
            degraded: counter("serve.degraded"),
            cache_hits: counter("serve.cache.hits"),
            cache_misses: counter("serve.cache.misses"),
            tiers,
            latency,
        })
    }

    /// Renders the dashboard; `prev` (previous poll) turns counter totals
    /// into rates over the polling interval.
    fn render(&self, prev: Option<&TopSnapshot>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let uptime_s = self.uptime_us as f64 / 1e6;
        let rps = match prev {
            Some(p) if self.uptime_us > p.uptime_us => {
                (self.requests.saturating_sub(p.requests)) as f64
                    / ((self.uptime_us - p.uptime_us) as f64 / 1e6)
            }
            _ => self.requests as f64 / uptime_s.max(1e-9),
        };
        let _ = writeln!(
            out,
            "uptime {uptime_s:8.1}s   workers {}   accepting {}",
            self.workers, self.accepting
        );
        let _ = writeln!(
            out,
            "requests {}   ok {}   errors {}   rps {rps:.1}",
            self.requests, self.ok, self.errors
        );
        let _ = writeln!(
            out,
            "queue {} / inflight {} (max {})   overloaded {}   degraded {}",
            self.queue_depth, self.executing, self.max_inflight, self.overloaded, self.degraded
        );
        let lookups = self.cache_hits + self.cache_misses;
        let _ = writeln!(
            out,
            "cache hits {}   misses {}   hit-rate {:.2}",
            self.cache_hits,
            self.cache_misses,
            if lookups == 0 { 0.0 } else { self.cache_hits as f64 / lookups as f64 }
        );
        match self.latency {
            Some((p50, p99)) => {
                let _ = writeln!(out, "latency p50 {p50}us   p99 {p99}us");
            }
            None => out.push_str("latency (no requests yet)\n"),
        }
        for (tier, n) in &self.tiers {
            let _ = writeln!(out, "tier {tier:<12} {n}");
        }
        out
    }
}

/// `aqo top` — polls a live server's `metrics` op and renders a terminal
/// dashboard. `--once` polls a single time; `--json` prints the raw
/// metrics reply instead of the rendered view (for scripts/CI).
fn cmd_top(args: &[String]) -> Result<(), CliError> {
    let addr = required_flag_value(args, "--addr")?.unwrap_or("127.0.0.1:7878");
    let once = args.iter().any(|a| a == "--once");
    let json = args.iter().any(|a| a == "--json");
    let interval =
        Duration::from_millis(u64_flag(args, "--interval-ms")?.unwrap_or(1000).max(50));
    let poll = || -> Result<String, CliError> {
        let mut req = aqo_serve::Request::new(aqo_serve::Op::Metrics, aqo_serve::Problem::Qon);
        req.id = 0;
        aqo_serve::client::oneshot(addr, &req)
            .map_err(|source| CliError::Io { path: addr.to_string(), source })
    };
    let mut prev: Option<TopSnapshot> = None;
    loop {
        let line = poll()?;
        if json {
            println!("{line}");
        } else {
            let snap = TopSnapshot::parse(&line)
                .map_err(|e| CliError::Remote(format!("bad metrics reply: {e}")))?;
            if !once {
                // ANSI clear-screen + home, like `top`.
                print!("\x1b[2J\x1b[H");
            }
            println!("aqo top — {addr}");
            print!("{}", snap.render(prev.as_ref()));
            prev = Some(snap);
        }
        if once {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    let quick = args.iter().any(|a| a == "--quick");
    // Benches default to auto so the recorded speedup reflects the machine.
    let threads = u64_flag(args, "--threads")?.map_or(0, |v| v as usize);
    let out = required_flag_value(args, "--out")?.unwrap_or("BENCH_optimizer.json");
    let cfg = aqo_bench::optbench::BenchConfig { quick, threads };
    eprintln!(
        "bench: {} profile, {} worker thread(s)",
        if quick { "quick" } else { "full" },
        aqo_core::parallel::resolve_threads(threads),
    );
    let records = aqo_bench::optbench::run(&cfg);
    let json = aqo_bench::optbench::to_json(&cfg, &records);
    std::fs::write(out, &json)
        .map_err(|source| CliError::Io { path: out.to_string(), source })?;
    for r in &records {
        let speedup = r.speedup.map_or(String::new(), |s| format!("  speedup {s:.2}x"));
        println!(
            "{:<7} n={:<2} {:<16} {:<8} {:<3} {:>10.3} ms{speedup}",
            r.family, r.n, r.algo, r.scalar, r.mode, r.median_ms
        );
    }
    println!("wrote {out} ({} records)", records.len());
    Ok(())
}

fn cmd_reduce_3sat(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| CliError::usage("reduce-3sat: missing file"))?;
    let text = read_file(path)?;
    let f = aqo_sat::dimacs::from_dimacs(&text)
        .map_err(|e| CliError::Parse { path: path.to_string(), message: e.to_string() })?;
    if !f.is_3cnf() {
        return Err(CliError::Infeasible("formula is not 3CNF".into()));
    }
    let a: u64 = flag_value(args, "--a")
        .map_or(Ok(4), str::parse)
        .map_err(|_| CliError::usage("bad --a"))?;
    let red_g = aqo_reductions::clique_reduction::sat_to_clique(&f);
    eprintln!(
        "Lemma 3: {} vars, {} clauses -> graph with {} vertices ({} when satisfiable)",
        f.num_vars(),
        f.num_clauses(),
        red_g.graph.n(),
        red_g.satisfiable_omega
    );
    let e: u64 = flag_value(args, "--e")
        .map_or(Ok(red_g.satisfiable_omega as u64 - 2), str::parse)
        .map_err(|_| CliError::usage("bad --e"))?;
    let red = aqo_reductions::fn_reduction::reduce(&red_g.graph, &BigUint::from(a), e);
    eprintln!(
        "f_N: a = {a}, e = {e}; K(a,e) has {} bits",
        aqo_reductions::fn_reduction::k_bound(&BigUint::from(a), e).bits()
    );
    print!("{}", textio::qon_to_text(&red.instance));
    Ok(())
}

fn cmd_clique(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| CliError::usage("clique: missing file"))?;
    let text = read_file(path)?;
    let g = aqo_graph::io::from_dimacs(&text)
        .map_err(|e| CliError::Parse { path: path.to_string(), message: e.to_string() })?;
    let upper = aqo_graph::coloring::clique_upper_bound(&g);
    let c = aqo_graph::clique::max_clique(&g);
    println!("n      : {}", g.n());
    println!("m      : {}", g.m());
    println!("omega  : {}", c.len());
    println!("bound  : {upper} (colouring/degeneracy upper bound)");
    println!("clique : {c:?}");
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let addr = required_flag_value(args, "--addr")?.unwrap_or("127.0.0.1:7878");
    let stdio = args.iter().any(|a| a == "--stdio");
    let obs = obs_flags(args)?;
    let record_path = required_flag_value(args, "--record")?.map(str::to_string);
    let record_sink = record_path.as_ref().map(|_| aqo_serve::record::new_sink());
    let defaults = aqo_serve::ServeConfig::default();
    let cfg = aqo_serve::ServeConfig {
        threads: u64_flag(args, "--threads")?.map_or(4, |v| v as usize),
        max_inflight: u64_flag(args, "--max-inflight")?.map_or(64, |v| v as usize),
        cache_capacity: u64_flag(args, "--cache-cap")?.map_or(1024, |v| v as usize),
        idle_timeout: u64_flag(args, "--idle-timeout-ms")?.map(Duration::from_millis),
        default_timeout: u64_flag(args, "--default-timeout-ms")?.map(Duration::from_millis),
        conn_timeout: u64_flag(args, "--conn-timeout-ms")?
            .map_or(defaults.conn_timeout, Duration::from_millis),
        // 0 disables the slow-loris deadline (trusted-client deployments).
        read_deadline: match u64_flag(args, "--read-deadline-ms")? {
            None => defaults.read_deadline,
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
        },
        max_line_bytes: u64_flag(args, "--max-line-bytes")?
            .map_or(defaults.max_line_bytes, |v| v as usize),
        degrade: !args.iter().any(|a| a == "--no-degrade"),
        snapshot_path: required_flag_value(args, "--cache-snapshot")?
            .map(std::path::PathBuf::from),
        // 0 disables the time-series sampler; stdio mode never samples.
        obs_interval: match u64_flag(args, "--obs-interval-ms")? {
            _ if stdio => None,
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
            None => defaults.obs_interval,
        },
        record: record_sink.clone(),
    };
    // A server always keeps the metric registry live so the `metrics` op
    // and `aqo top` have data; the journal (which grows without bound) is
    // only captured when `--trace-json` asks for it.
    aqo_obs::set_enabled(true);
    aqo_obs::journal::set_capture(obs.trace_json.is_some());
    let server = aqo_serve::Server::new(&cfg);
    let report = if stdio {
        server.run_stdio()
    } else {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|source| CliError::Io { path: addr.to_string(), source })?;
        // Printed before the accept loop so scripts binding port 0 can
        // scrape the assigned port.
        match listener.local_addr() {
            Ok(local) => eprintln!("serve: listening on {local}"),
            Err(_) => eprintln!("serve: listening on {addr}"),
        }
        server
            .run(&listener)
            .map_err(|source| CliError::Io { path: addr.to_string(), source })?
    };
    eprintln!("serve: {report}");
    if let (Some(path), Some(sink)) = (&record_path, &record_sink) {
        let entries = aqo_serve::record::drain(sink);
        let workload = aqo_replay::Workload::new("serve", None, entries);
        std::fs::write(path, workload.to_jsonl())
            .map_err(|source| CliError::Io { path: path.clone(), source })?;
        eprintln!("serve: recorded {} request(s) to {path}", workload.entries.len());
    }
    if let Some(path) = &obs.report_json {
        std::fs::write(path, report.to_json())
            .map_err(|source| CliError::Io { path: path.clone(), source })?;
    }
    finish_obs(&obs)
}

fn cmd_request(args: &[String]) -> Result<(), CliError> {
    use aqo_serve::{Op, Problem};
    let addr = args.first().ok_or_else(|| CliError::usage("request: missing address"))?;
    let verb = args.get(1).ok_or_else(|| CliError::usage("request: missing operation"))?;
    let (op, problem) = match verb.as_str() {
        "optimize" => (Op::Optimize, Problem::Qon),
        "explain" => (Op::Explain, Problem::Qon),
        "optimize-qoh" => (Op::Optimize, Problem::Qoh),
        "explain-qoh" => (Op::Explain, Problem::Qoh),
        "clique" => (Op::Optimize, Problem::Clique),
        "status" => (Op::Status, Problem::Qon),
        "metrics" => (Op::Metrics, Problem::Qon),
        "shutdown" => (Op::Shutdown, Problem::Qon),
        other => return Err(CliError::usage(format!("request: unknown operation `{other}`"))),
    };
    let mut req = aqo_serve::Request::new(op, problem);
    req.id = u64_flag(args, "--id")?.unwrap_or(1);
    if matches!(op, Op::Optimize | Op::Explain) {
        let path = args
            .get(2)
            .filter(|a| !a.starts_with("--"))
            .ok_or_else(|| CliError::usage(format!("request: `{verb}` needs an instance file")))?;
        req.instance = Some(read_file(path)?);
    }
    req.method = required_flag_value(args, "--method")?.map(str::to_string);
    req.fallback = required_flag_value(args, "--fallback")?.map(str::to_string);
    if req.method.is_some() && req.fallback.is_some() {
        return Err(CliError::usage("request: --method and --fallback are mutually exclusive"));
    }
    req.timeout_ms = u64_flag(args, "--timeout-ms")?;
    req.max_expansions = u64_flag(args, "--max-expansions")?;
    req.threads = threads_flag(args)?;
    req.allow_cartesian = !args.iter().any(|a| a == "--no-cartesian");
    req.use_cache = !args.iter().any(|a| a == "--no-cache");
    let line = aqo_serve::client::oneshot(addr, &req)
        .map_err(|source| CliError::Io { path: addr.to_string(), source })?;
    println!("{line}");
    let doc = aqo_obs::json::parse(&line)
        .map_err(|e| CliError::Remote(format!("unparseable response: {e}")))?;
    if !matches!(doc.get("ok"), Some(aqo_obs::json::JsonValue::Bool(true))) {
        let error = doc.get("error");
        let kind =
            error.and_then(|e| e.get("kind")).and_then(|v| v.as_str()).unwrap_or("unknown");
        let msg = error.and_then(|e| e.get("message")).and_then(|v| v.as_str()).unwrap_or("");
        return Err(CliError::Remote(format!("server error ({kind}): {msg}")));
    }
    Ok(())
}

fn cmd_chaos(args: &[String]) -> Result<(), CliError> {
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        aqo_serve::chaos::ChaosConfig::quick()
    } else {
        aqo_serve::chaos::ChaosConfig::default()
    };
    if let Some(n) = u64_flag(args, "--requests")? {
        cfg.requests_per_cell = (n as usize).max(1);
    }
    if let Some(n) = u64_flag(args, "--fault-count")? {
        cfg.fault_count = n.max(1);
    }
    if let Some(s) = u64_flag(args, "--seed")? {
        cfg.seed = s;
    }
    let out = required_flag_value(args, "--out")?.unwrap_or("CHAOS.json");
    let obs = obs_flags(args)?;
    if obs.collecting() {
        aqo_obs::set_enabled(true);
    }
    eprintln!(
        "chaos: sweeping {} fault sites x 3 modes, {} request(s)/cell, {} fire(s)/site",
        aqo_driver::faults::CATALOG.len(),
        cfg.requests_per_cell,
        cfg.fault_count,
    );
    let report = aqo_serve::chaos::run(&cfg).map_err(CliError::Remote)?;
    std::fs::write(out, report.to_json())
        .map_err(|source| CliError::Io { path: out.to_string(), source })?;
    for cell in &report.cells {
        if !cell.violations.is_empty() {
            for v in &cell.violations {
                eprintln!("chaos: VIOLATION {}[{}]: {v}", cell.site, cell.mode);
            }
        }
    }
    for s in &report.scenarios {
        println!("scenario {:<20} {} — {}", s.name, if s.passed { "pass" } else { "FAIL" }, s.detail);
    }
    println!(
        "cells={} requests={} violations={} pool_intact={}",
        report.cells.len(),
        report.cells.iter().map(|c| c.requests).sum::<usize>(),
        report.total_violations(),
        report.pool_intact(),
    );
    println!("wrote {out}");
    finish_obs(&obs)?;
    if report.total_violations() > 0 {
        return Err(CliError::Remote(format!(
            "chaos: {} invariant violation(s)",
            report.total_violations()
        )));
    }
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> Result<(), CliError> {
    let mut cfg = aqo_serve::loadgen::LoadgenConfig::default();
    if let Some(addr) = required_flag_value(args, "--addr")? {
        cfg.addr = addr.to_string();
    }
    if let Some(n) = u64_flag(args, "--requests")? {
        cfg.requests = n as usize;
    }
    if let Some(spec) = required_flag_value(args, "--concurrency")? {
        cfg.concurrency = spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad --concurrency value `{s}`")))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(m) = required_flag_value(args, "--mix")? {
        cfg.mix = aqo_serve::loadgen::Mix::parse(m)
            .ok_or_else(|| CliError::usage(format!("bad --mix `{m}` (qon|qoh|mixed)")))?;
    }
    if let Some(p) = u64_flag(args, "--pool")? {
        cfg.pool = p as usize;
    }
    if let Some(s) = u64_flag(args, "--seed")? {
        cfg.seed = s;
    }
    let record_path = required_flag_value(args, "--record")?.map(str::to_string);
    cfg.record = record_path.is_some();
    let out = required_flag_value(args, "--out")?.unwrap_or("BENCH_serve.json");
    eprintln!(
        "loadgen: {} request(s) per level, levels {:?}, mix {}, against {}",
        cfg.requests,
        cfg.concurrency,
        cfg.mix.name(),
        cfg.addr
    );
    let report = aqo_serve::loadgen::run(&cfg).map_err(CliError::Remote)?;
    std::fs::write(out, report.to_json())
        .map_err(|source| CliError::Io { path: out.to_string(), source })?;
    if let Some(path) = &record_path {
        let workload =
            aqo_replay::Workload::new("loadgen", Some(cfg.seed), report.recorded.clone());
        std::fs::write(path, workload.to_jsonl())
            .map_err(|source| CliError::Io { path: path.clone(), source })?;
        println!("recorded {} request(s) to {path}", workload.entries.len());
    }
    for l in &report.levels {
        println!(
            "c={:<2} requests={} errors={} wrong_cost={} p50={}us p99={}us \
             throughput={:.1}rps cache_hit_rate={:.2}",
            l.concurrency,
            l.requests,
            l.errors,
            l.wrong_cost,
            l.p50_us,
            l.p99_us,
            l.throughput_rps,
            l.cache_hit_rate
        );
    }
    println!("wrote {out}");
    // Wrong costs are the one thing a cache-fronted service must never
    // produce; surface them as a hard failure for CI.
    if report.total_wrong_cost() > 0 {
        return Err(CliError::Remote(format!(
            "loadgen: {} wrong-cost response(s)",
            report.total_wrong_cost()
        )));
    }
    Ok(())
}

/// Parses an optional `--flag <f64>` into `Ok(None)` / `Ok(Some(v))`.
fn f64_flag(args: &[String], name: &str) -> Result<Option<f64>, CliError> {
    required_flag_value(args, name)?
        .map(|s| {
            s.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| CliError::usage(format!("bad {name} value `{s}`")))
        })
        .transpose()
}

fn cmd_replay(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("extract") => cmd_replay_extract(&args[1..]),
        Some("run") => cmd_replay_run(&args[1..]),
        Some("validate") => cmd_replay_validate(&args[1..]),
        Some(other) => Err(CliError::usage(format!("replay: unknown subcommand `{other}`"))),
        None => Err(CliError::usage("replay: missing subcommand (extract|run|validate)")),
    }
}

fn cmd_replay_extract(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::usage("replay extract: missing journal file"))?;
    let out = required_flag_value(args, "--out")?.unwrap_or("workload.jsonl");
    let journal = read_file(path)?;
    let (workload, stats) = aqo_replay::extract::extract(&journal)
        .map_err(|message| CliError::Parse { path: path.clone(), message })?;
    std::fs::write(out, workload.to_jsonl())
        .map_err(|source| CliError::Io { path: out.to_string(), source })?;
    println!(
        "extracted {} request(s) to {out} (skipped: {} error, {} degraded, {} unreplayable, \
         {} unpaired)",
        stats.extracted,
        stats.skipped_errors,
        stats.skipped_degraded,
        stats.skipped_unreplayable,
        stats.skipped_unpaired
    );
    Ok(())
}

fn cmd_replay_run(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::usage("replay run: missing workload file"))?;
    let addr = required_flag_value(args, "--addr")?;
    let out = required_flag_value(args, "--out")?;
    let rcfg = aqo_replay::ReplayConfig {
        strip_timing: args.iter().any(|a| a == "--strip-timing"),
    };
    let obs = obs_flags(args)?;
    let workload = aqo_replay::Workload::parse(&read_file(path)?)
        .map_err(|message| CliError::Parse { path: path.clone(), message })?;
    // Counters/spans are always live for a replay run (it is a gate, and
    // its `replay.*` counters are its audit trail); the journal is only
    // captured when `--trace-json` asks.
    aqo_obs::set_enabled(true);
    aqo_obs::journal::set_capture(obs.trace_json.is_some());
    let report = match addr {
        Some(addr) => {
            let backend = aqo_replay::run::live_backend(addr).map_err(CliError::Remote)?;
            aqo_replay::run::run(&workload, &rcfg, backend)
        }
        None => aqo_replay::run::run(&workload, &rcfg, aqo_replay::run::driver_backend()),
    };
    for d in &report.diffs {
        eprintln!(
            "replay: {} id={} {} (baseline {} [{}], new {} [{}])",
            d.kind.name(),
            d.id,
            d.detail,
            d.baseline_cost,
            d.baseline_tier,
            d.new_cost,
            d.new_tier
        );
    }
    let json = report.to_json();
    match out {
        Some(out) => {
            std::fs::write(out, &json)
                .map_err(|source| CliError::Io { path: out.to_string(), source })?;
            println!(
                "replayed {} request(s): {} regression(s), {} improvement(s), {} plan change(s), \
                 {} tier change(s), {} error(s); wrote {out}",
                report.replayed,
                report.cost_regressions,
                report.cost_improvements,
                report.plan_changes,
                report.tier_changes,
                report.errors
            );
        }
        None => print!("{json}"),
    }
    finish_obs(&obs)?;
    if report.gate_failures() > 0 {
        return Err(CliError::Remote(format!(
            "replay: {} gate failure(s)",
            report.gate_failures()
        )));
    }
    Ok(())
}

fn cmd_replay_validate(args: &[String]) -> Result<(), CliError> {
    let mut cfg = aqo_replay::ValidateConfig::default();
    if let Some(t) = u64_flag(args, "--trials")? {
        cfg.trials = (t as usize).max(1);
    }
    if let Some(t) = f64_flag(args, "--tolerance")? {
        cfg.tolerance = t;
    }
    if let Some(g) = f64_flag(args, "--min-gap-log2")? {
        cfg.min_gap_log2 = g;
    }
    if let Some(s) = u64_flag(args, "--seed")? {
        cfg.seed = s;
    }
    if let Some(r) = u64_flag(args, "--max-rows")? {
        cfg.max_rows = r;
    }
    cfg.quick = args.iter().any(|a| a == "--quick");
    let workload_path = args.first().filter(|a| !a.starts_with("--"));
    let instance_path = required_flag_value(args, "--instance")?;
    if workload_path.is_some() && instance_path.is_some() {
        return Err(CliError::usage(
            "replay validate: a workload file and --instance are mutually exclusive",
        ));
    }
    let report = if let Some(path) = instance_path {
        let inst = textio::qon_from_text(&read_file(path)?)
            .map_err(|e| CliError::Parse { path: path.to_string(), message: e.to_string() })?;
        if !aqo_replay::validate::executable(&inst, cfg.max_rows) {
            return Err(CliError::Unsupported(format!(
                "replay validate: {path} is too large to materialize (max {} rows)",
                cfg.max_rows
            )));
        }
        let mut report = aqo_replay::validate::validate_builtin(&aqo_replay::ValidateConfig {
            quick: true,
            ..cfg
        });
        // The built-in families anchor the report; the named instance is
        // validated alongside them under the same knobs.
        aqo_replay::validate::validate_instance(path, &inst, &cfg, &mut report);
        report
    } else if let Some(path) = workload_path {
        let workload = aqo_replay::Workload::parse(&read_file(path)?)
            .map_err(|message| CliError::Parse { path: path.clone(), message })?;
        aqo_replay::validate::validate_workload(&workload, &cfg)
            .map_err(|message| CliError::Parse { path: path.clone(), message })?
    } else {
        aqo_replay::validate::validate_builtin(&cfg)
    };
    let json_mode = args.iter().any(|a| a == "--json");
    if json_mode {
        print!("{}", report.to_json());
    } else {
        for inst in &report.instances {
            println!(
                "validate {:<16} n={} plans={} capped={} pairs={} violations={}",
                inst.name,
                inst.n,
                inst.plans.len(),
                inst.plans_capped,
                inst.pairs_checked,
                inst.violations
            );
        }
        for v in &report.violations {
            println!(
                "VIOLATION {}: model prefers {:?} ({:.2} bits) over {:?} ({:.2} bits) but it \
                 measured {:.1}x the work ({:.1} vs {:.1})",
                v.instance,
                v.cheaper.order,
                v.cheaper.model_log2,
                v.dearer.order,
                v.dearer.model_log2,
                v.ratio,
                v.cheaper.measured_work,
                v.dearer.measured_work
            );
        }
        println!(
            "checked {} pair(s) across {} instance(s), {} skipped: {}",
            report.pairs_checked,
            report.instances.len(),
            report.skipped,
            if report.passed() { "pass" } else { "FAIL" }
        );
    }
    if let Some(out) = required_flag_value(args, "--out")? {
        std::fs::write(out, report.to_json())
            .map_err(|source| CliError::Io { path: out.to_string(), source })?;
        println!("wrote {out}");
    }
    if !report.passed() {
        return Err(CliError::Remote(format!(
            "replay validate: {} ordering violation(s) over {} pair(s)",
            report.violations.len(),
            report.pairs_checked
        )));
    }
    Ok(())
}

fn cmd_exec(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("validate") => cmd_exec_validate(&args[1..]),
        Some(other) => Err(CliError::usage(format!("exec: unknown subcommand `{other}`"))),
        None => Err(CliError::usage("exec: missing subcommand (validate)")),
    }
}

fn cmd_exec_validate(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::usage("exec validate: missing instance file"))?;
    let trials = u64_flag(args, "--trials")?.map_or(3, |t| (t as usize).max(1));
    let seed = u64_flag(args, "--seed")?.unwrap_or(42);
    let inst = textio::qon_from_text(&read_file(path)?)
        .map_err(|e| CliError::Parse { path: path.clone(), message: e.to_string() })?;
    if !aqo_replay::validate::executable(&inst, aqo_exec::data::MAX_TUPLES as u64) {
        return Err(CliError::Unsupported(format!(
            "exec validate: {path} is too large to materialize (max {} rows per relation)",
            aqo_exec::data::MAX_TUPLES
        )));
    }
    // Calibrate the plan the optimizer would actually pick.
    let outcome = aqo_driver::optimize_qon(&inst, &QonDriverConfig::default())
        .map_err(CliError::Driver)?;
    let z = outcome.optimum.sequence;
    let mut rng = StdRng::seed_from_u64(seed);
    let cal = aqo_exec::validate::calibrate(&inst, &z, trials, &mut rng);
    if args.iter().any(|a| a == "--json") {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"aqo-exec-validate/v1\",\n  \"file\": ");
        aqo_obs::json::escape_into(&mut out, path);
        out.push_str(",\n  \"order\": [");
        for (i, v) in z.order().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&v.to_string());
        }
        out.push_str(&format!(
            "],\n  \"tier\": \"{}\",\n  \"trials\": {},\n  \"predicted_cost\": {:.3},\n  \
             \"measured_work\": {:.3},\n  \"cost_error\": {:.4},\n  \
             \"worst_intermediate_error\": {:.4},\n  \"predicted_intermediates\": [",
            outcome.report.tier,
            cal.trials,
            cal.predicted_cost,
            cal.measured_work,
            cal.cost_error(),
            cal.worst_intermediate_error(1.0),
        ));
        for (i, v) in cal.predicted_intermediates.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{v:.3}"));
        }
        out.push_str("],\n  \"measured_intermediates\": [");
        for (i, v) in cal.measured_intermediates.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{v:.3}"));
        }
        out.push_str("]\n}\n");
        match required_flag_value(args, "--out")? {
            Some(file) => {
                std::fs::write(file, &out)
                    .map_err(|source| CliError::Io { path: file.to_string(), source })?;
                println!("wrote {file}");
            }
            None => print!("{out}"),
        }
    } else {
        println!("plan {:?} (tier {}, {} trial(s))", z.order(), outcome.report.tier, cal.trials);
        println!(
            "predicted cost {:.1}, measured work {:.1} (relative error {:.3})",
            cal.predicted_cost,
            cal.measured_work,
            cal.cost_error()
        );
        for (i, (p, m)) in
            cal.predicted_intermediates.iter().zip(&cal.measured_intermediates).enumerate()
        {
            println!("N_{i}: predicted {p:.1}, measured {m:.1}");
        }
        println!("worst intermediate error {:.3}", cal.worst_intermediate_error(1.0));
    }
    Ok(())
}
