//! `aqo` — command-line front end for the library.
//!
//! ```text
//! aqo gen <chain|star|snowflake|cycle|clique|grid> <n> [seed]   # emit a .qon instance
//! aqo optimize <file.qon> [--method dp|bnb|exhaustive|greedy|ikkbz|sa|ga] [--no-cartesian]
//! aqo optimize-qoh <file.qoh> [--method exhaustive|greedy]
//! aqo reduce-3sat <file.cnf> [--a <int>] [--e <int>]            # Lemma 3 + f_N chain
//! aqo clique <file.dimacs>                                      # exact max clique
//! ```
//!
//! Instances use the text formats of `aqo_core::textio` (`.qon`, `.qoh`),
//! DIMACS CNF for formulas and DIMACS edge format for graphs. Everything
//! prints to stdout; errors exit nonzero.

use aqo_bignum::{BigRational, BigUint};
use aqo_core::{textio, workloads, CostScalar};
use aqo_optimizer::{branch_bound, dp, exhaustive, genetic, greedy, ikkbz, local_search, pipeline};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  aqo gen <chain|star|snowflake|cycle|clique|grid> <n> [seed]\n  aqo optimize <file.qon> [--method dp|bnb|exhaustive|greedy|ikkbz|sa|ga] [--no-cartesian] [--explain]\n  aqo optimize-qoh <file.qoh> [--method exhaustive|greedy]\n  aqo reduce-3sat <file.cnf> [--a <int>] [--e <int>]\n  aqo clique <file.dimacs>"
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("optimize-qoh") => cmd_optimize_qoh(&args[1..]),
        Some("reduce-3sat") => cmd_reduce_3sat(&args[1..]),
        Some("clique") => cmd_clique(&args[1..]),
        _ => Err("missing or unknown subcommand".into()),
    }
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let shape = args.first().ok_or("gen: missing shape")?;
    let n: usize = args
        .get(1)
        .ok_or("gen: missing size")?
        .parse()
        .map_err(|_| "gen: bad size".to_string())?;
    let seed: u64 = args.get(2).map_or(Ok(0), |s| s.parse()).map_err(|_| "gen: bad seed")?;
    let params = workloads::WorkloadParams::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = match shape.as_str() {
        "chain" => workloads::chain(n, &params, &mut rng),
        "star" => workloads::star(n, &params, &mut rng),
        "snowflake" => workloads::snowflake(n.max(1), 2, &params, &mut rng),
        "cycle" => workloads::cycle(n, &params, &mut rng),
        "clique" => workloads::clique(n, &params, &mut rng),
        "grid" => workloads::grid(n.div_ceil(2), 2, &params, &mut rng),
        other => return Err(format!("gen: unknown shape {other}")),
    };
    print!("{}", textio::qon_to_text(&inst));
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("optimize: missing file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let inst = textio::qon_from_text(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let method = flag_value(args, "--method").unwrap_or("dp");
    let allow_cartesian = !args.iter().any(|a| a == "--no-cartesian");
    let mut rng = StdRng::seed_from_u64(0);
    let (label, sequence): (&str, aqo_core::JoinSequence) = match method {
        "dp" => {
            let o = dp::optimize::<BigRational>(&inst, allow_cartesian)
                .ok_or("no cartesian-free sequence exists")?;
            ("exact (subset DP)", o.sequence)
        }
        "bnb" => {
            let o = branch_bound::optimize::<BigRational>(&inst, allow_cartesian)
                .ok_or("no cartesian-free sequence exists")?;
            ("exact (branch & bound)", o.sequence)
        }
        "exhaustive" => ("exact (exhaustive)", exhaustive::optimize::<BigRational>(&inst).sequence),
        "greedy" => (
            "greedy min-intermediate",
            greedy::min_intermediate(&inst, allow_cartesian).ok_or("greedy got stuck")?,
        ),
        "ikkbz" => ("IKKBZ (trees)", ikkbz::optimize(&inst).sequence),
        "sa" => (
            "simulated annealing",
            local_search::simulated_annealing(&inst, &local_search::SaParams::default(), &mut rng),
        ),
        "ga" => (
            "genetic",
            genetic::optimize(&inst, &genetic::GaParams::default(), &mut rng),
        ),
        other => return Err(format!("optimize: unknown method {other}")),
    };
    let cost: BigRational = inst.total_cost(&sequence);
    println!("method : {label}");
    println!("order  : {:?}", sequence.order());
    println!("cost   : {cost}");
    println!("log2   : {:.3}", CostScalar::log2(&cost));
    if args.iter().any(|a| a == "--explain") {
        println!();
        print!("{}", textio_explain_qon(&inst, &sequence));
    }
    Ok(())
}

fn textio_explain_qon(
    inst: &aqo_core::qon::QoNInstance,
    z: &aqo_core::JoinSequence,
) -> String {
    aqo_core::explain::explain_qon(inst, z)
}

fn cmd_optimize_qoh(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("optimize-qoh: missing file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let inst = textio::qoh_from_text(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let method = flag_value(args, "--method").unwrap_or("greedy");
    let plan = match method {
        "exhaustive" => pipeline::optimize_exhaustive(&inst),
        "greedy" => pipeline::optimize_greedy(&inst),
        other => return Err(format!("optimize-qoh: unknown method {other}")),
    }
    .ok_or("no feasible plan under the memory budget")?;
    println!("method        : {method}");
    println!("order         : {:?}", plan.sequence.order());
    println!("decomposition : {:?}", plan.decomposition.fragments());
    println!("cost          : {}", plan.cost);
    println!("log2          : {:.3}", plan.cost.log2());
    if args.iter().any(|a| a == "--explain") {
        if let Some(text) =
            aqo_core::explain::explain_qoh(&inst, &plan.sequence, &plan.decomposition)
        {
            println!();
            print!("{text}");
        }
    }
    Ok(())
}

fn cmd_reduce_3sat(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("reduce-3sat: missing file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let f = aqo_sat::dimacs::from_dimacs(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    if !f.is_3cnf() {
        return Err("formula is not 3CNF".into());
    }
    let a: u64 = flag_value(args, "--a").map_or(Ok(4), str::parse).map_err(|_| "bad --a")?;
    let red_g = aqo_reductions::clique_reduction::sat_to_clique(&f);
    eprintln!(
        "Lemma 3: {} vars, {} clauses -> graph with {} vertices ({} when satisfiable)",
        f.num_vars(),
        f.num_clauses(),
        red_g.graph.n(),
        red_g.satisfiable_omega
    );
    let e: u64 = flag_value(args, "--e")
        .map_or(Ok(red_g.satisfiable_omega as u64 - 2), str::parse)
        .map_err(|_| "bad --e")?;
    let red = aqo_reductions::fn_reduction::reduce(&red_g.graph, &BigUint::from(a), e);
    eprintln!(
        "f_N: a = {a}, e = {e}; K(a,e) has {} bits",
        aqo_reductions::fn_reduction::k_bound(&BigUint::from(a), e).bits()
    );
    print!("{}", textio::qon_to_text(&red.instance));
    Ok(())
}

fn cmd_clique(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("clique: missing file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let g = aqo_graph::io::from_dimacs(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let upper = aqo_graph::coloring::clique_upper_bound(&g);
    let c = aqo_graph::clique::max_clique(&g);
    println!("n      : {}", g.n());
    println!("m      : {}", g.m());
    println!("omega  : {}", c.len());
    println!("bound  : {upper} (colouring/degeneracy upper bound)");
    println!("clique : {c:?}");
    Ok(())
}
