//! Minimal result-table rendering (plain text and Markdown).

use std::fmt::Display;

/// A result table: title, column headers, string rows, free-form notes.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows (each the same length as `columns`).
    pub rows: Vec<Vec<String>>,
    /// Notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row of displayable cells.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Plain-text rendering with aligned columns.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// GitHub-flavoured Markdown rendering.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("#### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        for note in &self.notes {
            out.push_str(&format!("*{note}*\n\n"));
        }
        out
    }
}

/// Formats any `Display` into a cell.
pub fn cell(v: impl Display) -> String {
    v.to_string()
}

/// Formats a base-2 logarithm as `2^x`.
pub fn log2_cell(bits: f64) -> String {
    format!("2^{bits:.1}")
}

/// Formats a boolean verdict.
pub fn verdict(ok: bool) -> String {
    if ok { "holds".into() } else { "VIOLATED".into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_formats() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec![cell(1), cell("xyz")]);
        t.note("a note");
        let text = t.render_text();
        assert!(text.contains("demo") && text.contains("xyz") && text.contains("a note"));
        let md = t.render_markdown();
        assert!(md.contains("| a | bb |") && md.contains("| 1 | xyz |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("t", &["a"]).row(vec![cell(1), cell(2)]);
    }

    #[test]
    fn helper_cells() {
        assert_eq!(log2_cell(12.34), "2^12.3");
        assert_eq!(verdict(true), "holds");
        assert_eq!(verdict(false), "VIOLATED");
    }
}
