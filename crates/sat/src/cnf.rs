//! CNF formula representation.

use std::fmt;

/// A literal: a variable index (0-based) with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// Variable index.
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of variable `var`.
    pub fn pos(var: usize) -> Lit {
        Lit { var, positive: true }
    }

    /// Negative literal of variable `var`.
    pub fn neg(var: usize) -> Lit {
        Lit { var, positive: false }
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit { var: self.var, positive: !self.positive }
    }

    /// Whether this literal is satisfied under `assignment`.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula over variables `0..num_vars`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl CnfFormula {
    /// A formula with `num_vars` variables and no clauses.
    pub fn new(num_vars: usize) -> Self {
        CnfFormula { num_vars, clauses: Vec::new() }
    }

    /// Builds from clause data, validating variable indices.
    pub fn from_clauses(num_vars: usize, clauses: Vec<Clause>) -> Self {
        for c in &clauses {
            for l in c {
                assert!(l.var < num_vars, "literal variable {} out of range", l.var);
            }
        }
        CnfFormula { num_vars, clauses }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Appends a clause. Panics on out-of-range variables or empty clauses.
    pub fn add_clause(&mut self, clause: Clause) {
        assert!(!clause.is_empty(), "empty clause");
        for l in &clause {
            assert!(l.var < self.num_vars, "literal variable {} out of range", l.var);
        }
        self.clauses.push(clause);
    }

    /// Allocates a fresh variable and returns its index.
    pub fn fresh_var(&mut self) -> usize {
        self.num_vars += 1;
        self.num_vars - 1
    }

    /// Number of clauses satisfied by `assignment`.
    pub fn count_satisfied(&self, assignment: &[bool]) -> usize {
        assert_eq!(assignment.len(), self.num_vars, "assignment length mismatch");
        self.clauses.iter().filter(|c| c.iter().any(|l| l.eval(assignment))).count()
    }

    /// Whether `assignment` satisfies every clause.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        self.count_satisfied(assignment) == self.num_clauses()
    }

    /// Whether every clause has at most 3 literals.
    pub fn is_3cnf(&self) -> bool {
        self.clauses.iter().all(|c| c.len() <= 3)
    }

    /// Whether every clause has *exactly* 3 literals over distinct variables.
    pub fn is_exact_3cnf(&self) -> bool {
        self.clauses.iter().all(|c| {
            c.len() == 3 && c[0].var != c[1].var && c[0].var != c[2].var && c[1].var != c[2].var
        })
    }

    /// Number of clauses each variable occurs in (counting one occurrence per
    /// clause even if both polarities appear).
    pub fn occurrence_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_vars];
        for c in &self.clauses {
            let mut vars: Vec<usize> = c.iter().map(|l| l.var).collect();
            vars.sort_unstable();
            vars.dedup();
            for v in vars {
                counts[v] += 1;
            }
        }
        counts
    }

    /// The maximum number of clauses any variable occurs in.
    pub fn max_occurrences(&self) -> usize {
        self.occurrence_counts().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CnfFormula {
        // (x0 ∨ ¬x1) ∧ (x1 ∨ x2) ∧ (¬x0 ∨ ¬x2)
        CnfFormula::from_clauses(
            3,
            vec![
                vec![Lit::pos(0), Lit::neg(1)],
                vec![Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::neg(2)],
            ],
        )
    }

    #[test]
    fn eval_counts() {
        let f = tiny();
        assert_eq!(f.count_satisfied(&[true, true, false]), 3);
        assert!(f.is_satisfied_by(&[true, true, false]));
        assert_eq!(f.count_satisfied(&[false, true, true]), 2);
        assert!(!f.is_satisfied_by(&[false, true, true]));
    }

    #[test]
    fn lit_negation() {
        let l = Lit::pos(4);
        assert_eq!(l.negated(), Lit::neg(4));
        assert_eq!(l.negated().negated(), l);
        assert!(l.eval(&[false, false, false, false, true]));
        assert!(!l.negated().eval(&[false, false, false, false, true]));
    }

    #[test]
    fn occurrence_counting_dedups_within_clause() {
        let mut f = CnfFormula::new(2);
        f.add_clause(vec![Lit::pos(0), Lit::neg(0), Lit::pos(1)]);
        f.add_clause(vec![Lit::pos(1)]);
        assert_eq!(f.occurrence_counts(), vec![1, 2]);
        assert_eq!(f.max_occurrences(), 2);
    }

    #[test]
    fn shape_predicates() {
        let f = tiny();
        assert!(f.is_3cnf());
        assert!(!f.is_exact_3cnf());
        let g = CnfFormula::from_clauses(3, vec![vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]]);
        assert!(g.is_exact_3cnf());
    }

    #[test]
    fn fresh_var_extends() {
        let mut f = tiny();
        let v = f.fresh_var();
        assert_eq!(v, 3);
        assert_eq!(f.num_vars(), 4);
        f.add_clause(vec![Lit::pos(v)]);
        assert_eq!(f.num_clauses(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        CnfFormula::new(1).add_clause(vec![Lit::pos(1)]);
    }
}
