//! Formula preprocessing: unit propagation, pure-literal elimination,
//! tautology and duplicate removal — the standard simplifications applied
//! before handing a formula to a solver or a reduction.

use crate::{CnfFormula, Lit};
use std::collections::BTreeSet;

/// Result of [`simplify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Simplified {
    /// The formula was decided outright during preprocessing.
    Decided(bool),
    /// A smaller equisatisfiable formula over the *same* variable space,
    /// plus the partial assignment forced by propagation (entries are
    /// `Some(value)` for fixed variables).
    Reduced {
        /// The simplified formula.
        formula: CnfFormula,
        /// Values forced by unit propagation / pure literals.
        forced: Vec<Option<bool>>,
    },
}

/// Simplifies `f`:
///
/// 1. drop tautological clauses (`x ∨ ¬x ∨ …`) and duplicate literals;
/// 2. propagate unit clauses to a fixed point (conflict ⟹ `Decided(false)`);
/// 3. fix pure literals;
/// 4. drop satisfied clauses and falsified literals.
///
/// All steps preserve satisfiability; `forced` extends to a model of `f`
/// whenever the reduced formula is satisfiable.
pub fn simplify(f: &CnfFormula) -> Simplified {
    let n = f.num_vars();
    let mut forced: Vec<Option<bool>> = vec![None; n];
    // Working clause set, deduplicated literals, tautologies dropped.
    let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(f.num_clauses());
    'clause: for c in f.clauses() {
        let set: BTreeSet<Lit> = c.iter().copied().collect();
        for l in &set {
            if set.contains(&l.negated()) {
                continue 'clause; // tautology
            }
        }
        clauses.push(set.into_iter().collect());
    }
    loop {
        let mut changed = false;
        // Unit propagation.
        let mut i = 0;
        while i < clauses.len() {
            let live: Vec<Lit> = clauses[i]
                .iter()
                .copied()
                .filter(|l| forced[l.var].is_none())
                .collect();
            let satisfied = clauses[i].iter().any(|l| forced[l.var] == Some(l.positive));
            if satisfied {
                clauses.swap_remove(i);
                changed = true;
                continue;
            }
            match live.len() {
                0 => return Simplified::Decided(false), // conflict
                1 => {
                    forced[live[0].var] = Some(live[0].positive);
                    clauses.swap_remove(i);
                    changed = true;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
        // Pure literals among live occurrences.
        let mut pos = vec![false; n];
        let mut neg = vec![false; n];
        for c in &clauses {
            for l in c {
                if forced[l.var].is_none() {
                    if l.positive {
                        pos[l.var] = true;
                    } else {
                        neg[l.var] = true;
                    }
                }
            }
        }
        for v in 0..n {
            if forced[v].is_none() && (pos[v] ^ neg[v]) {
                forced[v] = Some(pos[v]);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if clauses.is_empty() {
        return Simplified::Decided(true);
    }
    // Strip falsified literals from the survivors.
    let reduced: Vec<Vec<Lit>> = clauses
        .into_iter()
        .map(|c| c.into_iter().filter(|l| forced[l.var].is_none()).collect())
        .collect();
    Simplified::Reduced { formula: CnfFormula::from_clauses(n, reduced), forced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dpll, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tautologies_dropped() {
        let f = CnfFormula::from_clauses(
            2,
            vec![vec![Lit::pos(0), Lit::neg(0)], vec![Lit::pos(1), Lit::neg(1), Lit::pos(0)]],
        );
        assert_eq!(simplify(&f), Simplified::Decided(true));
    }

    #[test]
    fn unit_chain_propagates_to_decision() {
        // x0; ¬x0 ∨ x1; ¬x1 ∨ x2 — all forced true; satisfiable.
        let f = CnfFormula::from_clauses(
            3,
            vec![
                vec![Lit::pos(0)],
                vec![Lit::neg(0), Lit::pos(1)],
                vec![Lit::neg(1), Lit::pos(2)],
            ],
        );
        assert_eq!(simplify(&f), Simplified::Decided(true));
    }

    #[test]
    fn conflict_detected() {
        let f = CnfFormula::from_clauses(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert_eq!(simplify(&f), Simplified::Decided(false));
    }

    #[test]
    fn equisatisfiable_on_random_formulas() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let f = generators::random_3sat(7, 18, &mut rng);
            let expected = dpll::is_satisfiable(&f);
            match simplify(&f) {
                Simplified::Decided(ans) => assert_eq!(ans, expected),
                Simplified::Reduced { formula, forced } => {
                    assert_eq!(dpll::is_satisfiable(&formula), expected);
                    // Forced values are consistent with some model when SAT.
                    if let dpll::SatResult::Sat(w) = dpll::solve(&formula) {
                        let mut full = w;
                        for (v, fv) in forced.iter().enumerate() {
                            if let Some(val) = fv {
                                full[v] = *val;
                            }
                        }
                        assert!(f.is_satisfied_by(&full), "forced + model must satisfy f");
                    }
                }
            }
        }
    }

    #[test]
    fn reduced_formula_never_mentions_forced_vars() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let f = generators::random_3sat(6, 12, &mut rng);
            if let Simplified::Reduced { formula, forced } = simplify(&f) {
                for c in formula.clauses() {
                    for l in c {
                        assert!(forced[l.var].is_none());
                    }
                }
            }
        }
    }
}
