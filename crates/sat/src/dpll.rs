//! A complete DPLL SAT solver.
//!
//! Classic recursive DPLL with unit propagation, pure-literal elimination
//! and a most-occurrences branching heuristic — entirely adequate for the
//! formula sizes the experiments classify (tens of variables), and simple
//! enough to trust as a ground-truth oracle.

use crate::{CnfFormula, Lit};

/// Result of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness assignment (length `num_vars`).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the formula was satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Value {
    Unassigned,
    True,
    False,
}

/// Decides satisfiability of `f`, returning a witness when satisfiable.
pub fn solve(f: &CnfFormula) -> SatResult {
    let mut assign = vec![Value::Unassigned; f.num_vars()];
    if dpll(f, &mut assign) {
        // Unconstrained leftovers default to false.
        let witness: Vec<bool> = assign.iter().map(|v| matches!(v, Value::True)).collect();
        debug_assert!(f.is_satisfied_by(&witness));
        SatResult::Sat(witness)
    } else {
        SatResult::Unsat
    }
}

/// Whether `f` is satisfiable.
pub fn is_satisfiable(f: &CnfFormula) -> bool {
    solve(f).is_sat()
}

fn lit_value(l: Lit, assign: &[Value]) -> Value {
    match (assign[l.var], l.positive) {
        (Value::Unassigned, _) => Value::Unassigned,
        (Value::True, true) | (Value::False, false) => Value::True,
        _ => Value::False,
    }
}

/// Returns `false` on conflict; otherwise extends `assign` with all forced
/// units and pure literals, recording trail entries in `trail`.
fn propagate(f: &CnfFormula, assign: &mut [Value], trail: &mut Vec<usize>) -> bool {
    loop {
        let mut changed = false;
        // Unit propagation.
        for clause in f.clauses() {
            let mut unassigned: Option<Lit> = None;
            let mut n_unassigned = 0;
            let mut satisfied = false;
            for &l in clause {
                match lit_value(l, assign) {
                    Value::True => {
                        satisfied = true;
                        break;
                    }
                    Value::Unassigned => {
                        n_unassigned += 1;
                        unassigned = Some(l);
                    }
                    Value::False => {}
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => return false, // conflict
                1 => {
                    let l = unassigned.unwrap();
                    assign[l.var] = if l.positive { Value::True } else { Value::False };
                    trail.push(l.var);
                    changed = true;
                }
                _ => {}
            }
        }
        if changed {
            continue;
        }
        // Pure-literal elimination over clauses not yet satisfied.
        let mut seen_pos = vec![false; f.num_vars()];
        let mut seen_neg = vec![false; f.num_vars()];
        for clause in f.clauses() {
            if clause.iter().any(|&l| lit_value(l, assign) == Value::True) {
                continue;
            }
            for &l in clause {
                if assign[l.var] == Value::Unassigned {
                    if l.positive {
                        seen_pos[l.var] = true;
                    } else {
                        seen_neg[l.var] = true;
                    }
                }
            }
        }
        for v in 0..f.num_vars() {
            if assign[v] == Value::Unassigned && (seen_pos[v] ^ seen_neg[v]) {
                assign[v] = if seen_pos[v] { Value::True } else { Value::False };
                trail.push(v);
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
}

fn dpll(f: &CnfFormula, assign: &mut Vec<Value>) -> bool {
    let mut trail = Vec::new();
    if !propagate(f, assign, &mut trail) {
        for v in trail {
            assign[v] = Value::Unassigned;
        }
        return false;
    }
    // All clauses satisfied?
    let undecided = f
        .clauses()
        .iter()
        .any(|c| !c.iter().any(|&l| lit_value(l, assign) == Value::True));
    if !undecided {
        return true;
    }
    // Branch on the unassigned variable occurring in the most unsatisfied clauses.
    let mut counts = vec![0usize; f.num_vars()];
    for clause in f.clauses() {
        if clause.iter().any(|&l| lit_value(l, assign) == Value::True) {
            continue;
        }
        for &l in clause {
            if assign[l.var] == Value::Unassigned {
                counts[l.var] += 1;
            }
        }
    }
    let var = (0..f.num_vars())
        .filter(|&v| assign[v] == Value::Unassigned && counts[v] > 0)
        .max_by_key(|&v| counts[v]);
    let Some(var) = var else {
        // No unassigned variable occurs in an unsatisfied clause, yet some
        // clause is undecided — impossible, since an undecided clause has an
        // unassigned literal.
        unreachable!("undecided clause without unassigned literal");
    };
    for &value in &[Value::True, Value::False] {
        assign[var] = value;
        if dpll(f, assign) {
            return true;
        }
        assign[var] = Value::Unassigned;
    }
    for v in trail {
        assign[v] = Value::Unassigned;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lit;

    fn brute_sat(f: &CnfFormula) -> bool {
        let n = f.num_vars();
        (0u32..1 << n).any(|mask| {
            let a: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            f.is_satisfied_by(&a)
        })
    }

    #[test]
    fn trivial_cases() {
        assert!(is_satisfiable(&CnfFormula::new(0)));
        let mut f = CnfFormula::new(1);
        f.add_clause(vec![Lit::pos(0)]);
        assert!(is_satisfiable(&f));
        f.add_clause(vec![Lit::neg(0)]);
        assert!(!is_satisfiable(&f));
    }

    #[test]
    fn witness_is_verified() {
        let f = CnfFormula::from_clauses(
            4,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::pos(2)],
                vec![Lit::neg(1), Lit::neg(2), Lit::pos(3)],
                vec![Lit::neg(3), Lit::neg(0)],
            ],
        );
        match solve(&f) {
            SatResult::Sat(w) => assert!(f.is_satisfied_by(&w)),
            SatResult::Unsat => panic!("formula is satisfiable"),
        }
    }

    #[test]
    fn all_sign_patterns_unsat() {
        // All 8 sign patterns over 3 variables: classically unsatisfiable.
        let mut f = CnfFormula::new(3);
        for mask in 0..8u32 {
            f.add_clause(
                (0..3)
                    .map(|i| if mask >> i & 1 == 1 { Lit::pos(i) } else { Lit::neg(i) })
                    .collect(),
            );
        }
        assert!(!is_satisfiable(&f));
    }

    #[test]
    fn agrees_with_brute_force_random() {
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..40 {
            let n = 3 + (next() % 8) as usize;
            let m = 2 + (next() % 20) as usize;
            let mut f = CnfFormula::new(n);
            for _ in 0..m {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let var = (next() % n as u64) as usize;
                    let positive = next() % 2 == 0;
                    clause.push(Lit { var, positive });
                }
                f.add_clause(clause);
            }
            assert_eq!(is_satisfiable(&f), brute_sat(&f), "formula {f:?}");
        }
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: x_i = pigeon i in the hole.
        // Each pigeon somewhere: (x0), (x1); no collision: (¬x0 ∨ ¬x1).
        let f = CnfFormula::from_clauses(
            2,
            vec![vec![Lit::pos(0)], vec![Lit::pos(1)], vec![Lit::neg(0), Lit::neg(1)]],
        );
        assert!(!is_satisfiable(&f));
    }
}
