//! Exact MaxSAT by branch-and-bound.
//!
//! The gap versions of 3SAT in the paper's Theorem 1 distinguish "all clauses
//! satisfiable" from "at most a (1−θ) fraction satisfiable". This module is
//! the exact oracle for the latter quantity on experiment-sized formulas.

use crate::CnfFormula;

/// Result of an exact MaxSAT computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaxSatResult {
    /// The maximum number of simultaneously satisfiable clauses.
    pub max_satisfied: usize,
    /// An assignment achieving it.
    pub assignment: Vec<bool>,
}

impl MaxSatResult {
    /// The achieved fraction of satisfied clauses (`1.0` for an empty
    /// formula).
    pub fn fraction(&self, f: &CnfFormula) -> f64 {
        if f.num_clauses() == 0 {
            1.0
        } else {
            self.max_satisfied as f64 / f.num_clauses() as f64
        }
    }
}

/// Computes the exact MaxSAT optimum of `f` by branch-and-bound over
/// variables `0..n`, pruning when even satisfying every undecided clause
/// cannot beat the incumbent.
pub fn max_sat(f: &CnfFormula) -> MaxSatResult {
    let n = f.num_vars();
    let mut assign = vec![false; n];
    let mut best_assign = vec![false; n];
    // Evaluate the all-false assignment as the incumbent.
    let mut best = f.count_satisfied(&best_assign);
    branch(f, 0, &mut assign, &mut best, &mut best_assign);
    MaxSatResult { max_satisfied: best, assignment: best_assign }
}

fn branch(
    f: &CnfFormula,
    depth: usize,
    assign: &mut Vec<bool>,
    best: &mut usize,
    best_assign: &mut Vec<bool>,
) {
    // Count clauses already satisfied / already falsified by the prefix
    // assignment assign[0..depth].
    let mut satisfied = 0usize;
    let mut falsified = 0usize;
    for clause in f.clauses() {
        let mut sat = false;
        let mut open = false;
        for &l in clause {
            if l.var < depth {
                if l.eval(assign) {
                    sat = true;
                    break;
                }
            } else {
                open = true;
            }
        }
        if sat {
            satisfied += 1;
        } else if !open {
            falsified += 1;
        }
    }
    let upper = f.num_clauses() - falsified;
    if upper <= *best {
        return; // cannot improve
    }
    if depth == f.num_vars() {
        if satisfied > *best {
            *best = satisfied;
            best_assign.clone_from(assign);
        }
        return;
    }
    for value in [true, false] {
        assign[depth] = value;
        branch(f, depth + 1, assign, best, best_assign);
    }
}

/// Exact MaxSAT fraction: `max_satisfied / num_clauses`.
pub fn max_sat_fraction(f: &CnfFormula) -> f64 {
    max_sat(f).fraction(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lit;

    fn brute_max(f: &CnfFormula) -> usize {
        let n = f.num_vars();
        (0u32..1 << n)
            .map(|mask| {
                let a: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
                f.count_satisfied(&a)
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn satisfiable_formula_reaches_all() {
        let f = CnfFormula::from_clauses(
            3,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::pos(2)],
                vec![Lit::neg(2), Lit::neg(1), Lit::pos(0)],
            ],
        );
        let r = max_sat(&f);
        assert_eq!(r.max_satisfied, 3);
        assert_eq!(f.count_satisfied(&r.assignment), 3);
    }

    #[test]
    fn contradiction_block_is_seven_eighths() {
        let mut f = CnfFormula::new(3);
        for mask in 0..8u32 {
            f.add_clause(
                (0..3)
                    .map(|i| if mask >> i & 1 == 1 { Lit::pos(i) } else { Lit::neg(i) })
                    .collect(),
            );
        }
        let r = max_sat(&f);
        assert_eq!(r.max_satisfied, 7);
        assert!((r.fraction(&f) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_brute_force() {
        let mut state = 2024u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..25 {
            let n = 3 + (next() % 7) as usize;
            let m = 3 + (next() % 15) as usize;
            let mut f = CnfFormula::new(n);
            for _ in 0..m {
                let clause: Vec<Lit> = (0..3)
                    .map(|_| Lit { var: (next() % n as u64) as usize, positive: next() % 2 == 0 })
                    .collect();
                f.add_clause(clause);
            }
            let r = max_sat(&f);
            assert_eq!(r.max_satisfied, brute_max(&f));
            assert_eq!(f.count_satisfied(&r.assignment), r.max_satisfied);
        }
    }

    #[test]
    fn empty_formula() {
        let f = CnfFormula::new(2);
        let r = max_sat(&f);
        assert_eq!(r.max_satisfied, 0);
        assert_eq!(r.fraction(&f), 1.0);
    }
}
