//! CNF formulas, exact SAT/MaxSAT solving and the bounded-occurrence
//! transform.
//!
//! The hardness chain of the paper starts from 3SAT(13): 3CNF formulas where
//! every variable occurs in at most 13 clauses, under the PCP-powered promise
//! "satisfiable vs at most a (1−θ) fraction satisfiable" (Theorem 1, quoted
//! from Arora). We do not re-prove the PCP theorem (see DESIGN.md); instead
//! this crate supplies everything needed to *instantiate and verify* the
//! chain:
//!
//! * [`CnfFormula`] / [`Lit`] / [`Clause`] — formula representation;
//! * [`dpll`] — a complete DPLL solver (unit propagation, pure literals);
//! * [`maxsat`] — exact MaxSAT by branch-and-bound, the ground-truth oracle
//!   for "what fraction of clauses is satisfiable";
//! * [`transform`] — the 3SAT → 3SAT(13) occurrence-bounding rewrite;
//! * [`generators`] — formula families with *known* MaxSAT values, including
//!   the all-sign-patterns contradiction blocks whose optimum is exactly 7/8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;

pub mod dimacs;
pub mod dpll;
pub mod generators;
pub mod maxsat;
pub mod simplify;
pub mod transform;
pub mod walksat;

pub use cnf::{Clause, CnfFormula, Lit};
