//! Formula families with known satisfiability status or known MaxSAT value.
//!
//! The experiments instantiate the paper's "satisfiable vs at most (1−θ)
//! satisfiable" promise with these families (see DESIGN.md's substitution
//! table): the promise is *generated*, not derived from a PCP, and every
//! claimed MaxSAT value is verified by the exact solver in tests.

use crate::{CnfFormula, Lit};
use rand::seq::SliceRandom;
use rand::Rng;

/// Uniform random exact-3CNF: `m` clauses over `n ≥ 3` variables, each on 3
/// distinct variables with random polarities.
pub fn random_3sat(n: usize, m: usize, rng: &mut impl Rng) -> CnfFormula {
    assert!(n >= 3);
    let mut f = CnfFormula::new(n);
    let mut vars: Vec<usize> = (0..n).collect();
    for _ in 0..m {
        vars.shuffle(rng);
        let clause: Vec<Lit> =
            vars[..3].iter().map(|&v| Lit { var: v, positive: rng.gen_bool(0.5) }).collect();
        f.add_clause(clause);
    }
    f
}

/// Planted-satisfiable 3CNF: a hidden assignment is drawn and every clause is
/// guaranteed to contain at least one literal it satisfies. Returns the
/// formula and the planted witness.
pub fn planted_3sat(n: usize, m: usize, rng: &mut impl Rng) -> (CnfFormula, Vec<bool>) {
    assert!(n >= 3);
    let witness: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let mut f = CnfFormula::new(n);
    let mut vars: Vec<usize> = (0..n).collect();
    for _ in 0..m {
        vars.shuffle(rng);
        let chosen = &vars[..3];
        loop {
            let clause: Vec<Lit> =
                chosen.iter().map(|&v| Lit { var: v, positive: rng.gen_bool(0.5) }).collect();
            if clause.iter().any(|l| l.eval(&witness)) {
                f.add_clause(clause);
                break;
            }
        }
    }
    (f, witness)
}

/// `blocks` independent *contradiction blocks*: block `i` contributes all 8
/// sign patterns over its private variable triple `{3i, 3i+1, 3i+2}`.
///
/// Every assignment falsifies exactly one clause per block, so the exact
/// MaxSAT optimum is `7·blocks` out of `8·blocks` clauses — a deterministic
/// family achieving the gap fraction 7/8 with certainty. Each variable
/// occurs in 8 clauses ≤ 13, so the family already lies inside 3SAT(13).
pub fn contradiction_blocks(blocks: usize) -> CnfFormula {
    let mut f = CnfFormula::new(3 * blocks);
    for b in 0..blocks {
        for mask in 0..8u32 {
            f.add_clause(
                (0..3)
                    .map(|i| {
                        let var = 3 * b + i;
                        if mask >> i & 1 == 1 {
                            Lit::pos(var)
                        } else {
                            Lit::neg(var)
                        }
                    })
                    .collect(),
            );
        }
    }
    f
}

/// The exact MaxSAT optimum of [`contradiction_blocks`]`(blocks)`.
pub fn contradiction_blocks_optimum(blocks: usize) -> usize {
    7 * blocks
}

/// The pigeonhole principle PHP(p, p−1) — `p` pigeons into `p−1` holes —
/// converted to 3CNF by splitting long clauses with chain variables.
/// Unsatisfiable for every `p ≥ 2`; famously hard for resolution, which
/// makes it a good stress test for the DPLL oracle.
pub fn pigeonhole_3cnf(p: usize) -> CnfFormula {
    assert!(p >= 2);
    let holes = p - 1;
    // x[i][j] = pigeon i sits in hole j.
    let var = |i: usize, j: usize| i * holes + j;
    let mut f = CnfFormula::new(p * holes);

    // Each pigeon sits somewhere: clause of length `holes`, split to 3CNF.
    for i in 0..p {
        let long: Vec<Lit> = (0..holes).map(|j| Lit::pos(var(i, j))).collect();
        add_clause_3cnf(&mut f, long);
    }
    // No two pigeons share a hole.
    for j in 0..holes {
        for i1 in 0..p {
            for i2 in i1 + 1..p {
                f.add_clause(vec![Lit::neg(var(i1, j)), Lit::neg(var(i2, j))]);
            }
        }
    }
    f
}

/// Adds a clause of arbitrary length in 3CNF form by chaining fresh
/// variables: `(l₁ ∨ l₂ ∨ y₁) ∧ (¬y₁ ∨ l₃ ∨ y₂) ∧ … ∧ (¬y_k ∨ l_{r−1} ∨ l_r)`.
pub fn add_clause_3cnf(f: &mut CnfFormula, clause: Vec<Lit>) {
    let r = clause.len();
    if r <= 3 {
        f.add_clause(clause);
        return;
    }
    let k = r - 3; // chain variables y₁ … y_k
    let ys: Vec<usize> = (0..k).map(|_| f.fresh_var()).collect();
    f.add_clause(vec![clause[0], clause[1], Lit::pos(ys[0])]);
    for i in 0..k - 1 {
        f.add_clause(vec![Lit::neg(ys[i]), clause[i + 2], Lit::pos(ys[i + 1])]);
    }
    f.add_clause(vec![Lit::neg(ys[k - 1]), clause[r - 2], clause[r - 1]]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dpll, maxsat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_3sat_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = random_3sat(10, 30, &mut rng);
        assert_eq!(f.num_clauses(), 30);
        assert!(f.is_exact_3cnf());
    }

    #[test]
    fn planted_is_satisfiable() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let (f, w) = planted_3sat(12, 60, &mut rng);
            assert!(f.is_satisfied_by(&w));
            assert!(dpll::is_satisfiable(&f));
        }
    }

    #[test]
    fn contradiction_blocks_exact_optimum() {
        for blocks in 1..=3 {
            let f = contradiction_blocks(blocks);
            assert_eq!(f.num_clauses(), 8 * blocks);
            assert!(f.is_exact_3cnf());
            assert!(f.max_occurrences() <= 13);
            let r = maxsat::max_sat(&f);
            assert_eq!(r.max_satisfied, contradiction_blocks_optimum(blocks));
            assert!(!dpll::is_satisfiable(&f));
        }
    }

    #[test]
    fn pigeonhole_unsat_and_3cnf() {
        for p in 2..=4 {
            let f = pigeonhole_3cnf(p);
            assert!(f.is_3cnf(), "p={p}");
            assert!(!dpll::is_satisfiable(&f), "PHP({p}) must be unsat");
        }
    }

    #[test]
    fn clause_splitting_equisatisfiable() {
        // A long clause is satisfiable iff some literal is true; check both
        // directions through the chain encoding.
        let mut f = CnfFormula::new(6);
        add_clause_3cnf(&mut f, (0..6).map(Lit::pos).collect());
        assert!(f.is_3cnf());
        assert!(dpll::is_satisfiable(&f));
        // Forcing all original literals false must make it unsat.
        for v in 0..6 {
            f.add_clause(vec![Lit::neg(v)]);
        }
        assert!(!dpll::is_satisfiable(&f));
    }

    #[test]
    fn clause_splitting_short_passthrough() {
        let mut f = CnfFormula::new(3);
        add_clause_3cnf(&mut f, vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]);
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.num_vars(), 3);
    }
}
