//! The 3SAT → 3SAT(13) occurrence-bounding transform.
//!
//! Section 3 of the paper works with 3SAT(13): 3CNF where every variable
//! occurs in at most 13 clauses. The classical rewrite replaces a variable
//! `x` occurring in `k > B` clauses by `k` fresh copies `x₁ … x_k`, one per
//! occurrence, chained by the implication cycle
//! `(x₁→x₂) ∧ (x₂→x₃) ∧ … ∧ (x_k→x₁)` (each implication a 2-clause). The
//! cycle forces all copies equal, so the transform preserves satisfiability
//! exactly; each copy occurs in 1 original + 2 cycle clauses = 3 ≤ 13.
//!
//! (The *gap-preserving* version of bounded-occurrence 3SAT is the
//! expander-based PCP machinery the paper imports from Arora; see DESIGN.md
//! for why we instantiate the gap at the formula level instead.)

use crate::{CnfFormula, Lit};

/// Maximum occurrences per variable demanded by the paper's 3SAT(13).
pub const OCCURRENCE_BOUND: usize = 13;

/// Rewrites `f` so that every variable occurs in at most `bound` clauses
/// (default interest: [`OCCURRENCE_BOUND`]). Preserves satisfiability and
/// 3CNF shape. Returns the transformed formula together with a map
/// `copy_of[v] = original variable of v` for interpreting witnesses.
pub fn bound_occurrences(f: &CnfFormula, bound: usize) -> (CnfFormula, Vec<usize>) {
    assert!(bound >= 3, "bound must be at least 3 for the cycle construction");
    let counts = f.occurrence_counts();
    let mut out = CnfFormula::new(f.num_vars());
    let mut copy_of: Vec<usize> = (0..f.num_vars()).collect();

    // For each over-occurring variable, allocate one fresh copy per clause it
    // appears in; `next_copy[v]` walks through them.
    let mut copies: Vec<Vec<usize>> = vec![Vec::new(); f.num_vars()];
    for v in 0..f.num_vars() {
        if counts[v] > bound {
            for _ in 0..counts[v] {
                let c = out.fresh_var();
                copy_of.push(v);
                copies[v].push(c);
            }
        }
    }

    let mut next_copy = vec![0usize; f.num_vars()];
    for clause in f.clauses() {
        // Which variables of this clause are split? Use one copy per clause
        // (a clause mentioning x in both polarities consumes a single copy,
        // mirroring occurrence counting).
        let mut clause_copy: Vec<Option<usize>> = vec![None; f.num_vars()];
        let mut new_clause = Vec::with_capacity(clause.len());
        for &l in clause {
            let var = if copies[l.var].is_empty() {
                l.var
            } else {
                if clause_copy[l.var].is_none() {
                    clause_copy[l.var] = Some(copies[l.var][next_copy[l.var]]);
                    next_copy[l.var] += 1;
                }
                clause_copy[l.var].unwrap()
            };
            new_clause.push(Lit { var, positive: l.positive });
        }
        out.add_clause(new_clause);
    }

    // Implication cycles forcing all copies of each variable equal.
    for cps in copies.iter() {
        let k = cps.len();
        for i in 0..k {
            let a = cps[i];
            let b = cps[(i + 1) % k];
            // a → b  ≡  (¬a ∨ b)
            out.add_clause(vec![Lit::neg(a), Lit::pos(b)]);
        }
    }
    (out, copy_of)
}

/// [`bound_occurrences`] at the paper's bound of 13.
pub fn to_3sat13(f: &CnfFormula) -> (CnfFormula, Vec<usize>) {
    bound_occurrences(f, OCCURRENCE_BOUND)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll;

    /// A formula where variable 0 occurs in many clauses.
    fn heavy(k: usize, satisfiable: bool) -> CnfFormula {
        let mut f = CnfFormula::new(k + 1);
        for i in 0..k {
            f.add_clause(vec![Lit::pos(0), Lit::pos(i + 1)]);
        }
        if !satisfiable {
            // Pin x0 = false and all others false, contradicting above only
            // if we also force the x_i to false.
            f.add_clause(vec![Lit::neg(0)]);
            for i in 0..k {
                f.add_clause(vec![Lit::neg(i + 1)]);
            }
        }
        f
    }

    #[test]
    fn bound_is_respected() {
        let f = heavy(40, true);
        assert!(f.max_occurrences() > OCCURRENCE_BOUND);
        let (g, _) = to_3sat13(&f);
        assert!(g.max_occurrences() <= OCCURRENCE_BOUND);
        assert!(g.is_3cnf());
    }

    #[test]
    fn satisfiability_preserved_sat() {
        let f = heavy(20, true);
        let (g, _) = to_3sat13(&f);
        assert!(dpll::is_satisfiable(&f));
        assert!(dpll::is_satisfiable(&g));
    }

    #[test]
    fn satisfiability_preserved_unsat() {
        let f = heavy(20, false);
        let (g, _) = to_3sat13(&f);
        assert!(!dpll::is_satisfiable(&f));
        assert!(!dpll::is_satisfiable(&g));
    }

    #[test]
    fn copies_forced_equal() {
        let f = heavy(20, true);
        let (g, copy_of) = to_3sat13(&f);
        if let dpll::SatResult::Sat(w) = dpll::solve(&g) {
            // All copies of variable 0 must agree.
            let vals: Vec<bool> = (0..g.num_vars()).filter(|&v| copy_of[v] == 0 && v >= f.num_vars()).map(|v| w[v]).collect();
            assert!(vals.windows(2).all(|p| p[0] == p[1]), "cycle must force equality");
        } else {
            panic!("transformed formula must be satisfiable");
        }
    }

    #[test]
    fn small_formula_untouched() {
        let f = heavy(3, true);
        assert!(f.max_occurrences() <= OCCURRENCE_BOUND);
        let (g, copy_of) = to_3sat13(&f);
        assert_eq!(g, f);
        assert_eq!(copy_of.len(), f.num_vars());
    }

    #[test]
    fn random_formulas_equisatisfiable() {
        let mut state = 77u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..15 {
            let n = 4;
            let m = 25 + (next() % 10) as usize; // heavy occurrence pressure
            let mut f = CnfFormula::new(n);
            for _ in 0..m {
                let clause: Vec<Lit> = (0..3)
                    .map(|_| Lit { var: (next() % n as u64) as usize, positive: next() % 2 == 0 })
                    .collect();
                f.add_clause(clause);
            }
            let (g, _) = bound_occurrences(&f, 5);
            assert!(g.max_occurrences() <= 5);
            assert_eq!(dpll::is_satisfiable(&f), dpll::is_satisfiable(&g));
        }
    }
}
