//! WalkSAT — stochastic local search for (Max)SAT.
//!
//! The exact branch-and-bound of [`crate::maxsat`] is the ground truth at
//! experiment scale; WalkSAT is the *scalable* side: it finds satisfying
//! assignments of large planted formulas quickly and gives strong MaxSAT
//! lower bounds (always a valid assignment, never an overclaim).

use crate::CnfFormula;
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters for [`walksat`].
#[derive(Clone, Debug)]
pub struct WalkSatParams {
    /// Maximum variable flips per restart.
    pub max_flips: usize,
    /// Number of random restarts.
    pub restarts: usize,
    /// Noise probability: with probability `noise` flip a random variable
    /// of the chosen unsatisfied clause instead of the greedily best one.
    pub noise: f64,
}

impl Default for WalkSatParams {
    fn default() -> Self {
        WalkSatParams { max_flips: 10_000, restarts: 5, noise: 0.5 }
    }
}

/// Result of a WalkSAT run.
#[derive(Clone, Debug)]
pub struct WalkSatResult {
    /// Best assignment found.
    pub assignment: Vec<bool>,
    /// Number of clauses it satisfies.
    pub satisfied: usize,
}

/// Runs WalkSAT, returning the best assignment seen across restarts.
pub fn walksat(f: &CnfFormula, params: &WalkSatParams, rng: &mut impl Rng) -> WalkSatResult {
    let n = f.num_vars();
    let m = f.num_clauses();
    let mut best = WalkSatResult { assignment: vec![false; n], satisfied: f.count_satisfied(&vec![false; n]) };
    if m == 0 || n == 0 {
        return best;
    }
    // Occurrence lists for fast break-count evaluation.
    let mut occurs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, clause) in f.clauses().iter().enumerate() {
        for l in clause {
            if !occurs[l.var].contains(&ci) {
                occurs[l.var].push(ci);
            }
        }
    }
    for _ in 0..params.restarts.max(1) {
        let mut assign: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        // true-literal counts per clause.
        let mut true_count: Vec<usize> = f
            .clauses()
            .iter()
            .map(|c| c.iter().filter(|l| l.eval(&assign)).count())
            .collect();
        let mut unsat: Vec<usize> =
            (0..m).filter(|&ci| true_count[ci] == 0).collect();
        for _ in 0..params.max_flips {
            if unsat.is_empty() {
                break;
            }
            let &ci = unsat.choose(rng).expect("nonempty");
            let clause = &f.clauses()[ci];
            let var = if rng.gen_bool(params.noise) {
                clause.choose(rng).expect("nonempty clause").var
            } else {
                // Greedy: flip the variable minimizing the break count.
                let mut best_var = clause[0].var;
                let mut best_break = usize::MAX;
                for l in clause {
                    let breaks = occurs[l.var]
                        .iter()
                        .filter(|&&cj| {
                            true_count[cj] == 1
                                && f.clauses()[cj]
                                    .iter()
                                    .any(|x| x.var == l.var && x.eval(&assign))
                        })
                        .count();
                    if breaks < best_break {
                        best_break = breaks;
                        best_var = l.var;
                    }
                }
                best_var
            };
            // Flip and update counts.
            assign[var] = !assign[var];
            for &cj in &occurs[var] {
                true_count[cj] =
                    f.clauses()[cj].iter().filter(|l| l.eval(&assign)).count();
            }
            unsat = (0..m).filter(|&cj| true_count[cj] == 0).collect();
        }
        let satisfied = m - unsat.len();
        if satisfied > best.satisfied {
            best = WalkSatResult { assignment: assign, satisfied };
            if best.satisfied == m {
                return best;
            }
        }
    }
    best
}

/// Convenience: try to find a satisfying assignment; `None` if WalkSAT
/// fails within its budget (which proves nothing — use
/// [`crate::dpll::solve`] for a definitive answer).
pub fn find_model(f: &CnfFormula, params: &WalkSatParams, rng: &mut impl Rng) -> Option<Vec<bool>> {
    let r = walksat(f, params, rng);
    (r.satisfied == f.num_clauses()).then_some(r.assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, maxsat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solves_planted_formulas() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let (f, _) = generators::planted_3sat(20, 60, &mut rng);
            let model = find_model(&f, &WalkSatParams::default(), &mut rng)
                .expect("planted formula should fall to WalkSAT");
            assert!(f.is_satisfied_by(&model));
        }
    }

    #[test]
    fn never_overclaims_maxsat() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let f = generators::random_3sat(6, 20, &mut rng);
            let heur = walksat(&f, &WalkSatParams::default(), &mut rng);
            let exact = maxsat::max_sat(&f);
            assert!(heur.satisfied <= exact.max_satisfied);
            assert_eq!(f.count_satisfied(&heur.assignment), heur.satisfied);
        }
    }

    #[test]
    fn reaches_the_seven_eighths_optimum() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = generators::contradiction_blocks(4);
        let heur = walksat(&f, &WalkSatParams::default(), &mut rng);
        assert_eq!(heur.satisfied, generators::contradiction_blocks_optimum(4));
    }

    #[test]
    fn empty_formula_handled() {
        let f = crate::CnfFormula::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        let r = walksat(&f, &WalkSatParams::default(), &mut rng);
        assert_eq!(r.satisfied, 0);
    }

    #[test]
    fn larger_scale_than_exact() {
        // 60 vars / 200 clauses: far beyond the exact solver's comfort, easy
        // for WalkSAT on a planted instance.
        let mut rng = StdRng::seed_from_u64(5);
        let (f, _) = generators::planted_3sat(60, 200, &mut rng);
        let model = find_model(&f, &WalkSatParams::default(), &mut rng);
        assert!(model.is_some());
    }
}
