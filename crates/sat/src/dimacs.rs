//! DIMACS CNF serialization — the lingua franca of SAT tooling, so the
//! formulas this crate generates can be checked against external solvers
//! (and external benchmarks can be pulled into the hardness chain).

use crate::{Clause, CnfFormula, Lit};
use std::fmt::Write as _;

/// Serializes a formula in DIMACS CNF format (1-based signed literals).
pub fn to_dimacs(f: &CnfFormula) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", f.num_vars(), f.num_clauses());
    for clause in f.clauses() {
        for l in clause {
            let v = (l.var + 1) as i64;
            let _ = write!(out, "{} ", if l.positive { v } else { -v });
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Error from [`from_dimacs`] — the definition shared with
/// `aqo_graph::io` (this parser uses the header/literal/clause variants).
pub use aqo_dimacs::DimacsError;

/// Parses DIMACS CNF. Comment lines (`c …`) and `%`-terminated footers are
/// tolerated; the clause count must match the header.
pub fn from_dimacs(input: &str) -> Result<CnfFormula, DimacsError> {
    let mut header: Option<(usize, usize)> = None;
    let mut clauses: Vec<Clause> = Vec::new();
    let mut current: Clause = Vec::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('%') {
            break;
        }
        if line.starts_with('p') {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(DimacsError::BadHeader(line.to_string()));
            }
            let nv = parts[2].parse().map_err(|_| DimacsError::BadHeader(line.to_string()))?;
            let nc = parts[3].parse().map_err(|_| DimacsError::BadHeader(line.to_string()))?;
            header = Some((nv, nc));
            continue;
        }
        let (num_vars, _) = header.ok_or(DimacsError::MissingHeader)?;
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| DimacsError::BadLiteral(tok.to_string()))?;
            if v == 0 {
                if !current.is_empty() {
                    clauses.push(std::mem::take(&mut current));
                }
                continue;
            }
            let var = v.unsigned_abs() as usize - 1;
            if var >= num_vars {
                return Err(DimacsError::VariableOutOfRange(v));
            }
            current.push(Lit { var, positive: v > 0 });
        }
    }
    let (num_vars, num_clauses) = header.ok_or(DimacsError::MissingHeader)?;
    if !current.is_empty() {
        clauses.push(current);
    }
    if clauses.len() != num_clauses {
        return Err(DimacsError::ClauseCountMismatch { declared: num_clauses, found: clauses.len() });
    }
    Ok(CnfFormula::from_clauses(num_vars, clauses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_random_formulas() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let f = generators::random_3sat(8, 20, &mut rng);
            let text = to_dimacs(&f);
            let g = from_dimacs(&text).unwrap();
            assert_eq!(f, g);
        }
    }

    #[test]
    fn parses_comments_and_multiline_clauses() {
        let text = "c a comment\np cnf 3 2\n1 -2\n3 0\n-1 2 -3 0\n";
        let f = from_dimacs(text).unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0], vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]);
    }

    #[test]
    fn error_cases() {
        assert_eq!(from_dimacs("1 2 0\n"), Err(DimacsError::MissingHeader));
        assert!(matches!(from_dimacs("p cnf x 2\n"), Err(DimacsError::BadHeader(_))));
        assert_eq!(from_dimacs("p cnf 1 1\n2 0\n"), Err(DimacsError::VariableOutOfRange(2)));
        assert!(matches!(
            from_dimacs("p cnf 2 2\n1 0\n"),
            Err(DimacsError::ClauseCountMismatch { declared: 2, found: 1 })
        ));
        assert!(matches!(from_dimacs("p cnf 1 1\n1 a 0\n"), Err(DimacsError::BadLiteral(_))));
    }

    #[test]
    fn header_written_correctly() {
        let f = generators::contradiction_blocks(1);
        let text = to_dimacs(&f);
        assert!(text.starts_with("p cnf 3 8\n"));
        assert_eq!(text.lines().count(), 9);
    }
}
