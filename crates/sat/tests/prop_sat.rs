//! Property tests: solver agreement with brute force, transform
//! equisatisfiability, and generator contracts.

use aqo_sat::{dpll, generators, maxsat, transform, CnfFormula, Lit};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn formula(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = CnfFormula> {
    (2..=max_vars, 1..=max_clauses).prop_flat_map(|(n, m)| {
        prop::collection::vec(
            prop::collection::vec((0..n, any::<bool>()), 1..=3),
            m..=m,
        )
        .prop_map(move |clauses| {
            let clauses = clauses
                .into_iter()
                .map(|c| c.into_iter().map(|(var, positive)| Lit { var, positive }).collect())
                .collect();
            CnfFormula::from_clauses(n, clauses)
        })
    })
}

fn brute_max(f: &CnfFormula) -> usize {
    let n = f.num_vars();
    (0u64..1 << n)
        .map(|mask| {
            let a: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            f.count_satisfied(&a)
        })
        .max()
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dpll_matches_brute_force(f in formula(8, 16)) {
        let brute_sat = brute_max(&f) == f.num_clauses();
        match dpll::solve(&f) {
            dpll::SatResult::Sat(w) => {
                prop_assert!(f.is_satisfied_by(&w));
                prop_assert!(brute_sat);
            }
            dpll::SatResult::Unsat => prop_assert!(!brute_sat),
        }
    }

    #[test]
    fn maxsat_matches_brute_force(f in formula(7, 14)) {
        let r = maxsat::max_sat(&f);
        prop_assert_eq!(r.max_satisfied, brute_max(&f));
        prop_assert_eq!(f.count_satisfied(&r.assignment), r.max_satisfied);
    }

    #[test]
    fn transform_preserves_satisfiability(f in formula(5, 20)) {
        let (g, copy_of) = transform::bound_occurrences(&f, 4);
        prop_assert!(g.max_occurrences() <= 4);
        prop_assert_eq!(dpll::is_satisfiable(&f), dpll::is_satisfiable(&g));
        // Witness translation: a witness of g restricted through copy_of
        // satisfies f.
        if let dpll::SatResult::Sat(w) = dpll::solve(&g) {
            let mut orig = vec![false; f.num_vars()];
            // Original slots first, overridden by any copy (all copies agree).
            for v in 0..g.num_vars() {
                orig[copy_of[v]] = w[v];
            }
            // Variables with copies never appear directly in g, so copies win.
            prop_assert!(f.is_satisfied_by(&orig));
        }
    }

    #[test]
    fn planted_generator_always_sat(seed in any::<u64>(), n in 3usize..10, m in 1usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (f, w) = generators::planted_3sat(n, m, &mut rng);
        prop_assert!(f.is_satisfied_by(&w));
    }

    #[test]
    fn contradiction_blocks_never_better_than_7_8(blocks in 1usize..3) {
        let f = generators::contradiction_blocks(blocks);
        prop_assert_eq!(brute_max(&f), 7 * blocks);
    }

    #[test]
    fn dimacs_parser_never_panics(garbage in "[-a-z0-9 pcnf\n%]{0,200}") {
        let _ = aqo_sat::dimacs::from_dimacs(&garbage);
    }

    #[test]
    fn dimacs_roundtrip(f in formula(8, 16)) {
        let text = aqo_sat::dimacs::to_dimacs(&f);
        prop_assert_eq!(aqo_sat::dimacs::from_dimacs(&text).unwrap(), f);
    }

    #[test]
    fn clause_split_equisatisfiable(lits in prop::collection::vec((0usize..6, any::<bool>()), 4..9)) {
        let n = 6;
        let clause: Vec<Lit> = lits.into_iter().map(|(var, positive)| Lit { var, positive }).collect();
        let mut long = CnfFormula::new(n);
        generators::add_clause_3cnf(&mut long, clause.clone());
        prop_assert!(long.is_3cnf());
        // Single clause alone: always satisfiable.
        prop_assert!(dpll::is_satisfiable(&long));
        // Forcing every original literal false makes the split version unsat.
        let mut forced = long.clone();
        for l in &clause {
            forced.add_clause(vec![l.negated()]);
        }
        prop_assert!(!dpll::is_satisfiable(&forced));
    }
}
