//! A hand-rolled, loom-style exhaustive interleaving explorer for small
//! concurrency models.
//!
//! Real schedulers sample a handful of interleavings per test run; subtle
//! ordering bugs (lost updates, publish-before-lock races) can hide for
//! thousands of runs. This module takes the opposite trade: model the
//! algorithm as a handful of *atomic steps* per thread over a cloneable
//! shared state, then enumerate **every** interleaving of those steps by
//! depth-first search. For the 2-thread, ≤6-step models we care about
//! (the [`crate::parallel::SharedBound`] fetch-min protocol, the trace
//! journal's seq/buffer-order invariant) that is a few hundred to a few
//! thousand schedules — milliseconds, and *exhaustive*.
//!
//! This is a model checker, not an instrumentation layer: it verifies the
//! *protocol* (the sequence of atomic operations), not the compiled code.
//! The CI Miri/ThreadSanitizer jobs cover the latter; together they split
//! the soundness argument into "the protocol is right" (here, exhaustive)
//! and "the code implements the protocol without UB" (sanitizers,
//! sampled). See `docs/ANALYSIS.md`.
//!
//! # Model shape
//!
//! A model is a state type `S: Clone` plus one step closure per thread.
//! Per-thread program counters (and any thread-local registers) must live
//! *inside* `S`, so that cloning the state forks the whole execution. A
//! step performs one atomic action and reports:
//!
//! * [`StepOutcome::Ran`] — advanced; schedule me again later.
//! * [`StepOutcome::Blocked`] — could not act (e.g. a modeled mutex is
//!   held). The state must be unchanged; the explorer prunes the branch
//!   and re-schedules the thread only after someone else runs.
//! * [`StepOutcome::Done`] — advanced and finished; never re-scheduled.
//!
//! The invariant closure is called after *every* step with `done = false`
//! and once per completed schedule with `done = true`, so models can
//! express both always-invariants ("buffer order agrees with seq order")
//! and postconditions ("the published bound is the minimum").

use std::fmt;

/// What a single modeled step did. See the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The thread advanced by one atomic action and has more to do.
    Ran,
    /// The thread could not act; the state is unchanged.
    Blocked,
    /// The thread advanced and has finished its program.
    Done,
}

/// A counterexample: the exact schedule (thread index per step) that drove
/// the model into a state violating the invariant, plus the message the
/// invariant produced. Deadlocks and livelocks are reported the same way.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Thread index executed at each step, in order.
    pub schedule: Vec<usize>,
    /// Why the schedule is bad.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule {:?}: {}", self.schedule, self.message)
    }
}

/// A step function: one atomic action against the shared state.
pub type StepFn<'a, S> = &'a dyn Fn(&mut S) -> StepOutcome;

/// An invariant: called after every step (`done = false`) and at the end
/// of every complete schedule (`done = true`).
pub type InvariantFn<'a, S> = &'a dyn Fn(&S, bool) -> Result<(), String>;

/// Exhaustively explores every interleaving of `threads` starting from
/// `init`. Returns the number of complete schedules explored, or the
/// first [`Violation`] found.
///
/// `max_depth` bounds the length of any single schedule; exceeding it is
/// reported as a violation ("possible livelock"), which also catches
/// modeled CAS loops that never converge. If at some point every
/// unfinished thread is [`StepOutcome::Blocked`], that schedule is a
/// deadlock and is reported as a violation.
pub fn explore<S: Clone>(
    init: &S,
    threads: &[StepFn<'_, S>],
    invariant: InvariantFn<'_, S>,
    max_depth: usize,
) -> Result<u64, Violation> {
    let mut finished = vec![false; threads.len()];
    let mut schedule = Vec::new();
    let mut count = 0u64;
    dfs(init, threads, invariant, max_depth, &mut finished, &mut schedule, &mut count)?;
    Ok(count)
}

fn dfs<S: Clone>(
    state: &S,
    threads: &[StepFn<'_, S>],
    invariant: InvariantFn<'_, S>,
    max_depth: usize,
    finished: &mut [bool],
    schedule: &mut Vec<usize>,
    count: &mut u64,
) -> Result<(), Violation> {
    if finished.iter().all(|&f| f) {
        invariant(state, true)
            .map_err(|m| Violation { schedule: schedule.clone(), message: m })?;
        *count += 1;
        return Ok(());
    }
    if schedule.len() >= max_depth {
        return Err(Violation {
            schedule: schedule.clone(),
            message: format!("schedule exceeded {max_depth} steps (possible livelock)"),
        });
    }
    let mut runnable = 0usize;
    let mut blocked = 0usize;
    for tid in 0..threads.len() {
        if finished[tid] {
            continue;
        }
        runnable += 1;
        let mut next = state.clone();
        let outcome = threads[tid](&mut next);
        if outcome == StepOutcome::Blocked {
            blocked += 1;
            continue;
        }
        schedule.push(tid);
        invariant(&next, false)
            .map_err(|m| Violation { schedule: schedule.clone(), message: m })?;
        if outcome == StepOutcome::Done {
            finished[tid] = true;
        }
        let r = dfs(&next, threads, invariant, max_depth, finished, schedule, count);
        finished[tid] = false;
        schedule.pop();
        r?;
    }
    if runnable > 0 && blocked == runnable {
        return Err(Violation {
            schedule: schedule.clone(),
            message: format!("deadlock: all {blocked} unfinished threads blocked"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared counter bumped via a *non-atomic* read-modify-write split
    /// into two steps. The classic lost update: exhaustive exploration
    /// must find a schedule where the final count is 1, not 2.
    #[derive(Clone, Default)]
    struct Rmw {
        counter: u32,
        pc: [u8; 2],
        reg: [u32; 2],
    }

    fn rmw_step(s: &mut Rmw, tid: usize) -> StepOutcome {
        match s.pc[tid] {
            0 => {
                s.reg[tid] = s.counter;
                s.pc[tid] = 1;
                StepOutcome::Ran
            }
            _ => {
                s.counter = s.reg[tid] + 1;
                StepOutcome::Done
            }
        }
    }

    #[test]
    fn split_rmw_loses_an_update() {
        let t0 = |s: &mut Rmw| rmw_step(s, 0);
        let t1 = |s: &mut Rmw| rmw_step(s, 1);
        let inv = |s: &Rmw, done: bool| {
            if done && s.counter != 2 {
                return Err(format!("lost update: counter = {}", s.counter));
            }
            Ok(())
        };
        let err = explore(&Rmw::default(), &[&t0, &t1], &inv, 16).unwrap_err();
        assert!(err.message.contains("lost update"), "{err}");
        // The canonical bad schedule reads both before either writes.
        assert!(err.schedule.len() >= 3, "{err}");
    }

    #[test]
    fn atomic_rmw_never_loses_an_update() {
        // Same counter, but the whole RMW is one atomic step.
        #[derive(Clone, Default)]
        struct At {
            counter: u32,
        }
        let t0 = |s: &mut At| {
            s.counter += 1;
            StepOutcome::Done
        };
        let t1 = |s: &mut At| {
            s.counter += 1;
            StepOutcome::Done
        };
        let inv = |s: &At, done: bool| {
            if done && s.counter != 2 {
                return Err(format!("lost update: counter = {}", s.counter));
            }
            Ok(())
        };
        let n = explore(&At::default(), &[&t0, &t1], &inv, 8).unwrap();
        assert_eq!(n, 2); // two single-step threads: 2 interleavings
    }

    #[test]
    fn schedule_counts_are_binomial() {
        // Two threads of 3 inert steps each: C(6, 3) = 20 interleavings.
        #[derive(Clone, Default)]
        struct Inert {
            pc: [u8; 2],
        }
        fn step(s: &mut Inert, tid: usize) -> StepOutcome {
            s.pc[tid] += 1;
            if s.pc[tid] == 3 { StepOutcome::Done } else { StepOutcome::Ran }
        }
        let t0 = |s: &mut Inert| step(s, 0);
        let t1 = |s: &mut Inert| step(s, 1);
        let n = explore(&Inert::default(), &[&t0, &t1], &|_, _| Ok(()), 16).unwrap();
        assert_eq!(n, 20);
    }

    #[test]
    fn opposite_lock_order_deadlocks() {
        // Two modeled mutexes acquired in opposite orders: the explorer
        // must find the schedule where each thread holds one lock.
        #[derive(Clone, Default)]
        struct Locks {
            held: [Option<usize>; 2],
            pc: [u8; 2],
        }
        fn acquire(s: &mut Locks, tid: usize, lock: usize) -> StepOutcome {
            if s.held[lock].is_some() {
                return StepOutcome::Blocked;
            }
            s.held[lock] = Some(tid);
            s.pc[tid] += 1;
            if s.pc[tid] == 2 { StepOutcome::Done } else { StepOutcome::Ran }
        }
        let t0 = |s: &mut Locks| {
            let lock = s.pc[0] as usize; // 0 then 1
            acquire(s, 0, lock)
        };
        let t1 = |s: &mut Locks| {
            let lock = 1 - s.pc[1] as usize; // 1 then 0
            acquire(s, 1, lock)
        };
        let err = explore(&Locks::default(), &[&t0, &t1], &|_, _| Ok(()), 16).unwrap_err();
        assert!(err.message.contains("deadlock"), "{err}");
        assert_eq!(err.schedule.len(), 2, "{err}");
    }

    #[test]
    fn livelock_is_reported_via_depth_cap() {
        // A thread that spins forever without finishing.
        #[derive(Clone, Default)]
        struct Spin;
        let t0 = |_: &mut Spin| StepOutcome::Ran;
        let err = explore(&Spin, &[&t0], &|_, _| Ok(()), 32).unwrap_err();
        assert!(err.message.contains("livelock"), "{err}");
    }
}
