//! **QO_H** — query optimization under pipelined hash joins (paper §2.2).
//!
//! An instance is `(n, Q, S, T, M)`: as in QO_N but with a memory budget `M`
//! in place of the access-cost matrix. A plan is a join sequence `Z`, a
//! *pipeline decomposition* of its `n−1` join operations into contiguous
//! fragments, and a *memory-allocation vector* per fragment.
//!
//! ## Concrete instantiation of the paper's abstract cost shape
//!
//! The paper abstracts the I/O cost of one hash join as
//! `h(m, b_R, b_S) = (b_R + b_S)·Θ(g(m, b_S)) + b_S` for `m ≥ hjmin(b_S)`,
//! with `g` linear decreasing in `m`, `g(b_S) = 0`, `g(hjmin(b_S)) = Θ(1)`,
//! and `hjmin(b_S) = Θ(b_S^η)` for some `0 < η < 1`. We instantiate every
//! Θ-constant to 1:
//!
//! * `hjmin(b) = ⌈b^η⌉` with `η = num/den` (default `1/2`);
//! * `g(m, b) = (b − m)/(b − hjmin(b))` clamped to `[0, 1]` (and `0` when
//!   `b ≤ hjmin(b)`);
//! * `h(m, b_R, b_S) = (b_R + b_S)·g(m, b_S) + b_S`.
//!
//! All constraints of §2.2.2 hold verbatim, so the paper's lemmas apply to
//! this instantiation unchanged (DESIGN.md, substitution table).
//!
//! The cost of executing a fragment `P(Z, i, k)` under allocation `m_i…m_k`
//! is `N_{i−1}(Z) + Σ_j h(m_j, N_{j−1}(Z), t_inner(j)) + N_k(Z)` — read the
//! materialized input, run the pipelined joins, write the output.

use crate::{CostScalar, JoinSequence};
use aqo_bignum::{BigRational, BigUint};
use aqo_graph::{BitSet, Graph};

/// An instance of the QO_H problem.
#[derive(Clone, Debug)]
pub struct QoHInstance {
    graph: Graph,
    sizes: Vec<BigUint>,
    selectivity: crate::SelectivityMatrix,
    memory: BigUint,
    /// `hjmin(b) = ⌈b^{eta.0/eta.1}⌉`; the paper requires `0 < η < 1`.
    eta: (u32, u32),
}

/// A pipeline decomposition: the join operations `J_1 … J_{n−1}` (1-based,
/// as in the paper) partitioned into contiguous fragments `P(Z, i, k)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineDecomposition {
    fragments: Vec<(usize, usize)>,
}

impl PipelineDecomposition {
    /// Validates that `fragments` are 1-based, contiguous, and exactly cover
    /// `J_1 … J_{n−1}` for an `n`-relation sequence.
    pub fn new(n: usize, fragments: Vec<(usize, usize)>) -> Self {
        assert!(n >= 2, "need at least one join");
        assert!(!fragments.is_empty(), "empty decomposition");
        let mut expect = 1usize;
        for &(i, k) in &fragments {
            assert_eq!(i, expect, "fragment start {i} != expected {expect}");
            assert!(k >= i, "fragment ({i},{k}) reversed");
            expect = k + 1;
        }
        assert_eq!(expect, n, "fragments must cover J_1..J_{}", n - 1);
        PipelineDecomposition { fragments }
    }

    /// One fragment per join: maximal materialization.
    pub fn singletons(n: usize) -> Self {
        PipelineDecomposition::new(n, (1..n).map(|i| (i, i)).collect())
    }

    /// A single fragment containing every join: maximal pipelining.
    pub fn single_pipeline(n: usize) -> Self {
        PipelineDecomposition::new(n, vec![(1, n - 1)])
    }

    /// The fragments `(i, k)` (1-based inclusive join indices).
    pub fn fragments(&self) -> &[(usize, usize)] {
        &self.fragments
    }
}

impl QoHInstance {
    /// Builds and validates an instance (see [`crate::qon::QoNInstance::new`]
    /// for the shared selectivity checks; QO_H has no access-cost matrix).
    pub fn new(
        graph: Graph,
        sizes: Vec<BigUint>,
        selectivity: crate::SelectivityMatrix,
        memory: BigUint,
    ) -> Self {
        Self::with_eta(graph, sizes, selectivity, memory, (1, 2))
    }

    /// As [`QoHInstance::new`] with an explicit `η = eta.0/eta.1 ∈ (0, 1)`.
    pub fn with_eta(
        graph: Graph,
        sizes: Vec<BigUint>,
        selectivity: crate::SelectivityMatrix,
        memory: BigUint,
        eta: (u32, u32),
    ) -> Self {
        let n = graph.n();
        assert_eq!(sizes.len(), n, "sizes length must equal vertex count");
        for (i, t) in sizes.iter().enumerate() {
            assert!(!t.is_zero(), "relation {i} has zero cardinality");
        }
        assert!(eta.0 > 0 && eta.0 < eta.1, "η must be in (0, 1)");
        for (u, v) in graph.edges() {
            assert!(selectivity.has_entry(u, v), "edge ({u},{v}) lacks a selectivity entry");
        }
        assert!(!memory.is_zero(), "zero memory");
        QoHInstance { graph, sizes, selectivity, memory, eta }
    }

    /// Number of relations.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The query graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Relation cardinalities.
    pub fn sizes(&self) -> &[BigUint] {
        &self.sizes
    }

    /// The selectivity matrix.
    pub fn selectivity(&self) -> &crate::SelectivityMatrix {
        &self.selectivity
    }

    /// Total memory `M` available to each pipeline.
    pub fn memory(&self) -> &BigUint {
        &self.memory
    }

    /// The hash-join exponent `η` as a `(numerator, denominator)` pair.
    pub fn eta(&self) -> (u32, u32) {
        self.eta
    }

    /// `hjmin(b) = ⌈b^η⌉`.
    pub fn hjmin(&self, b: &BigUint) -> BigUint {
        b.root_pow_ceil(self.eta.0, self.eta.1)
    }

    /// `g(m, b)`: the paper's linear spill fraction, or `None` when
    /// `m < hjmin(b)` (the join is infeasible with that little memory).
    pub fn g(&self, m: &BigRational, b: &BigUint) -> Option<BigRational> {
        let hj = self.hjmin(b);
        let hj_rat = BigRational::from(hj.clone());
        if *m < hj_rat {
            return None;
        }
        let b_rat = BigRational::from(b.clone());
        if *m >= b_rat || hj >= *b {
            return Some(BigRational::zero());
        }
        Some((&b_rat - m) / (&b_rat - &hj_rat))
    }

    /// `h(m, b_R, b_S)` over scalar backend `S` (`b_R` is an intermediate
    /// size and may be huge); `None` when infeasible.
    pub fn h<S: CostScalar>(&self, m: &BigRational, b_r: &S, b_s: &BigUint) -> Option<S> {
        let g = self.g(m, b_s)?;
        let bs = S::from_count(b_s);
        Some(b_r.add(&bs).mul(&S::from_ratio(&g)).add(&bs))
    }

    /// Intermediate sizes `N_0 … N_{n−1}` of `z` (same product estimate as
    /// QO_N; `intermediates[i]` is the paper's `N_i`).
    pub fn intermediates<S: CostScalar>(&self, z: &JoinSequence) -> Vec<S> {
        let n = self.n();
        assert_eq!(z.len(), n);
        let mut prefix = BitSet::new(n);
        prefix.insert(z.at(0));
        let mut nx = S::from_count(&self.sizes[z.at(0)]);
        let mut out = Vec::with_capacity(n);
        out.push(nx.clone());
        for i in 1..n {
            let j = z.at(i);
            nx = nx.mul(&S::from_count(&self.sizes[j]));
            for k in self.graph.neighbors(j).iter() {
                if prefix.contains(k) {
                    nx = nx.mul(&S::from_ratio(&self.selectivity.get(j, k)));
                }
            }
            out.push(nx.clone());
            prefix.insert(j);
        }
        out
    }

    /// Inner-relation size of join `J_j` (1-based): the base relation at
    /// sequence position `j+1`, i.e. `t_{z_{j+1}}`.
    pub fn inner_size(&self, z: &JoinSequence, j: usize) -> &BigUint {
        &self.sizes[z.at(j)]
    }

    /// Whether a fragment `(i, k)` admits *any* feasible allocation:
    /// `Σ_j hjmin(inner_j) ≤ M`.
    pub fn fragment_feasible(&self, z: &JoinSequence, frag: (usize, usize)) -> bool {
        let mut need = BigUint::zero();
        for j in frag.0..=frag.1 {
            need = need + self.hjmin(self.inner_size(z, j));
        }
        need <= self.memory
    }

    /// Whether the sequence is feasible at all (every join can be run in
    /// some fragment — singletons suffice as witnesses).
    pub fn sequence_feasible(&self, z: &JoinSequence) -> bool {
        (1..z.len()).all(|j| self.hjmin(self.inner_size(z, j)) <= self.memory)
    }

    /// Cost of fragment `(i, k)` under allocation `alloc` (one entry per
    /// join, `alloc[0]` for `J_i`). `None` if the allocation is infeasible
    /// (under a join's `hjmin`, or exceeding `M` in total).
    pub fn fragment_cost<S: CostScalar>(
        &self,
        z: &JoinSequence,
        frag: (usize, usize),
        alloc: &[BigRational],
        intermediates: &[S],
    ) -> Option<S> {
        let (i, k) = frag;
        assert_eq!(alloc.len(), k - i + 1, "allocation length mismatch");
        let mut used = BigRational::zero();
        for m in alloc {
            assert!(!m.is_negative(), "negative memory allocation");
            used = &used + m;
        }
        if used > BigRational::from(self.memory.clone()) {
            return None;
        }
        // Read materialized input + write output.
        let mut cost = intermediates[i - 1].add(&intermediates[k]);
        for j in i..=k {
            let h = self.h(&alloc[j - i], &intermediates[j - 1], self.inner_size(z, j))?;
            cost = cost.add(&h);
        }
        Some(cost)
    }

    /// The provably optimal memory allocation for a fragment under the
    /// linear cost model, or `None` if the fragment is infeasible.
    ///
    /// Each join's cost is linear decreasing in its memory on
    /// `[hjmin, b_S]` with constant marginal saving
    /// `(b_R + b_S)/(b_S − hjmin)` per page, and flat beyond `b_S`; the
    /// total is separable and convex, so a continuous greedy — mandatory
    /// `hjmin` first, then fill joins in order of steepest marginal saving
    /// up to `b_S` — is exact.
    pub fn optimal_allocation(
        &self,
        z: &JoinSequence,
        frag: (usize, usize),
        intermediates: &[BigRational],
    ) -> Option<Vec<BigRational>> {
        let (i, k) = frag;
        let joins = k - i + 1;
        let mut alloc: Vec<BigRational> = Vec::with_capacity(joins);
        let mut mandatory = BigRational::zero();
        // (slope, join offset, room to grow)
        let mut growth: Vec<(BigRational, usize, BigRational)> = Vec::new();
        for j in i..=k {
            let bs = self.inner_size(z, j);
            let hj = self.hjmin(bs);
            let hj_rat = BigRational::from(hj.clone());
            alloc.push(hj_rat.clone());
            mandatory = &mandatory + &hj_rat;
            let bs_rat = BigRational::from(bs.clone());
            if hj < *bs {
                let denom = &bs_rat - &hj_rat;
                let slope = (&intermediates[j - 1] + &bs_rat) / &denom;
                growth.push((slope, j - i, denom));
            }
        }
        let budget = BigRational::from(self.memory.clone());
        if mandatory > budget {
            return None;
        }
        let mut leftover = &budget - &mandatory;
        growth.sort_by(|a, b| b.0.cmp(&a.0));
        for (_, idx, room) in growth {
            if leftover.is_zero() {
                break;
            }
            let take = room.min(leftover.clone());
            alloc[idx] = &alloc[idx] + &take;
            leftover = &leftover - &take;
        }
        Some(alloc)
    }

    /// Cost of `z` under decomposition `decomp` with per-fragment *optimal*
    /// allocations; `None` if any fragment is infeasible.
    pub fn plan_cost_optimal_alloc(
        &self,
        z: &JoinSequence,
        decomp: &PipelineDecomposition,
    ) -> Option<BigRational> {
        let inter: Vec<BigRational> = self.intermediates(z);
        let mut total = BigRational::zero();
        for &frag in decomp.fragments() {
            let alloc = self.optimal_allocation(z, frag, &inter)?;
            let c = self.fragment_cost(z, frag, &alloc, &inter)?;
            total = &total + &c;
        }
        Some(total)
    }

    /// Cost of a fully explicit plan (sequence + decomposition + one
    /// allocation vector per fragment).
    pub fn plan_cost<S: CostScalar>(
        &self,
        z: &JoinSequence,
        decomp: &PipelineDecomposition,
        allocs: &[Vec<BigRational>],
    ) -> Option<S> {
        assert_eq!(allocs.len(), decomp.fragments().len(), "one allocation per fragment");
        let inter: Vec<S> = self.intermediates(z);
        let mut total = S::zero();
        for (frag, alloc) in decomp.fragments().iter().zip(allocs) {
            let c = self.fragment_cost(z, *frag, alloc, &inter)?;
            total = total.add(&c);
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SelectivityMatrix;
    use aqo_bignum::BigInt;

    /// Path query 0—1—2—3, t = (100, 100, 100, 100), s = 1/10 per edge,
    /// M = 250 pages, η = 1/2 so hjmin(100) = 10.
    fn path4() -> QoHInstance {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let sizes = vec![BigUint::from(100u64); 4];
        let mut s = SelectivityMatrix::new();
        let tenth = BigRational::new(BigInt::one(), BigUint::from(10u64));
        s.set(0, 1, tenth.clone());
        s.set(1, 2, tenth.clone());
        s.set(2, 3, tenth);
        QoHInstance::new(g, sizes, s, BigUint::from(250u64))
    }

    #[test]
    fn hjmin_is_ceil_root() {
        let inst = path4();
        assert_eq!(inst.hjmin(&BigUint::from(100u64)), BigUint::from(10u64));
        assert_eq!(inst.hjmin(&BigUint::from(101u64)), BigUint::from(11u64));
        assert_eq!(inst.hjmin(&BigUint::from(1u64)), BigUint::from(1u64));
    }

    #[test]
    fn g_shape() {
        let inst = path4();
        let b = BigUint::from(100u64);
        // Below hjmin: infeasible.
        assert!(inst.g(&BigRational::from(9u64), &b).is_none());
        // At hjmin: g = 1.
        assert_eq!(inst.g(&BigRational::from(10u64), &b).unwrap(), BigRational::one());
        // At b: g = 0; beyond: 0.
        assert_eq!(inst.g(&BigRational::from(100u64), &b).unwrap(), BigRational::zero());
        assert_eq!(inst.g(&BigRational::from(500u64), &b).unwrap(), BigRational::zero());
        // Midpoint m = 55: g = (100−55)/90 = 1/2.
        assert_eq!(
            inst.g(&BigRational::from(55u64), &b).unwrap(),
            BigRational::new(BigInt::one(), BigUint::from(2u64))
        );
    }

    #[test]
    fn h_full_memory_costs_only_build() {
        let inst = path4();
        let br = BigRational::from(1000u64);
        let b = BigUint::from(100u64);
        // m = b: h = (br + b)·0 + b = 100.
        let h = inst.h(&BigRational::from(100u64), &br, &b).unwrap();
        assert_eq!(h, BigRational::from(100u64));
        // m = hjmin: h = (1000+100)·1 + 100 = 1200.
        let h = inst.h(&BigRational::from(10u64), &br, &b).unwrap();
        assert_eq!(h, BigRational::from(1200u64));
    }

    #[test]
    fn intermediates_product_formula() {
        let inst = path4();
        let z = JoinSequence::new(vec![0, 1, 2, 3]);
        let inter: Vec<BigRational> = inst.intermediates(&z);
        // N_0 = 100; N_1 = 100·100/10 = 1000; N_2 = 1000·100/10 = 10_000;
        // N_3 = 10_000·100/10 = 100_000.
        assert_eq!(inter[0], BigRational::from(100u64));
        assert_eq!(inter[1], BigRational::from(1000u64));
        assert_eq!(inter[2], BigRational::from(10_000u64));
        assert_eq!(inter[3], BigRational::from(100_000u64));
    }

    #[test]
    fn single_pipeline_cost_full_memory() {
        let inst = path4();
        let z = JoinSequence::new(vec![0, 1, 2, 3]);
        let decomp = PipelineDecomposition::single_pipeline(4);
        // M = 250 ≥ 3·100: every join gets its full inner relation in
        // memory? No: greedy gives the two steepest-slope joins 100 each and
        // the third 50 (hjmin 10 + leftover 40 → 50 total).
        let cost = inst.plan_cost_optimal_alloc(&z, &decomp).unwrap();
        // Allocation: mandatory 10+10+10 = 30, leftover 220.
        // Slopes: join j has slope (N_{j−1}+100)/90 → J3 (N_2 = 10_000)
        // steepest, then J2 (N_1 = 1000), then J1 (N_0 = 100).
        // J3 → 100, J2 → 100, leftover 40 → J1 gets m = 50, g = 50/90 = 5/9.
        // Cost = N_0 + N_3 + h(50, N_0, 100) + h(100, N_1, 100) + h(100, N_2, 100)
        //      = 100 + 100000 + (200·5/9 + 100) + 100 + 100.
        let expected = BigRational::from(100u64)
            + BigRational::from(100_000u64)
            + (BigRational::new(BigInt::from(1000i64), BigUint::from(9u64))
                + BigRational::from(100u64))
            + BigRational::from(100u64)
            + BigRational::from(100u64);
        assert_eq!(cost, expected);
    }

    #[test]
    fn singleton_decomposition_rereads_intermediates() {
        let inst = path4();
        let z = JoinSequence::new(vec![0, 1, 2, 3]);
        let single = inst
            .plan_cost_optimal_alloc(&z, &PipelineDecomposition::single_pipeline(4))
            .unwrap();
        let singles = inst
            .plan_cost_optimal_alloc(&z, &PipelineDecomposition::singletons(4))
            .unwrap();
        // Materializing after each join pays each intermediate twice; with
        // ample memory the pipelined plan is strictly cheaper.
        assert!(single < singles);
    }

    #[test]
    fn infeasible_when_memory_too_small() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        let inst = QoHInstance::new(
            g,
            vec![BigUint::from(100u64), BigUint::from(10_000u64)],
            s,
            BigUint::from(50u64), // hjmin(10_000) = 100 > 50
        );
        let z = JoinSequence::new(vec![0, 1]);
        assert!(!inst.sequence_feasible(&z));
        let decomp = PipelineDecomposition::single_pipeline(2);
        assert!(inst.plan_cost_optimal_alloc(&z, &decomp).is_none());
        // The reverse order builds on the small relation and is feasible.
        let z2 = JoinSequence::new(vec![1, 0]);
        assert!(inst.sequence_feasible(&z2));
        assert!(inst.plan_cost_optimal_alloc(&z2, &decomp).is_some());
    }

    #[test]
    fn optimal_allocation_beats_uniform() {
        let inst = path4();
        let z = JoinSequence::new(vec![0, 1, 2, 3]);
        let inter: Vec<BigRational> = inst.intermediates(&z);
        let frag = (1usize, 3usize);
        let opt_alloc = inst.optimal_allocation(&z, frag, &inter).unwrap();
        let opt = inst.fragment_cost(&z, frag, &opt_alloc, &inter).unwrap();
        // Uniform split: 250/3 each.
        let third = BigRational::new(BigInt::from(250i64), BigUint::from(3u64));
        let uniform = inst
            .fragment_cost(&z, frag, &[third.clone(), third.clone(), third], &inter)
            .unwrap();
        assert!(opt <= uniform);
    }

    #[test]
    fn decomposition_validation() {
        let d = PipelineDecomposition::new(5, vec![(1, 2), (3, 3), (4, 4)]);
        assert_eq!(d.fragments().len(), 3);
        assert_eq!(PipelineDecomposition::singletons(4).fragments(), &[(1, 1), (2, 2), (3, 3)]);
        assert_eq!(PipelineDecomposition::single_pipeline(4).fragments(), &[(1, 3)]);
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn decomposition_gap_rejected() {
        PipelineDecomposition::new(5, vec![(1, 2), (3, 3)]);
    }

    #[test]
    #[should_panic(expected = "!= expected")]
    fn decomposition_overlap_rejected() {
        PipelineDecomposition::new(5, vec![(1, 2), (2, 4)]);
    }
}
