//! Join sequences (left-deep join orders).

use std::fmt;

/// A join sequence `Z = (v_{z₁}, …, v_{z_n})`: a permutation of the vertices
/// `0..n`, read as the left-deep order in which relations enter the plan.
///
/// The sequence comprises `n − 1` join operations `J₁ … J_{n−1}`; `J_i` joins
/// the result of the first `i` relations with the relation at position
/// `i + 1` (paper §2.1.2).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct JoinSequence {
    order: Vec<usize>,
}

impl JoinSequence {
    /// Validates that `order` is a permutation of `0..order.len()`.
    pub fn new(order: Vec<usize>) -> Self {
        let n = order.len();
        let mut seen = vec![false; n];
        for &v in &order {
            assert!(v < n, "vertex {v} out of range");
            assert!(!seen[v], "vertex {v} repeated");
            seen[v] = true;
        }
        JoinSequence { order }
    }

    /// The identity sequence `0, 1, …, n−1`.
    pub fn identity(n: usize) -> Self {
        JoinSequence { order: (0..n).collect() }
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The underlying permutation.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Vertex at position `i` (0-based).
    pub fn at(&self, i: usize) -> usize {
        self.order[i]
    }

    /// The prefix of the first `i` vertices.
    pub fn prefix(&self, i: usize) -> &[usize] {
        &self.order[..i]
    }

    /// Position of vertex `v` in the sequence.
    pub fn position_of(&self, v: usize) -> usize {
        self.order.iter().position(|&u| u == v).expect("vertex in sequence")
    }
}

impl fmt::Debug for JoinSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Z{:?}", self.order)
    }
}

impl From<Vec<usize>> for JoinSequence {
    fn from(order: Vec<usize>) -> Self {
        JoinSequence::new(order)
    }
}

/// Iterator over all permutations of `0..n` (Heap's algorithm); intended for
/// exhaustive optimizers on small `n`.
pub fn permutations(n: usize) -> impl Iterator<Item = Vec<usize>> {
    // Simple lexicographic generation via next_permutation.
    struct Perms {
        cur: Option<Vec<usize>>,
    }
    impl Iterator for Perms {
        type Item = Vec<usize>;
        fn next(&mut self) -> Option<Vec<usize>> {
            let out = self.cur.clone()?;
            self.cur = next_permutation(out.clone());
            Some(out)
        }
    }
    Perms { cur: Some((0..n).collect()) }
}

fn next_permutation(mut v: Vec<usize>) -> Option<Vec<usize>> {
    let n = v.len();
    if n < 2 {
        return None;
    }
    let mut i = n - 1;
    while i > 0 && v[i - 1] >= v[i] {
        i -= 1;
    }
    if i == 0 {
        return None;
    }
    let mut j = n - 1;
    while v[j] <= v[i - 1] {
        j -= 1;
    }
    v.swap(i - 1, j);
    v[i..].reverse();
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_permutation_accepted() {
        let z = JoinSequence::new(vec![2, 0, 1]);
        assert_eq!(z.len(), 3);
        assert_eq!(z.at(0), 2);
        assert_eq!(z.prefix(2), &[2, 0]);
        assert_eq!(z.position_of(1), 2);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn duplicate_rejected() {
        JoinSequence::new(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        JoinSequence::new(vec![0, 3]);
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(0).count(), 1);
        assert_eq!(permutations(1).count(), 1);
        assert_eq!(permutations(4).count(), 24);
        assert_eq!(permutations(5).count(), 120);
    }

    #[test]
    fn permutations_unique_and_valid() {
        let all: Vec<Vec<usize>> = permutations(4).collect();
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
        for p in all {
            let _ = JoinSequence::new(p); // validation panics on bad output
        }
    }
}
