//! Catalog-style workload generators: the query shapes that motivate the
//! paper (chain/star/snowflake/cycle/clique joins) with plausible
//! cardinalities and matching access-path costs.
//!
//! Every generator returns a valid [`QoNInstance`] whose access costs sit at
//! the model's lower bound `w(j,k) = ⌈t_j·s_{jk}⌉` (an index lookup per
//! outer tuple), the regime in which join order matters most.

use crate::qon::QoNInstance;
use crate::{AccessCostMatrix, SelectivityMatrix};
use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_graph::Graph;
use rand::Rng;

/// Shared parameters for the workload generators.
#[derive(Clone, Debug)]
pub struct WorkloadParams {
    /// Smallest relation cardinality.
    pub min_rows: u64,
    /// Largest relation cardinality.
    pub max_rows: u64,
    /// Smallest selectivity denominator (`s = 1/d`).
    pub min_sel_den: u64,
    /// Largest selectivity denominator.
    pub max_sel_den: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams { min_rows: 100, max_rows: 1_000_000, min_sel_den: 10, max_sel_den: 100_000 }
    }
}

impl WorkloadParams {
    fn rows(&self, rng: &mut impl Rng) -> BigUint {
        // Log-uniform cardinalities: real catalogs span orders of magnitude.
        let lo = (self.min_rows as f64).ln();
        let hi = (self.max_rows as f64).ln();
        BigUint::from(rng.gen_range(lo..=hi).exp() as u64)
    }

    fn selectivity(&self, rng: &mut impl Rng) -> BigRational {
        let lo = (self.min_sel_den as f64).ln();
        let hi = (self.max_sel_den as f64).ln();
        let d = rng.gen_range(lo..=hi).exp() as u64;
        BigRational::new(BigInt::one(), BigUint::from(d.max(2)))
    }
}

fn finish(g: Graph, sizes: Vec<BigUint>, sels: Vec<(usize, usize, BigRational)>) -> QoNInstance {
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (u, v, sel) in sels {
        s.set(u, v, sel.clone());
        for (j, k) in [(u, v), (v, u)] {
            let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
            w.set(j, k, lower.magnitude().clone().max(BigUint::one()));
        }
    }
    QoNInstance::new(g, sizes, s, w)
}

fn build(g: Graph, params: &WorkloadParams, rng: &mut impl Rng) -> QoNInstance {
    let n = g.n();
    let sizes: Vec<BigUint> = (0..n).map(|_| params.rows(rng)).collect();
    let sels: Vec<(usize, usize, BigRational)> =
        g.edges().map(|(u, v)| (u, v, params.selectivity(rng))).collect();
    finish(g, sizes, sels)
}

/// A chain (linear) query `R₀ ⋈ R₁ ⋈ … ⋈ R_{n−1}`: OLTP lookup pipelines.
pub fn chain(n: usize, params: &WorkloadParams, rng: &mut impl Rng) -> QoNInstance {
    assert!(n >= 2);
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v - 1, v);
    }
    build(g, params, rng)
}

/// A star query: fact table `R₀` joined with `n − 1` dimensions — the
/// data-warehousing shape (and the shape of Appendix A).
pub fn star(n: usize, params: &WorkloadParams, rng: &mut impl Rng) -> QoNInstance {
    assert!(n >= 2);
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v);
    }
    // Fact table big, dimensions drawn normally.
    let mut inst = build(g, params, rng);
    let mut sizes = inst.sizes().to_vec();
    sizes[0] = BigUint::from(params.max_rows);
    // Rebuild with the adjusted fact size (access costs must re-lower-bound).
    let sels: Vec<(usize, usize, BigRational)> = inst
        .graph()
        .edges()
        .map(|(u, v)| (u, v, inst.selectivity().get(u, v)))
        .collect();
    inst = finish(inst.graph().clone(), sizes, sels);
    inst
}

/// A snowflake: a star whose each dimension carries a short outrigger chain.
pub fn snowflake(
    dimensions: usize,
    chain_len: usize,
    params: &WorkloadParams,
    rng: &mut impl Rng,
) -> QoNInstance {
    assert!(dimensions >= 1 && chain_len >= 1);
    let n = 1 + dimensions * chain_len;
    let mut g = Graph::new(n);
    for d in 0..dimensions {
        let first = 1 + d * chain_len;
        g.add_edge(0, first);
        for i in 1..chain_len {
            g.add_edge(first + i - 1, first + i);
        }
    }
    build(g, params, rng)
}

/// A cycle query (the smallest shape with a non-tree edge — already outside
/// the IKKBZ-easy class).
pub fn cycle(n: usize, params: &WorkloadParams, rng: &mut impl Rng) -> QoNInstance {
    assert!(n >= 3);
    let mut g = Graph::new(n);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n);
    }
    build(g, params, rng)
}

/// A clique query: every pair predicated — the dense end of the spectrum
/// (the shape the §4 reduction emits).
pub fn clique(n: usize, params: &WorkloadParams, rng: &mut impl Rng) -> QoNInstance {
    assert!(n >= 2);
    build(Graph::complete(n), params, rng)
}

/// A grid query `rows × cols` (join graphs of multi-way equi-joins over
/// composite keys).
pub fn grid(rows: usize, cols: usize, params: &WorkloadParams, rng: &mut impl Rng) -> QoNInstance {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let idx = |r: usize, c: usize| r * cols + c;
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    build(g, params, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn shapes_have_expected_edges() {
        let p = WorkloadParams::default();
        let mut r = rng();
        assert_eq!(chain(5, &p, &mut r).graph().m(), 4);
        assert_eq!(star(6, &p, &mut r).graph().m(), 5);
        assert_eq!(snowflake(3, 2, &p, &mut r).graph().m(), 6);
        assert_eq!(cycle(5, &p, &mut r).graph().m(), 5);
        assert_eq!(clique(5, &p, &mut r).graph().m(), 10);
        assert_eq!(grid(2, 3, &p, &mut r).graph().m(), 7);
    }

    #[test]
    fn all_shapes_connected_and_costable() {
        let p = WorkloadParams::default();
        let mut r = rng();
        let instances = vec![
            chain(5, &p, &mut r),
            star(5, &p, &mut r),
            snowflake(2, 2, &p, &mut r),
            cycle(5, &p, &mut r),
            clique(4, &p, &mut r),
            grid(2, 2, &p, &mut r),
        ];
        for inst in instances {
            assert!(inst.graph().is_connected());
            let z = crate::JoinSequence::identity(inst.n());
            let c: BigRational = inst.total_cost(&z);
            assert!(c.is_positive());
        }
    }

    #[test]
    fn star_fact_table_is_biggest() {
        let p = WorkloadParams::default();
        let mut r = rng();
        let inst = star(6, &p, &mut r);
        let fact = &inst.sizes()[0];
        assert!(inst.sizes().iter().skip(1).all(|t| t <= fact));
    }

    #[test]
    fn sizes_within_bounds() {
        let p = WorkloadParams { min_rows: 50, max_rows: 500, min_sel_den: 5, max_sel_den: 50 };
        let mut r = rng();
        let inst = chain(8, &p, &mut r);
        for t in inst.sizes() {
            let v = t.to_u64().unwrap();
            assert!((50..=500).contains(&v), "cardinality {v} out of bounds");
        }
    }

    #[test]
    fn trees_are_ikkbz_compatible() {
        // chain / star / snowflake are trees: m == n − 1.
        let p = WorkloadParams::default();
        let mut r = rng();
        for inst in [chain(6, &p, &mut r), star(6, &p, &mut r), snowflake(2, 3, &p, &mut r)] {
            assert_eq!(inst.graph().m(), inst.n() - 1);
        }
    }
}
