//! Hand-rolled scoped worker-pool primitives for the parallel optimizers.
//!
//! The build environment vendors no threading crates, so the parallel
//! engines shard their work across plain [`std::thread::scope`] workers.
//! Three primitives cover every use in the workspace:
//!
//! * [`run_workers`] — fork/join over worker indices (branch-and-bound
//!   roots, strided permutation sweeps);
//! * [`par_chunks_zip`] — split a read-only item slice and a matching
//!   output slice into aligned contiguous chunks, one scoped worker per
//!   chunk (the layer-parallel subset DP: each worker owns a disjoint
//!   `&mut` window of the layer's result buffer, so no locks and no
//!   `unsafe` are needed);
//! * [`SharedBound`] — a lock-free shared incumbent upper bound in log₂
//!   domain, used by parallel branch-and-bound to propagate pruning power
//!   between workers.
//!
//! Worker panics are re-raised on the joining thread via
//! [`std::panic::resume_unwind`], so the driver's `catch_unwind` isolation
//! keeps working unchanged. Cooperative cancellation needs no machinery
//! here: workers tick the shared [`Budget`](crate::Budget) (its interior is
//! atomic) and unwind with `BudgetExceeded` individually; `thread::scope`
//! guarantees every worker is joined before the call returns, so a tripped
//! budget can never leak a thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of hardware threads, with a fallback of 1 when the platform
/// cannot say.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a user-facing thread-count knob: `0` means "auto" (use
/// [`available_threads`]); anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Runs `worker(t)` for every `t in 0..threads` on scoped threads and
/// returns the results in worker order. Worker 0 runs on the calling
/// thread (a 1-thread pool spawns nothing). A worker panic is re-raised
/// here after every other worker has been joined.
///
/// The caller's [`aqo_obs::trace`] context (if any) is propagated to
/// every spawned worker, so journal events and spans emitted inside the
/// pool keep the surrounding request's trace id.
pub fn run_workers<R, F>(threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 {
        return vec![worker(0)];
    }
    let trace = aqo_obs::trace::current();
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (1..threads)
            .map(|t| {
                scope.spawn(move || {
                    let _trace = trace.map(aqo_obs::trace::install);
                    worker(t)
                })
            })
            .collect();
        let mut results = Vec::with_capacity(threads);
        results.push(worker(0));
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        results
    })
}

/// Splits `items` and the equally long `out` into aligned contiguous
/// chunks (about one per worker) and processes each chunk on a scoped
/// thread via `f(offset, item_chunk, out_chunk)`. Errors are collected
/// after all workers have been joined; the error of the lowest-offset
/// failing chunk is returned, so the outcome is deterministic for a given
/// chunking.
pub fn par_chunks_zip<I, O, E, F>(
    threads: usize,
    items: &[I],
    out: &mut [O],
    f: F,
) -> Result<(), E>
where
    I: Sync,
    O: Send,
    E: Send,
    F: Fn(usize, &[I], &mut [O]) -> Result<(), E> + Sync,
{
    assert_eq!(items.len(), out.len(), "items/out must be the same length");
    if items.is_empty() {
        return Ok(());
    }
    let chunk = items.len().div_ceil(threads.max(1));
    if chunk >= items.len() {
        return f(0, items, out);
    }
    let trace = aqo_obs::trace::current();
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::new();
        let mut offset = 0usize;
        for (ic, oc) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let off = offset;
            offset += ic.len();
            handles.push(scope.spawn(move || {
                let _trace = trace.map(aqo_obs::trace::install);
                f(off, ic, oc)
            }));
        }
        let mut result = Ok(());
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if result.is_ok() {
                        result = Err(e);
                    }
                }
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        result
    })
}

/// A shared monotonically tightening upper bound, stored as the `f64` bit
/// pattern of a log₂ value in an atomic word.
///
/// Parallel branch-and-bound workers publish `log₂(incumbent cost)` here
/// and prune prefixes whose accumulated cost exceeds the bound by more
/// than a float-error margin; the *exact* incumbent each worker keeps
/// locally is what decides the final answer, so the float domain here only
/// ever affects how much gets pruned, never what is returned.
#[derive(Debug)]
pub struct SharedBound(AtomicU64);

impl SharedBound {
    /// A bound that prunes nothing yet.
    pub fn unbounded() -> Self {
        SharedBound(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// A bound starting at `log2` (e.g. a warm start's cost).
    pub fn new(log2: f64) -> Self {
        debug_assert!(!log2.is_nan());
        SharedBound(AtomicU64::new(log2.to_bits()))
    }

    /// The current bound (log₂ domain).
    #[inline]
    pub fn get(&self) -> f64 {
        // ordering: the bound is self-contained — the f64 bit pattern IS
        // the entire message, with no dependent data published alongside
        // it, so there is nothing for an Acquire to synchronize. A stale
        // read only prunes less; each worker's exact local incumbent
        // decides the final answer (audited for PR 4; no Release/Acquire
        // upgrade needed).
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Lowers the bound to `log2` if that is tighter. Lock-free; lost
    /// races only ever leave the bound looser (still correct).
    pub fn tighten(&self, log2: f64) {
        debug_assert!(!log2.is_nan());
        // ordering: see `get` — a single self-contained word; the CAS in
        // fetch_update already guarantees the monotone min is kept under
        // races (verified exhaustively in tests/model_parallel.rs).
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            if log2 < f64::from_bits(cur) {
                Some(log2.to_bits())
            } else {
                None
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_cover_all_indices_in_order() {
        for threads in 1..=4 {
            let out = run_workers(threads, |t| t * 10);
            assert_eq!(out, (0..threads).map(|t| t * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunks_partition_exactly() {
        let items: Vec<u32> = (0..103).collect();
        for threads in [1usize, 2, 3, 8, 200] {
            let mut out = vec![0u32; items.len()];
            par_chunks_zip(threads, &items, &mut out, |off, ic, oc| {
                for (i, (x, o)) in ic.iter().zip(oc.iter_mut()).enumerate() {
                    // Every worker sees a consistent (offset, item) pairing.
                    assert_eq!(*x as usize, off + i);
                    *o = x * 2;
                }
                Ok::<(), ()>(())
            })
            .unwrap();
            assert!(out.iter().zip(&items).all(|(o, i)| *o == i * 2));
        }
    }

    #[test]
    fn first_chunk_error_wins() {
        let items: Vec<usize> = (0..64).collect();
        let mut out = vec![0usize; 64];
        let err = par_chunks_zip(4, &items, &mut out, |off, _, _| {
            if off >= 16 {
                Err(off)
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, 16);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_workers(3, |t| {
                if t == 2 {
                    panic!("boom");
                }
                t
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn shared_bound_only_tightens() {
        let b = SharedBound::unbounded();
        assert_eq!(b.get(), f64::INFINITY);
        b.tighten(10.0);
        b.tighten(12.0); // looser: ignored
        assert_eq!(b.get(), 10.0);
        b.tighten(-3.5);
        assert_eq!(b.get(), -3.5);
    }

    #[test]
    fn shared_bound_from_many_threads() {
        let b = SharedBound::new(1000.0);
        run_workers(4, |t| {
            for i in 0..100 {
                b.tighten(1000.0 - (t * 100 + i) as f64);
            }
        });
        assert_eq!(b.get(), 1000.0 - 399.0);
    }

    #[test]
    fn thread_resolution() {
        assert!(available_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), available_threads());
    }
}
