//! EXPLAIN-style plan rendering: human-readable breakdowns of QO_N join
//! sequences and QO_H pipeline plans, with per-operator costs in both exact
//! and log₂ form.

use crate::qoh::{PipelineDecomposition, QoHInstance};
use crate::qon::QoNInstance;
use crate::{CostScalar, JoinSequence};
use aqo_bignum::BigRational;
use std::fmt::Write as _;

fn short(v: &BigRational) -> String {
    let bits = CostScalar::log2(v);
    if bits < 40.0 {
        format!("{v}")
    } else {
        format!("2^{bits:.1}")
    }
}

/// Renders a QO_N sequence as an operator-by-operator cost table.
pub fn explain_qon(inst: &QoNInstance, z: &JoinSequence) -> String {
    let report = inst.cost::<BigRational>(z);
    let back = inst.back_edges(z);
    let mut out = String::new();
    let _ = writeln!(out, "QO_N plan over {} relations (left-deep)", inst.n());
    let _ = writeln!(out, "  scan R{:<4} |R| = {}", z.at(0), short(&report.intermediates[0]));
    for (i, &back_i) in back.iter().enumerate().skip(1) {
        let j = z.at(i);
        let kind = if back_i == 0 { "cartesian ⨯" } else { "join ⋈" };
        let _ = writeln!(
            out,
            "  {kind} R{:<4} H_{:<3} = {:<14} N_{:<3} = {:<14} back-edges = {}",
            j,
            i,
            short(&report.per_join[i - 1]),
            i,
            short(&report.intermediates[i]),
            back_i,
        );
    }
    let _ = writeln!(out, "  total C(Z) = {}  ({} bits)", short(&report.total), format_args!("{:.2}", CostScalar::log2(&report.total)));
    out
}

/// Renders a QO_H plan (sequence + decomposition, with per-fragment optimal
/// allocations) pipeline by pipeline. Returns `None` if infeasible.
pub fn explain_qoh(
    inst: &QoHInstance,
    z: &JoinSequence,
    decomp: &PipelineDecomposition,
) -> Option<String> {
    let inter: Vec<BigRational> = inst.intermediates(z);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "QO_H plan over {} relations, M = {} pages, {} pipeline(s)",
        inst.n(),
        inst.memory(),
        decomp.fragments().len()
    );
    let mut total = BigRational::zero();
    for (pi, &(i, k)) in decomp.fragments().iter().enumerate() {
        let alloc = inst.optimal_allocation(z, (i, k), &inter)?;
        let cost = inst.fragment_cost(z, (i, k), &alloc, &inter)?;
        let _ = writeln!(
            out,
            "  pipeline P{} = J_{i}..J_{k}: read {} … write {}  cost {}",
            pi + 1,
            short(&inter[i - 1]),
            short(&inter[k]),
            short(&cost),
        );
        for j in i..=k {
            let inner = inst.inner_size(z, j);
            let hj = inst.hjmin(inner);
            let m = &alloc[j - i];
            let status = if *m >= BigRational::from(inner.clone()) {
                "in-memory"
            } else if *m == BigRational::from(hj.clone()) {
                "minimum memory"
            } else {
                "partial"
            };
            let _ = writeln!(
                out,
                "    J_{j}: build R{} (|R| = {}), m = {} pages [{status}], outer = {}",
                z.at(j),
                inner,
                short(m),
                short(&inter[j - 1]),
            );
        }
        total = &total + &cost;
    }
    let _ = writeln!(out, "  total = {}  ({:.2} bits)", short(&total), CostScalar::log2(&total));
    Some(out)
}

/// Renders an SQO−CP star plan operator by operator (Appendix A cost
/// function `D`).
pub fn explain_star(inst: &crate::sqo::SqoCpInstance, plan: &crate::sqo::StarPlan) -> String {
    use crate::sqo::JoinMethod;
    let mut out = String::new();
    let total = inst.plan_cost(plan);
    let _ = writeln!(
        out,
        "SQO−CP star plan over R0..R{} (k_s = {})",
        inst.m(),
        inst.ks()
    );
    let _ = writeln!(out, "  scan R{}", plan.order[0]);
    let mut sats: Vec<usize> = Vec::new();
    for pos in 1..plan.order.len() {
        let rel = plan.order[pos];
        let method = match plan.methods[pos - 1] {
            JoinMethod::NestedLoops => "nested-loops",
            JoinMethod::SortMerge => "sort-merge  ",
        };
        if rel != 0 {
            sats.push(rel);
        }
        let n_w = inst.intermediate_tuples(&sats);
        let _ = writeln!(out, "  {method} ⋈ R{rel:<4} n(W) = {}", short(&n_w));
    }
    let _ = writeln!(out, "  total C(Z) = {}  ({:.2} bits)", short(&total), CostScalar::log2(&total));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessCostMatrix, SelectivityMatrix};
    use aqo_bignum::{BigInt, BigUint};
    use aqo_graph::Graph;

    fn qon() -> QoNInstance {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let sizes = vec![BigUint::from(10u64), BigUint::from(20u64), BigUint::from(30u64)];
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        s.set(1, 2, BigRational::new(BigInt::one(), BigUint::from(10u64)));
        let mut w = AccessCostMatrix::new();
        w.set(0, 1, BigUint::from(5u64));
        w.set(1, 0, BigUint::from(10u64));
        w.set(1, 2, BigUint::from(2u64));
        w.set(2, 1, BigUint::from(3u64));
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn qon_explain_mentions_every_join() {
        let inst = qon();
        let text = explain_qon(&inst, &JoinSequence::new(vec![0, 1, 2]));
        assert!(text.contains("scan R0"));
        assert!(text.contains("join ⋈ R1"));
        assert!(text.contains("join ⋈ R2"));
        assert!(text.contains("total C(Z) = 400"));
    }

    #[test]
    fn qon_explain_flags_cartesian_products() {
        let inst = qon();
        let text = explain_qon(&inst, &JoinSequence::new(vec![0, 2, 1]));
        assert!(text.contains("cartesian ⨯ R2"));
    }

    #[test]
    fn qoh_explain_shows_pipelines_and_memory_status() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(4u64)));
        s.set(1, 2, BigRational::new(BigInt::one(), BigUint::from(4u64)));
        let inst = QoHInstance::new(
            g,
            vec![BigUint::from(256u64); 3],
            s,
            BigUint::from(300u64),
        );
        let z = JoinSequence::identity(3);
        let text =
            explain_qoh(&inst, &z, &PipelineDecomposition::single_pipeline(3)).expect("feasible");
        assert!(text.contains("pipeline P1 = J_1..J_2"));
        assert!(text.contains("build R1"));
        assert!(text.contains("build R2"));
        assert!(text.contains("total = "));
    }

    #[test]
    fn star_explain_shows_methods() {
        use crate::sqo::{JoinMethod, SqoCpInstance, StarPlan};
        let inst = SqoCpInstance::new(
            4,
            vec![BigUint::from(10u64), BigUint::from(6u64), BigUint::from(4u64)],
            vec![BigUint::from(10u64), BigUint::from(6u64), BigUint::from(4u64)],
            vec![BigUint::from(40u64), BigUint::from(24u64), BigUint::from(16u64)],
            vec![
                BigRational::one(),
                BigRational::new(BigInt::one(), BigUint::from(2u64)),
                BigRational::new(BigInt::one(), BigUint::from(4u64)),
            ],
            vec![BigUint::zero(), BigUint::from(3u64), BigUint::from(2u64)],
            vec![BigUint::zero(), BigUint::from(5u64), BigUint::from(5u64)],
        );
        let plan = StarPlan::new(
            vec![0, 1, 2],
            vec![JoinMethod::NestedLoops, JoinMethod::SortMerge],
        );
        let text = explain_star(&inst, &plan);
        assert!(text.contains("nested-loops ⋈ R1"));
        assert!(text.contains("sort-merge"));
        assert!(text.contains("total C(Z)"));
    }

    #[test]
    fn qoh_explain_infeasible_is_none() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        let inst =
            QoHInstance::new(g, vec![BigUint::from(10_000u64); 2], s, BigUint::from(3u64));
        let z = JoinSequence::identity(2);
        assert!(explain_qoh(&inst, &z, &PipelineDecomposition::single_pipeline(2)).is_none());
    }
}
