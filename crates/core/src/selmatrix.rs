//! Sparse symmetric selectivity and access-path cost storage.
//!
//! Instances produced by the sparse reductions (§6) can have thousands of
//! vertices; dense `n × n` matrices of rationals would dwarf the actual
//! instance. Both matrices therefore store only edge entries and answer the
//! paper's defaults for non-edges: selectivity `1`, access cost `t_j`.

use aqo_bignum::{BigRational, BigUint};
use std::collections::HashMap;

fn key(u: usize, v: usize) -> (usize, usize) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// The symmetric selectivity matrix `S`: `s_{ij} = s_{ji}`, defaulting to `1`
/// for pairs without a predicate.
#[derive(Clone, Debug, Default)]
pub struct SelectivityMatrix {
    entries: HashMap<(usize, usize), BigRational>,
}

impl SelectivityMatrix {
    /// Empty matrix (every pair has selectivity 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `s_{uv} = s_{vu} = s`. Panics unless `0 < s ≤ 1` and `u ≠ v`.
    pub fn set(&mut self, u: usize, v: usize, s: BigRational) {
        assert!(u != v, "selectivity of a vertex with itself");
        assert!(s.is_positive() && s <= BigRational::one(), "selectivity must be in (0, 1]");
        self.entries.insert(key(u, v), s);
    }

    /// `s_{uv}` (`1` if unset).
    pub fn get(&self, u: usize, v: usize) -> BigRational {
        self.entries.get(&key(u, v)).cloned().unwrap_or_else(BigRational::one)
    }

    /// Whether an explicit entry exists for `{u, v}`.
    pub fn has_entry(&self, u: usize, v: usize) -> bool {
        self.entries.contains_key(&key(u, v))
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no explicit entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The access-path cost matrix `W`.
///
/// For an edge `{v_j, v_k}`, `w(j, k)` is the least cost of solving the
/// predicate for one tuple carrying `R_k`'s join attributes against relation
/// `R_j` (the paper constrains `t_j·s_{jk} ≤ w_{jk} ≤ t_j`). For a non-edge
/// the paper fixes `w(j, k) = t_j` — every tuple of `R_j` qualifies. Entries
/// are directional: `w(j, k)` and `w(k, j)` are stored independently.
#[derive(Clone, Debug, Default)]
pub struct AccessCostMatrix {
    entries: HashMap<(usize, usize), BigUint>,
}

impl AccessCostMatrix {
    /// Empty matrix (all pairs defaulted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the directional entry `w(j, k) = w`.
    pub fn set(&mut self, j: usize, k: usize, w: BigUint) {
        assert!(j != k, "access cost of a vertex with itself");
        self.entries.insert((j, k), w);
    }

    /// `w(j, k)`: the stored entry, or `t_j` (the default for non-edges),
    /// where `t_j` is supplied by the caller via `default_tj`.
    pub fn get_or(&self, j: usize, k: usize, default_tj: &BigUint) -> BigUint {
        self.entries.get(&(j, k)).cloned().unwrap_or_else(|| default_tj.clone())
    }

    /// The stored directional entry, if any.
    pub fn get(&self, j: usize, k: usize) -> Option<&BigUint> {
        self.entries.get(&(j, k))
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no explicit entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_bignum::BigInt;

    #[test]
    fn selectivity_defaults_to_one() {
        let m = SelectivityMatrix::new();
        assert_eq!(m.get(3, 7), BigRational::one());
        assert!(!m.has_entry(3, 7));
    }

    #[test]
    fn selectivity_symmetric() {
        let mut m = SelectivityMatrix::new();
        let s = BigRational::new(BigInt::from(1i64), BigUint::from(4u64));
        m.set(2, 5, s.clone());
        assert_eq!(m.get(2, 5), s);
        assert_eq!(m.get(5, 2), s);
        assert!(m.has_entry(5, 2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "selectivity must be in (0, 1]")]
    fn selectivity_range_checked() {
        SelectivityMatrix::new().set(0, 1, BigRational::from(2u64));
    }

    #[test]
    fn access_cost_directional() {
        let mut w = AccessCostMatrix::new();
        w.set(1, 2, BigUint::from(10u64));
        w.set(2, 1, BigUint::from(99u64));
        let t = BigUint::from(1000u64);
        assert_eq!(w.get_or(1, 2, &t), BigUint::from(10u64));
        assert_eq!(w.get_or(2, 1, &t), BigUint::from(99u64));
        assert_eq!(w.get_or(1, 3, &t), t);
        assert_eq!(w.get(1, 3), None);
    }
}
