//! Canonical, order-independent instance fingerprints.
//!
//! The serving layer (`aqo-serve`) keys its plan cache on the *instance*,
//! not on the request text: two clients sending the same query graph with
//! the edge lines permuted, or the same instance regenerated from a
//! different in-memory representation, must land on the same cache entry.
//! This module defines that identity:
//!
//! * [`canonical_qon`] / [`canonical_qoh`] — a normalized line encoding of
//!   an instance: fixed header, sizes in index order, one record per edge
//!   with `u < v`, records sorted lexicographically. Equal instances
//!   produce byte-identical encodings regardless of edge enumeration
//!   order, so the encoding doubles as a collision-proof cache key.
//! * [`fingerprint_qon`] / [`fingerprint_qoh`] — 64-bit FNV-1a over the
//!   canonical encoding. Because the encoding is normalized first, the
//!   fingerprint is independent of input order by construction.
//!
//! The fingerprint is a *routing* hash (shard selection, fast compare); it
//! is never trusted alone. Cache lookups compare the full canonical key,
//! so even a 64-bit collision can only cost a miss, never a wrong plan —
//! the property the `aqo-serve` interleaving model test pins down.

use crate::qoh::QoHInstance;
use crate::qon::QoNInstance;
use std::fmt::Write as _;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher (no `std::hash` indirection, so the
/// value is stable across platforms and Rust versions — it appears in
/// wire responses and committed bench artifacts).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Feeds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a of `bytes` in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

fn finish_canonical(header: String, mut edge_records: Vec<String>) -> String {
    // Sorting the records is what buys order independence: the hash of
    // the joined encoding cannot depend on enumeration order.
    edge_records.sort_unstable();
    let mut out = header;
    for r in edge_records {
        out.push_str(&r);
        out.push('\n');
    }
    out
}

/// Canonical encoding of a QO_N instance (see module docs). Stable across
/// edge enumeration order; distinct instances yield distinct encodings
/// because every component (sizes, selectivities, access costs) is spelled
/// out exactly.
pub fn canonical_qon(inst: &QoNInstance) -> String {
    let mut out = String::with_capacity(64 + inst.n() * 24);
    let _ = writeln!(out, "qon {}", inst.n());
    for (i, t) in inst.sizes().iter().enumerate() {
        let _ = writeln!(out, "t {i} {t}");
    }
    let mut records = Vec::new();
    for (u, v) in inst.graph().edges() {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let s = inst.selectivity().get(a, b);
        // Endpoints normalized `a < b`; the two access costs follow in
        // the normalized `(a,b), (b,a)` order.
        records
            .push(format!("e {a} {b} {}/{} {} {}", s.numer(), s.denom(), inst.w(a, b), inst.w(b, a)));
    }
    finish_canonical(out, records)
}

/// Canonical encoding of a QO_H instance (see module docs).
pub fn canonical_qoh(inst: &QoHInstance) -> String {
    let mut out = String::with_capacity(64 + inst.n() * 24);
    let (en, ed) = inst.eta();
    let _ = writeln!(out, "qoh {}", inst.n());
    let _ = writeln!(out, "m {}", inst.memory());
    let _ = writeln!(out, "eta {en}/{ed}");
    for (i, t) in inst.sizes().iter().enumerate() {
        let _ = writeln!(out, "t {i} {t}");
    }
    let mut records = Vec::new();
    for (u, v) in inst.graph().edges() {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let s = inst.selectivity().get(a, b);
        records.push(format!("e {a} {b} {}/{}", s.numer(), s.denom()));
    }
    finish_canonical(out, records)
}

/// 64-bit FNV-1a fingerprint of a QO_N instance's canonical encoding.
pub fn fingerprint_qon(inst: &QoNInstance) -> u64 {
    fnv1a(canonical_qon(inst).as_bytes())
}

/// 64-bit FNV-1a fingerprint of a QO_H instance's canonical encoding.
pub fn fingerprint_qoh(inst: &QoHInstance) -> u64 {
    fnv1a(canonical_qoh(inst).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{textio, workloads};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(n: usize, seed: u64) -> QoNInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        workloads::chain(n, &workloads::WorkloadParams::default(), &mut rng)
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn permuted_edge_text_hashes_identically() {
        let inst = chain(6, 3);
        let text = textio::qon_to_text(&inst);
        // Reverse the edge lines: same instance, different input order.
        let mut head: Vec<&str> = Vec::new();
        let mut edges: Vec<&str> = Vec::new();
        for line in text.lines() {
            if line.starts_with("edge") {
                edges.push(line);
            } else {
                head.push(line);
            }
        }
        edges.reverse();
        let permuted = format!("{}\n{}\n", head.join("\n"), edges.join("\n"));
        let reparsed = textio::qon_from_text(&permuted).expect("permuted text parses");
        assert_eq!(canonical_qon(&inst), canonical_qon(&reparsed));
        assert_eq!(fingerprint_qon(&inst), fingerprint_qon(&reparsed));
    }

    #[test]
    fn different_instances_fingerprint_differently() {
        let a = chain(6, 3);
        let b = chain(6, 4); // same shape, different sizes/selectivities
        let c = chain(7, 3);
        assert_ne!(fingerprint_qon(&a), fingerprint_qon(&b));
        assert_ne!(fingerprint_qon(&a), fingerprint_qon(&c));
    }

    #[test]
    fn qoh_fingerprint_covers_memory() {
        let base = chain(5, 9);
        let mk = |mem: u64| {
            QoHInstance::new(
                base.graph().clone(),
                base.sizes().to_vec(),
                base.selectivity().clone(),
                aqo_bignum::BigUint::from(mem),
            )
        };
        let a = mk(1_000_000);
        let b = mk(2_000_000);
        assert_ne!(fingerprint_qoh(&a), fingerprint_qoh(&b));
        assert_eq!(fingerprint_qoh(&a), fingerprint_qoh(&mk(1_000_000)));
    }

    #[test]
    fn canonical_text_round_trips_identity_through_textio() {
        // Serializing and reparsing an instance must not move its
        // fingerprint — this is what makes the wire format cache-stable.
        let inst = chain(8, 11);
        let reparsed = textio::qon_from_text(&textio::qon_to_text(&inst)).expect("parses");
        assert_eq!(fingerprint_qon(&inst), fingerprint_qon(&reparsed));
    }
}
