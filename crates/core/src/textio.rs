//! A line-oriented text format for QO_N / QO_H instances, so reduction
//! outputs can be archived, diffed and replayed (sizes are arbitrary-
//! precision decimals — instances from the hardness chain do not fit in any
//! machine integer).
//!
//! ```text
//! qon                       qoh
//! vertices 3                vertices 3
//! size 0 10                 memory 250
//! size 1 20                 eta 1 2
//! size 2 30                 size 0 100
//! edge 0 1 1/2 5 10         edge 0 1 1/10
//! edge 1 2 1/10 2 3
//! ```
//!
//! QO_N `edge u v s w(u,v) w(v,u)`; QO_H `edge u v s`. Selectivities are
//! `num/den` (or a bare integer). Lines starting with `#` are comments.

use crate::qoh::QoHInstance;
use crate::qon::QoNInstance;
use crate::{AccessCostMatrix, SelectivityMatrix};
use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_graph::Graph;
use std::fmt::Write as _;

/// Error from the parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn write_ratio(out: &mut String, r: &BigRational) {
    if r.is_integer() {
        let _ = write!(out, "{}", r.numer());
    } else {
        let _ = write!(out, "{}/{}", r.numer(), r.denom());
    }
}

fn parse_ratio(tok: &str, line: usize) -> Result<BigRational, ParseError> {
    let (num, den) = match tok.split_once('/') {
        Some((n, d)) => (n, Some(d)),
        None => (tok, None),
    };
    let n = BigUint::from_decimal(num).map_err(|_| err(line, format!("bad numerator {num}")))?;
    let d = match den {
        Some(d) => {
            BigUint::from_decimal(d).map_err(|_| err(line, format!("bad denominator {d}")))?
        }
        None => BigUint::one(),
    };
    if d.is_zero() {
        return Err(err(line, "zero denominator"));
    }
    Ok(BigRational::new(BigInt::from(n), d))
}

fn parse_uint(tok: &str, line: usize) -> Result<BigUint, ParseError> {
    BigUint::from_decimal(tok).map_err(|_| err(line, format!("bad integer {tok}")))
}

fn parse_usize(tok: &str, line: usize) -> Result<usize, ParseError> {
    tok.parse().map_err(|_| err(line, format!("bad index {tok}")))
}

/// Serializes a QO_N instance.
pub fn qon_to_text(inst: &QoNInstance) -> String {
    let mut out = String::from("qon\n");
    let _ = writeln!(out, "vertices {}", inst.n());
    for (i, t) in inst.sizes().iter().enumerate() {
        let _ = writeln!(out, "size {i} {t}");
    }
    for (u, v) in inst.graph().edges() {
        let _ = write!(out, "edge {u} {v} ");
        write_ratio(&mut out, &inst.selectivity().get(u, v));
        let _ = writeln!(out, " {} {}", inst.w(u, v), inst.w(v, u));
    }
    out
}

/// Parses a QO_N instance (validating through [`QoNInstance::new`]).
pub fn qon_from_text(input: &str) -> Result<QoNInstance, ParseError> {
    let mut lines = numbered(input);
    let (ln, first) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if first != "qon" {
        return Err(err(ln, "expected 'qon' header"));
    }
    let mut n: Option<usize> = None;
    let mut sizes: Vec<Option<BigUint>> = Vec::new();
    let mut graph: Option<Graph> = None;
    let mut sel = SelectivityMatrix::new();
    let mut acc = AccessCostMatrix::new();
    for (ln, line) in lines {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["vertices", v] => {
                let v = parse_usize(v, ln)?;
                n = Some(v);
                sizes = vec![None; v];
                graph = Some(Graph::new(v));
            }
            ["size", i, t] => {
                let i = parse_usize(i, ln)?;
                let slot = sizes
                    .get_mut(i)
                    .ok_or_else(|| err(ln, format!("size index {i} out of range")))?;
                *slot = Some(parse_uint(t, ln)?);
            }
            ["edge", u, v, s, wuv, wvu] => {
                let g = graph.as_mut().ok_or_else(|| err(ln, "edge before vertices"))?;
                let u = parse_usize(u, ln)?;
                let v = parse_usize(v, ln)?;
                if u == v {
                    return Err(err(ln, "self-loop edge"));
                }
                if u >= g.n() || v >= g.n() {
                    return Err(err(ln, "edge endpoint out of range"));
                }
                let sv = parse_ratio(s, ln)?;
                if !sv.is_positive() || sv > BigRational::one() {
                    return Err(err(ln, "selectivity out of (0, 1]"));
                }
                g.add_edge(u, v);
                sel.set(u, v, sv);
                acc.set(u, v, parse_uint(wuv, ln)?);
                acc.set(v, u, parse_uint(wvu, ln)?);
            }
            _ => return Err(err(ln, format!("unrecognized line: {line}"))),
        }
    }
    let n = n.ok_or_else(|| err(0, "missing 'vertices'"))?;
    let sizes: Vec<BigUint> = sizes
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.ok_or_else(|| err(0, format!("missing size for vertex {i}"))))
        .collect::<Result<_, _>>()?;
    let graph = graph.expect("set with n");
    debug_assert_eq!(graph.n(), n);
    // Semantic validation before handing to the (panicking) constructor.
    for (i, t) in sizes.iter().enumerate() {
        if t.is_zero() {
            return Err(err(0, format!("relation {i} has zero cardinality")));
        }
    }
    for (u, v) in graph.edges() {
        for (j, k) in [(u, v), (v, u)] {
            let w = acc.get(j, k).ok_or_else(|| err(0, format!("missing w({j},{k})")))?;
            let tj = BigRational::from(sizes[j].clone());
            let w_rat = BigRational::from(w.clone());
            if w_rat < &tj * &sel.get(j, k) || w_rat > tj {
                return Err(err(0, format!("w({j},{k}) outside [t_j*s, t_j]")));
            }
        }
    }
    Ok(QoNInstance::new(graph, sizes, sel, acc))
}

/// Serializes a QO_H instance.
pub fn qoh_to_text(inst: &QoHInstance) -> String {
    let mut out = String::from("qoh\n");
    let _ = writeln!(out, "vertices {}", inst.n());
    let _ = writeln!(out, "memory {}", inst.memory());
    for (i, t) in inst.sizes().iter().enumerate() {
        let _ = writeln!(out, "size {i} {t}");
    }
    for (u, v) in inst.graph().edges() {
        let _ = write!(out, "edge {u} {v} ");
        write_ratio(&mut out, &inst.selectivity().get(u, v));
        out.push('\n');
    }
    out
}

/// Parses a QO_H instance (default η = 1/2).
pub fn qoh_from_text(input: &str) -> Result<QoHInstance, ParseError> {
    let mut lines = numbered(input);
    let (ln, first) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    if first != "qoh" {
        return Err(err(ln, "expected 'qoh' header"));
    }
    let mut sizes: Vec<Option<BigUint>> = Vec::new();
    let mut graph: Option<Graph> = None;
    let mut sel = SelectivityMatrix::new();
    let mut memory: Option<BigUint> = None;
    let mut eta = (1u32, 2u32);
    for (ln, line) in lines {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["vertices", v] => {
                let v = parse_usize(v, ln)?;
                sizes = vec![None; v];
                graph = Some(Graph::new(v));
            }
            ["memory", m] => memory = Some(parse_uint(m, ln)?),
            ["eta", num, den] => {
                eta = (
                    parse_usize(num, ln)? as u32,
                    parse_usize(den, ln)? as u32,
                );
            }
            ["size", i, t] => {
                let i = parse_usize(i, ln)?;
                let slot = sizes
                    .get_mut(i)
                    .ok_or_else(|| err(ln, format!("size index {i} out of range")))?;
                *slot = Some(parse_uint(t, ln)?);
            }
            ["edge", u, v, s] => {
                let g = graph.as_mut().ok_or_else(|| err(ln, "edge before vertices"))?;
                let u = parse_usize(u, ln)?;
                let v = parse_usize(v, ln)?;
                if u == v {
                    return Err(err(ln, "self-loop edge"));
                }
                if u >= g.n() || v >= g.n() {
                    return Err(err(ln, "edge endpoint out of range"));
                }
                let sv = parse_ratio(s, ln)?;
                if !sv.is_positive() || sv > BigRational::one() {
                    return Err(err(ln, "selectivity out of (0, 1]"));
                }
                g.add_edge(u, v);
                sel.set(u, v, sv);
            }
            _ => return Err(err(ln, format!("unrecognized line: {line}"))),
        }
    }
    let sizes: Vec<BigUint> = sizes
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.ok_or_else(|| err(0, format!("missing size for vertex {i}"))))
        .collect::<Result<_, _>>()?;
    let graph = graph.ok_or_else(|| err(0, "missing 'vertices'"))?;
    let memory = memory.ok_or_else(|| err(0, "missing 'memory'"))?;
    for (i, t) in sizes.iter().enumerate() {
        if t.is_zero() {
            return Err(err(0, format!("relation {i} has zero cardinality")));
        }
    }
    if memory.is_zero() {
        return Err(err(0, "zero memory"));
    }
    if eta.0 == 0 || eta.0 >= eta.1 {
        return Err(err(0, "eta must be a fraction in (0, 1)"));
    }
    Ok(QoHInstance::with_eta(graph, sizes, sel, memory, eta))
}

fn numbered(input: &str) -> impl Iterator<Item = (usize, &str)> {
    input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JoinSequence;

    fn chain() -> QoNInstance {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let sizes = vec![BigUint::from(10u64), BigUint::from(20u64), BigUint::from(30u64)];
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        s.set(1, 2, BigRational::new(BigInt::one(), BigUint::from(10u64)));
        let mut w = AccessCostMatrix::new();
        w.set(0, 1, BigUint::from(5u64));
        w.set(1, 0, BigUint::from(10u64));
        w.set(1, 2, BigUint::from(2u64));
        w.set(2, 1, BigUint::from(3u64));
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn qon_roundtrip_preserves_costs() {
        let inst = chain();
        let text = qon_to_text(&inst);
        let back = qon_from_text(&text).unwrap();
        for perm in crate::join::permutations(3) {
            let z = JoinSequence::new(perm);
            let a: BigRational = inst.total_cost(&z);
            let b: BigRational = back.total_cost(&z);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn qon_roundtrip_huge_sizes() {
        // Reduction-scale sizes survive the text format.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let t = BigUint::from(4u64).pow(500);
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::recip_of(BigUint::from(4u64).pow(100)));
        let mut w = AccessCostMatrix::new();
        let wv = BigUint::from(4u64).pow(400);
        w.set(0, 1, wv.clone());
        w.set(1, 0, wv);
        let inst = QoNInstance::new(g, vec![t.clone(), t], s, w);
        let back = qon_from_text(&qon_to_text(&inst)).unwrap();
        assert_eq!(back.sizes()[0], inst.sizes()[0]);
        assert_eq!(back.w(0, 1), inst.w(0, 1));
    }

    #[test]
    fn qoh_roundtrip() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(4u64)));
        s.set(1, 2, BigRational::new(BigInt::one(), BigUint::from(8u64)));
        let inst = QoHInstance::new(
            g,
            vec![BigUint::from(100u64); 3],
            s,
            BigUint::from(64u64),
        );
        let back = qoh_from_text(&qoh_to_text(&inst)).unwrap();
        assert_eq!(back.n(), 3);
        assert_eq!(back.memory(), inst.memory());
        let z = JoinSequence::identity(3);
        let a: Vec<BigRational> = inst.intermediates(&z);
        let b: Vec<BigRational> = back.intermediates(&z);
        assert_eq!(a, b);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# archive\nqon\n\nvertices 1\nsize 0 5\n";
        let inst = qon_from_text(text).unwrap();
        assert_eq!(inst.n(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = qon_from_text("qon\nvertices 2\nsize 0 4\nsize 1 4\nedge 0 5 1/2 2 2\n")
            .unwrap_err();
        assert_eq!(e.line, 5);
        assert!(qon_from_text("nope\n").is_err());
        assert!(qon_from_text("qon\nvertices 1\n").is_err(), "missing size");
    }
}
