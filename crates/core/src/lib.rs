//! Problem definitions and cost semantics for the three query-optimization
//! variants studied in *On the Complexity of Approximate Query Optimization*
//! (PODS 2002):
//!
//! * [`qon`] — **QO_N** (§2.1): left-deep join sequences costed under the
//!   nested-loops model of Ibaraki–Kameda. An instance is
//!   `(n, Q = (V,E), S, T, W)`: query graph, selectivity matrix, relation
//!   sizes, and access-path cost matrix.
//! * [`qoh`] — **QO_H** (§2.2): join sequences executed as *pipelined hash
//!   joins*; a plan is a join sequence plus a pipeline decomposition plus a
//!   memory-allocation vector. An instance is `(n, Q, S, T, M)`.
//! * [`sqo`] — **SQO−CP** (Appendix A): star queries without cartesian
//!   products, joins computed by nested loops or sort-merge.
//!
//! Costs are evaluated generically over a [`scalar::CostScalar`]: the exact
//! backend ([`aqo_bignum::BigRational`]) is used for every certified
//! inequality, and the log-domain backend ([`aqo_bignum::LogNum`]) powers
//! the optimizers. The two agree to floating-point precision (tested by
//! property tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod explain;
pub mod faults;
pub mod fingerprint;
pub mod interleave;
pub mod join;
pub mod parallel;
pub mod qoh;
pub mod qon;
pub mod scalar;
pub mod selmatrix;
pub mod sqo;
pub mod textio;
pub mod workloads;

pub use budget::{Budget, BudgetExceeded, BudgetKind, CancelToken};
pub use join::JoinSequence;
pub use scalar::CostScalar;
pub use selmatrix::{AccessCostMatrix, SelectivityMatrix};
