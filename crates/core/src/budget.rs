//! Cooperative resource budgets for the exponential optimizers.
//!
//! Every exact algorithm in this workspace — subset DP, branch-and-bound,
//! exhaustive enumeration — is exponential in the number of relations;
//! that is the whole point of the paper. A production front end therefore
//! needs a way to *bound* them: a [`Budget`] carries a wall-clock deadline,
//! an expansion (search-node) cap, a memory-estimate cap, and an external
//! [`CancelToken`], and the optimizers' `*_with_budget` entry points call
//! [`Budget::tick`] inside their hot loops. When any limit trips, the
//! search unwinds promptly with a structured [`BudgetExceeded`] error that
//! records which limit tripped and how much was consumed, so a driver can
//! degrade to a cheaper tier instead of hanging.
//!
//! Ticks are one atomic add on the happy path; the wall clock is consulted
//! only every [`CLOCK_CHECK_PERIOD`] ticks to keep the overhead negligible
//! relative to the big-number arithmetic inside each expansion.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many ticks pass between wall-clock (and cancel-token) checks.
/// A power of two so the check compiles to a mask test.
pub const CLOCK_CHECK_PERIOD: u64 = 256;

/// Which limit a budget ran out of.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The expansion counter reached its cap.
    Expansions,
    /// The estimated memory charge exceeded its cap.
    Memory,
    /// The external [`CancelToken`] was triggered.
    Cancelled,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetKind::Deadline => write!(f, "deadline"),
            BudgetKind::Expansions => write!(f, "expansions"),
            BudgetKind::Memory => write!(f, "memory"),
            BudgetKind::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Structured "the budget ran out" error: which limit tripped and how much
/// of the budget had been consumed by then.
#[derive(Clone, Debug)]
pub struct BudgetExceeded {
    /// The limit that tripped.
    pub kind: BudgetKind,
    /// Expansions performed before tripping.
    pub expansions: u64,
    /// Wall-clock time elapsed before tripping.
    pub elapsed: Duration,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "budget exceeded ({}) after {} expansions in {:.1?}",
            self.kind, self.expansions, self.elapsed
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Clonable handle for cancelling a running optimization from outside
/// (another thread, a signal handler, a service shutdown path).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-triggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A resource envelope for one optimization attempt.
///
/// Construct with [`Budget::unlimited`] and narrow with the builder
/// methods; pass by shared reference into a `*_with_budget` optimizer.
/// Interior state is atomic, so a `&Budget` can be observed from other
/// threads (e.g. a progress reporter) while the search runs.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    max_expansions: Option<u64>,
    max_memory_bytes: Option<u64>,
    cancel: Option<CancelToken>,
    started: Instant,
    expansions: AtomicU64,
    memory_bytes: AtomicU64,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget with no limits (ticks never fail).
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            max_expansions: None,
            max_memory_bytes: None,
            cancel: None,
            started: Instant::now(),
            expansions: AtomicU64::new(0),
            memory_bytes: AtomicU64::new(0),
        }
    }

    /// Caps wall-clock time, measured from this call.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.started = Instant::now();
        self.deadline = Some(self.started + timeout);
        self
    }

    /// Caps the number of search expansions.
    pub fn with_max_expansions(mut self, n: u64) -> Self {
        self.max_expansions = Some(n);
        self
    }

    /// Caps the estimated bytes charged via [`Budget::charge_memory`].
    pub fn with_max_memory_bytes(mut self, bytes: u64) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Attaches an external cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether any limit or token is configured (an unlimited budget lets
    /// wrappers skip the checked code path entirely).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_expansions.is_none()
            && self.max_memory_bytes.is_none()
            && self.cancel.is_none()
    }

    /// Expansions consumed so far.
    pub fn expansions_used(&self) -> u64 {
        // ordering: an observer-only progress counter; callers read it
        // for reporting after the search returns (same thread or after
        // join), never to synchronize with worker data.
        self.expansions.load(Ordering::Relaxed)
    }

    /// Estimated bytes charged so far.
    pub fn memory_charged(&self) -> u64 {
        // ordering: see `expansions_used` — reporting-only read.
        self.memory_bytes.load(Ordering::Relaxed)
    }

    /// Time elapsed since construction (or the [`Budget::with_timeout`]
    /// call).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Time left before the deadline; `None` when no deadline is set.
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    fn exceeded(&self, kind: BudgetKind) -> BudgetExceeded {
        let err =
            BudgetExceeded { kind, expansions: self.expansions_used(), elapsed: self.elapsed() };
        // Cold path: a budget trips at most once per optimizer attempt.
        if aqo_obs::enabled() {
            aqo_obs::counter(&format!("budget.exceeded.{kind}")).inc();
            aqo_obs::journal::event(
                "budget_exceeded",
                vec![
                    ("kind", format!("{kind}").into()),
                    ("expansions", err.expansions.into()),
                    ("elapsed_ms", (err.elapsed.as_secs_f64() * 1e3).into()),
                ],
            );
        }
        err
    }

    /// Records one search expansion and checks every limit. Call this in
    /// the innermost loop of an exponential search: the common case is one
    /// relaxed atomic add plus two compares.
    #[inline]
    pub fn tick(&self) -> Result<(), BudgetExceeded> {
        // ordering: the counter is the whole message — the cap compare
        // uses the fetch_add return value, which is exact under any
        // ordering; no other data is published with it.
        let count = self.expansions.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(cap) = self.max_expansions {
            if count > cap {
                return Err(self.exceeded(BudgetKind::Expansions));
            }
        }
        if count.is_multiple_of(CLOCK_CHECK_PERIOD) || count == 1 {
            self.check_clock_and_token()?;
        }
        Ok(())
    }

    /// As [`Budget::tick`], but records `n` expansions in a single atomic
    /// add. The parallel optimizers use this to charge one whole DP target
    /// (its `n` incoming transitions) per call, which keeps the shared
    /// counter from becoming a cache-line ping-pong between workers. The
    /// wall clock and cancel token are consulted whenever the batched count
    /// crosses a [`CLOCK_CHECK_PERIOD`] boundary (and on the first call),
    /// so deadline latency stays bounded by one period regardless of batch
    /// size.
    #[inline]
    pub fn tick_n(&self, n: u64) -> Result<(), BudgetExceeded> {
        if n == 0 {
            return Ok(());
        }
        // ordering: see `tick` — self-contained counter arithmetic.
        let count = self.expansions.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(cap) = self.max_expansions {
            if count > cap {
                return Err(self.exceeded(BudgetKind::Expansions));
            }
        }
        if count == n || count / CLOCK_CHECK_PERIOD != (count - n) / CLOCK_CHECK_PERIOD {
            self.check_clock_and_token()?;
        }
        Ok(())
    }

    /// Forces a deadline/cancellation check regardless of tick phase. Use
    /// before starting an expensive indivisible step (e.g. allocating the
    /// DP table).
    pub fn checkpoint(&self) -> Result<(), BudgetExceeded> {
        self.check_clock_and_token()
    }

    fn check_clock_and_token(&self) -> Result<(), BudgetExceeded> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(self.exceeded(BudgetKind::Cancelled));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.exceeded(BudgetKind::Deadline));
            }
        }
        Ok(())
    }

    /// Charges an estimated allocation against the memory cap. Optimizers
    /// call this *before* allocating their big tables, so an instance whose
    /// table alone would blow the cap fails fast instead of OOMing.
    pub fn charge_memory(&self, bytes: u64) -> Result<(), BudgetExceeded> {
        // ordering: see `tick` — self-contained counter arithmetic.
        let total = self.memory_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // Charges happen once per table/phase, never per expansion, so the
        // journal append is off the hot path.
        if aqo_obs::enabled() {
            aqo_obs::counter_handle!("budget.memory_charged_bytes").add(bytes);
            aqo_obs::journal::event(
                "budget_charge",
                vec![("bytes", bytes.into()), ("total", total.into())],
            );
        }
        if let Some(cap) = self.max_memory_bytes {
            if total > cap {
                return Err(self.exceeded(BudgetKind::Memory));
            }
        }
        Ok(())
    }

    /// Emits a `budget` journal event attributing the expansions and memory
    /// consumed so far to `label` (the driver calls this after each tier so
    /// the journal records where the shared budget went). No-op while
    /// collection is disabled.
    pub fn observe(&self, label: &str) {
        if aqo_obs::enabled() {
            aqo_obs::journal::event(
                "budget",
                vec![
                    ("label", label.to_string().into()),
                    ("expansions", self.expansions_used().into()),
                    ("memory_bytes", self.memory_charged().into()),
                    ("elapsed_ms", (self.elapsed().as_secs_f64() * 1e3).into()),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.tick().unwrap();
        }
        b.charge_memory(u64::MAX / 2).unwrap();
        assert!(b.is_unlimited());
        assert_eq!(b.expansions_used(), 10_000);
    }

    #[test]
    fn expansion_cap_trips_exactly() {
        let b = Budget::unlimited().with_max_expansions(5);
        for _ in 0..5 {
            b.tick().unwrap();
        }
        let err = b.tick().unwrap_err();
        assert_eq!(err.kind, BudgetKind::Expansions);
        assert_eq!(err.expansions, 6);
    }

    #[test]
    fn deadline_trips() {
        let b = Budget::unlimited().with_timeout(Duration::ZERO);
        // The first tick always consults the clock.
        let err = b.tick().unwrap_err();
        assert_eq!(err.kind, BudgetKind::Deadline);
    }

    #[test]
    fn memory_cap_trips() {
        let b = Budget::unlimited().with_max_memory_bytes(1000);
        b.charge_memory(600).unwrap();
        let err = b.charge_memory(600).unwrap_err();
        assert_eq!(err.kind, BudgetKind::Memory);
    }

    #[test]
    fn cancel_token_observed_from_clone() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel_token(token.clone());
        b.tick().unwrap();
        token.cancel();
        assert_eq!(b.checkpoint().unwrap_err().kind, BudgetKind::Cancelled);
    }

    #[test]
    fn batched_ticks_count_and_trip() {
        let b = Budget::unlimited().with_max_expansions(100);
        b.tick_n(60).unwrap();
        b.tick_n(40).unwrap();
        assert_eq!(b.expansions_used(), 100);
        let err = b.tick_n(1).unwrap_err();
        assert_eq!(err.kind, BudgetKind::Expansions);
        assert_eq!(err.expansions, 101);
    }

    #[test]
    fn batched_ticks_check_clock_on_period_boundaries() {
        let b = Budget::unlimited().with_timeout(Duration::ZERO);
        // The first batched tick always consults the clock.
        assert_eq!(b.tick_n(7).unwrap_err().kind, BudgetKind::Deadline);

        let b = Budget::unlimited();
        b.tick_n(CLOCK_CHECK_PERIOD - 1).unwrap();
        // Crossing the period boundary must consult the (expired) clock.
        let b2 = Budget::unlimited().with_timeout(Duration::ZERO);
        b2.tick_n(3).unwrap_err(); // first call checks
        let err = b2.tick_n(CLOCK_CHECK_PERIOD).unwrap_err();
        assert_eq!(err.kind, BudgetKind::Deadline);
    }

    #[test]
    fn error_display_names_the_kind() {
        let b = Budget::unlimited().with_max_expansions(0);
        let msg = b.tick().unwrap_err().to_string();
        assert!(msg.contains("expansions"), "{msg}");
    }
}
