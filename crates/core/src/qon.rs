//! **QO_N** — query optimization under nested-loops joins (paper §2.1).
//!
//! An instance is the five-tuple `(n, Q = (V, E), S, T, W)`. A plan is a
//! join sequence `Z` (permutation of `V`); its cost is
//!
//! ```text
//! C(Z) = Σ_{i=1}^{n−1} H_i(Z),   H_i(Z) = N(X) · min_{v_k ∈ X} w_{j,k}
//! ```
//!
//! where `X` is the length-`i` prefix of `Z`, `v_j` the vertex at position
//! `i+1`, and `N(X)` the estimated intermediate cardinality
//! `N(Xv_j) = N(X)·t_j·∏_{v_i ∈ X} s_{ij}` (§2.1.2).

use crate::{CostScalar, JoinSequence};
use aqo_bignum::{BigRational, BigUint};
use aqo_graph::{BitSet, Graph};

/// An instance of the QO_N problem.
#[derive(Clone, Debug)]
pub struct QoNInstance {
    graph: Graph,
    sizes: Vec<BigUint>,
    selectivity: crate::SelectivityMatrix,
    access_cost: crate::AccessCostMatrix,
}

/// Full cost accounting for one join sequence.
#[derive(Clone, Debug)]
pub struct QonCost<S> {
    /// `H_1 … H_{n−1}`: `per_join[i]` is the cost of join `J_{i+1}` (the
    /// join bringing in the vertex at 0-based position `i+1`).
    pub per_join: Vec<S>,
    /// `N_0 … N_{n−1}`: `intermediates[i]` is `N(prefix of length i+1)`;
    /// index `i` matches the paper's `N_i`.
    pub intermediates: Vec<S>,
    /// `C(Z) = Σ H_i`.
    pub total: S,
}

impl QoNInstance {
    /// Builds and validates an instance.
    ///
    /// Requirements enforced (all from §2.1.1):
    /// * `sizes.len() == graph.n()` and every `t_i ≥ 1`;
    /// * every explicit selectivity entry sits on a graph edge, with
    ///   `0 < s ≤ 1`; every graph edge has an explicit selectivity;
    /// * every graph edge `{j,k}` has both directional access costs, with
    ///   `t_j·s_{jk} ≤ w(j,k) ≤ t_j` (and symmetrically);
    /// * non-edges take the defaults `s = 1`, `w(j,k) = t_j`.
    pub fn new(
        graph: Graph,
        sizes: Vec<BigUint>,
        selectivity: crate::SelectivityMatrix,
        access_cost: crate::AccessCostMatrix,
    ) -> Self {
        let n = graph.n();
        assert_eq!(sizes.len(), n, "sizes length must equal vertex count");
        for (i, t) in sizes.iter().enumerate() {
            assert!(!t.is_zero(), "relation {i} has zero cardinality");
        }
        for (u, v) in graph.edges() {
            assert!(
                selectivity.has_entry(u, v),
                "edge ({u},{v}) lacks a selectivity entry"
            );
            for (j, k) in [(u, v), (v, u)] {
                let w = access_cost
                    .get(j, k)
                    .unwrap_or_else(|| panic!("edge ({j},{k}) lacks an access-cost entry"));
                let tj = BigRational::from(sizes[j].clone());
                let lower = &tj * &selectivity.get(j, k);
                let w_rat = BigRational::from(w.clone());
                assert!(w_rat >= lower, "w({j},{k}) below t_j*s_jk");
                assert!(w_rat <= tj, "w({j},{k}) above t_j");
            }
        }
        QoNInstance { graph, sizes, selectivity, access_cost }
    }

    /// Number of relations `n`.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The query graph `Q`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Relation cardinalities `T`.
    pub fn sizes(&self) -> &[BigUint] {
        &self.sizes
    }

    /// The selectivity matrix `S`.
    pub fn selectivity(&self) -> &crate::SelectivityMatrix {
        &self.selectivity
    }

    /// `w(j, k)` with the non-edge default `t_j`.
    pub fn w(&self, j: usize, k: usize) -> BigUint {
        self.access_cost.get_or(j, k, &self.sizes[j])
    }

    /// Evaluates the full cost accounting of `z` over scalar backend `S`.
    pub fn cost<S: CostScalar>(&self, z: &JoinSequence) -> QonCost<S> {
        let n = self.n();
        assert_eq!(z.len(), n, "sequence length mismatch");
        assert!(n >= 1, "empty instance");
        let mut prefix = BitSet::new(n);
        prefix.insert(z.at(0));
        let mut nx = S::from_count(&self.sizes[z.at(0)]);
        let mut intermediates = Vec::with_capacity(n);
        intermediates.push(nx.clone());
        let mut per_join = Vec::with_capacity(n.saturating_sub(1));
        let mut total = S::zero();
        for i in 1..n {
            let j = z.at(i);
            // min_{v_k ∈ X} w_{j,k}: stored entries on edges, t_j otherwise.
            let nbrs_in_prefix: Vec<usize> =
                self.graph.neighbors(j).iter().filter(|&k| prefix.contains(k)).collect();
            let mut w_min: Option<BigUint> = if nbrs_in_prefix.len() < i {
                // Some prefix member is a non-neighbour: default w = t_j.
                Some(self.sizes[j].clone())
            } else {
                None
            };
            for &k in &nbrs_in_prefix {
                let w = self.w(j, k);
                w_min = Some(match w_min {
                    None => w,
                    Some(cur) => cur.min(w),
                });
            }
            let w_min = w_min.expect("prefix nonempty");
            let h = nx.mul(&S::from_count(&w_min));
            total = total.add(&h);
            per_join.push(h);
            // N(Xv_j) = N(X)·t_j·∏ s_{jk}.
            nx = nx.mul(&S::from_count(&self.sizes[j]));
            for &k in &nbrs_in_prefix {
                nx = nx.mul(&S::from_ratio(&self.selectivity.get(j, k)));
            }
            intermediates.push(nx.clone());
            prefix.insert(j);
        }
        QonCost { per_join, intermediates, total }
    }

    /// `C(Z)` only.
    pub fn total_cost<S: CostScalar>(&self, z: &JoinSequence) -> S {
        self.cost::<S>(z).total
    }

    /// Back-edge counts `B_i` (paper §4): `back_edges(z)[i]` is the number of
    /// query-graph edges from the vertex at 0-based position `i` to earlier
    /// vertices. `B_1 = 0` by definition; the paper indexes positions from 1,
    /// so its `B_i` is `back_edges(z)[i−1]`.
    pub fn back_edges(&self, z: &JoinSequence) -> Vec<usize> {
        let n = self.n();
        let mut prefix = BitSet::new(n);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let v = z.at(i);
            out.push(self.graph.neighbors(v).intersection_len(&prefix));
            prefix.insert(v);
        }
        out
    }

    /// Prefix densities `D_i` (paper §4): `prefix_densities(z)[i]` is the
    /// number of query-graph edges among the first `i+1` vertices of `z`;
    /// the paper's `D_i` is `prefix_densities(z)[i−1]`.
    pub fn prefix_densities(&self, z: &JoinSequence) -> Vec<usize> {
        let mut acc = 0usize;
        self.back_edges(z)
            .into_iter()
            .map(|b| {
                acc += b;
                acc
            })
            .collect()
    }

    /// Whether any join `J_i` of `z` is a cartesian product (the incoming
    /// vertex has no query-graph edge into the prefix).
    pub fn has_cartesian_product(&self, z: &JoinSequence) -> bool {
        self.back_edges(z).iter().skip(1).any(|&b| b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessCostMatrix, SelectivityMatrix};
    use aqo_bignum::{BigInt, LogNum};

    /// Chain query R0 — R1 — R2 with hand-computable numbers.
    ///
    /// t = (10, 20, 30); s01 = 1/2, s12 = 1/10;
    /// w(0,1)=w(1,0)=5 (within [t·s, t]), w(1,2)=2, w(2,1)=3.
    fn chain() -> QoNInstance {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let sizes = vec![BigUint::from(10u64), BigUint::from(20u64), BigUint::from(30u64)];
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        s.set(1, 2, BigRational::new(BigInt::one(), BigUint::from(10u64)));
        let mut w = AccessCostMatrix::new();
        w.set(0, 1, BigUint::from(5u64));
        w.set(1, 0, BigUint::from(10u64));
        w.set(1, 2, BigUint::from(2u64));
        w.set(2, 1, BigUint::from(3u64));
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn hand_computed_cost_chain() {
        let inst = chain();
        // Z = (0, 1, 2):
        //   N(X)=10. J1 brings v1: w_min = w(1,0)=10 → H1 = 100.
        //   N = 10·20·(1/2) = 100. J2 brings v2: w_min = w(2,1)=3 → H2=300.
        //   N = 100·30·(1/10) = 300. Total = 400.
        let z = JoinSequence::new(vec![0, 1, 2]);
        let c: QonCost<BigRational> = inst.cost(&z);
        assert_eq!(c.per_join.len(), 2);
        assert_eq!(c.per_join[0], BigRational::from(100u64));
        assert_eq!(c.per_join[1], BigRational::from(300u64));
        assert_eq!(c.intermediates[1], BigRational::from(100u64));
        assert_eq!(c.intermediates[2], BigRational::from(300u64));
        assert_eq!(c.total, BigRational::from(400u64));
    }

    #[test]
    fn cartesian_product_uses_default_w() {
        let inst = chain();
        // Z = (0, 2, 1): joining v2 onto {v0} is a cartesian product, so
        // w_min = t_2 = 30 → H1 = 10·30 = 300. N = 10·30 = 300 (s=1).
        // J2 brings v1 adjacent to both: w_min = min(w(1,0), w(1,2)) = 2.
        // H2 = 300·2 = 600. Total 900.
        let z = JoinSequence::new(vec![0, 2, 1]);
        assert!(inst.has_cartesian_product(&z));
        let c: QonCost<BigRational> = inst.cost(&z);
        assert_eq!(c.per_join[0], BigRational::from(300u64));
        assert_eq!(c.per_join[1], BigRational::from(600u64));
        // Final intermediate: 300·20·(1/2)·(1/10) = 300.
        assert_eq!(c.intermediates[2], BigRational::from(300u64));
    }

    #[test]
    fn final_intermediate_is_sequence_invariant() {
        // N(full set) must not depend on the order.
        let inst = chain();
        let mut finals = Vec::new();
        for p in crate::join::permutations(3) {
            let z = JoinSequence::new(p);
            let c: QonCost<BigRational> = inst.cost(&z);
            finals.push(c.intermediates[2].clone());
        }
        assert!(finals.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn log_backend_agrees_with_exact() {
        let inst = chain();
        for p in crate::join::permutations(3) {
            let z = JoinSequence::new(p);
            let exact: BigRational = inst.total_cost(&z);
            let log: LogNum = inst.total_cost(&z);
            assert!(
                (CostScalar::log2(&exact) - CostScalar::log2(&log)).abs() < 1e-9,
                "mismatch on {z:?}"
            );
        }
    }

    #[test]
    fn back_edges_and_densities() {
        let inst = chain();
        let z = JoinSequence::new(vec![1, 0, 2]);
        assert_eq!(inst.back_edges(&z), vec![0, 1, 1]);
        assert_eq!(inst.prefix_densities(&z), vec![0, 1, 2]);
        assert!(!inst.has_cartesian_product(&z));
    }

    #[test]
    #[should_panic(expected = "lacks a selectivity entry")]
    fn missing_selectivity_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let sizes = vec![BigUint::from(2u64), BigUint::from(2u64)];
        let mut w = AccessCostMatrix::new();
        w.set(0, 1, BigUint::from(2u64));
        w.set(1, 0, BigUint::from(2u64));
        QoNInstance::new(g, sizes, SelectivityMatrix::new(), w);
    }

    #[test]
    #[should_panic(expected = "above t_j")]
    fn w_above_tj_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let sizes = vec![BigUint::from(2u64), BigUint::from(2u64)];
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        let mut w = AccessCostMatrix::new();
        w.set(0, 1, BigUint::from(3u64));
        w.set(1, 0, BigUint::from(2u64));
        QoNInstance::new(g, sizes, s, w);
    }

    #[test]
    #[should_panic(expected = "below t_j*s_jk")]
    fn w_below_lower_bound_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let sizes = vec![BigUint::from(8u64), BigUint::from(8u64)];
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        let mut w = AccessCostMatrix::new();
        w.set(0, 1, BigUint::from(3u64)); // below 8·(1/2) = 4
        w.set(1, 0, BigUint::from(4u64));
        QoNInstance::new(g, sizes, s, w);
    }
}
