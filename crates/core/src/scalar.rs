//! The scalar abstraction the cost models are generic over.

use aqo_bignum::{BigRational, BigUint, LogNum};

/// A non-negative cost scalar: exact ([`BigRational`]) or log-domain
/// ([`LogNum`]).
///
/// The reductions produce costs like `α^{Θ(n²)}` with `α = 4^{n^{1/δ}}`;
/// the exact backend certifies inequalities, the log backend keeps the
/// subset-DP optimizer fast. Implementations must preserve the semiring
/// structure and the ordering.
pub trait CostScalar: Clone + PartialOrd {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds an integer count (relation cardinality, page count).
    fn from_count(v: &BigUint) -> Self;
    /// Embeds an exact non-negative rational (selectivity, intermediate size).
    fn from_ratio(r: &BigRational) -> Self;
    /// Addition.
    fn add(&self, other: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Base-2 logarithm (`-inf` for zero) for reporting.
    fn log2(&self) -> f64;

    /// The smaller of two scalars (total order assumed on valid values).
    fn min_of(a: Self, b: Self) -> Self {
        if a <= b {
            a
        } else {
            b
        }
    }
}

impl CostScalar for BigRational {
    fn zero() -> Self {
        BigRational::zero()
    }
    fn one() -> Self {
        BigRational::one()
    }
    fn from_count(v: &BigUint) -> Self {
        BigRational::from(v.clone())
    }
    fn from_ratio(r: &BigRational) -> Self {
        assert!(!r.is_negative(), "cost scalars are non-negative");
        r.clone()
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn log2(&self) -> f64 {
        if self.is_zero() {
            f64::NEG_INFINITY
        } else {
            BigRational::log2(self)
        }
    }
}

impl CostScalar for LogNum {
    fn zero() -> Self {
        LogNum::ZERO
    }
    fn one() -> Self {
        LogNum::ONE
    }
    fn from_count(v: &BigUint) -> Self {
        if v.is_zero() {
            LogNum::ZERO
        } else {
            LogNum::from_log2(v.log2())
        }
    }
    fn from_ratio(r: &BigRational) -> Self {
        assert!(!r.is_negative(), "cost scalars are non-negative");
        if r.is_zero() {
            LogNum::ZERO
        } else {
            LogNum::from_log2(r.log2())
        }
    }
    fn add(&self, other: &Self) -> Self {
        *self + *other
    }
    fn mul(&self, other: &Self) -> Self {
        *self * *other
    }
    fn log2(&self) -> f64 {
        LogNum::log2(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_semiring<S: CostScalar + std::fmt::Debug>() {
        let two = S::from_count(&BigUint::from(2u64));
        let three = S::from_count(&BigUint::from(3u64));
        let five = two.add(&three);
        let six = two.mul(&three);
        assert!((five.log2() - 5f64.log2()).abs() < 1e-9);
        assert!((six.log2() - 6f64.log2()).abs() < 1e-9);
        assert!(S::zero() < S::one());
        assert_eq!(S::min_of(two.clone(), three.clone()).log2(), two.log2());
        assert!(S::zero().add(&two).log2() - two.log2() < 1e-12);
        assert!(S::one().mul(&three).log2() - three.log2() < 1e-12);
    }

    #[test]
    fn exact_backend_semiring() {
        check_semiring::<BigRational>();
    }

    #[test]
    fn log_backend_semiring() {
        check_semiring::<LogNum>();
    }

    #[test]
    fn backends_agree_on_ratio_embedding() {
        let r = BigRational::new(aqo_bignum::BigInt::from(3i64), BigUint::from(7u64));
        let exact = <BigRational as CostScalar>::from_ratio(&r);
        let log = <LogNum as CostScalar>::from_ratio(&r);
        assert!((CostScalar::log2(&exact) - CostScalar::log2(&log)).abs() < 1e-9);
    }
}
