//! Deterministic fault injection at named sites, workspace-wide.
//!
//! Callers place [`fail_point`] immediately before the operation the site
//! names: the driver before each optimizer tier (`qon::dp`, …), the serve
//! engine before request handling (`serve::request`), the serve transport
//! inside its read/write paths (`serve::net::*`), and the snapshot layer
//! around persistence I/O (`serve::storage::*`). A site does nothing
//! until *armed* with a [`FaultKind`] and a fire count; the first `count`
//! hits then trigger the fault and later hits pass — which makes an armed
//! `Error` fault *transient* and exercises retry paths, while a large
//! count makes an operation permanently unavailable.
//!
//! Arming is either programmatic ([`arm`], for tests and the chaos
//! campaign runner) or via the `AQO_FAULTS` environment variable
//! ([`load_env`], wired into the CLI):
//!
//! ```text
//! AQO_FAULTS="qon::dp=panic,qon::bnb=err*2,qon::ikkbz=delay:50"
//! ```
//!
//! Entries are comma-separated `site=kind[*count]` with `kind` one of
//! `panic`, `err`, or `delay:<millis>`; `count` defaults to 1. Everything is
//! countdown-based and keyed on the site name — no randomness — so a given
//! configuration always fails the same attempts in the same way.
//!
//! The full set of sites the workspace defines is enumerable through
//! [`CATALOG`]: `aqo chaos` sweeps every cataloged site against every
//! fault kind (docs/ROBUSTNESS.md). A new `fail_point` call therefore
//! comes with a new catalog row, so the chaos campaign covers it.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed fail point does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic (every caller isolates it with `catch_unwind` and degrades).
    Panic,
    /// Return a spurious [`InjectedFault`] error (transient: retryable).
    Error,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
}

impl FaultKind {
    /// Stable name used in `AQO_FAULTS` specs, journal events, and
    /// `CHAOS.json` cells.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Error => "err",
            FaultKind::Delay(_) => "delay",
        }
    }
}

/// The error produced by an armed [`FaultKind::Error`] site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at `{}`", self.site)
    }
}

impl std::error::Error for InjectedFault {}

/// One row of the workspace fail-point catalog: where the site sits and
/// what armed faults simulate there.
#[derive(Clone, Copy, Debug)]
pub struct SiteInfo {
    /// The site name passed to [`fail_point`].
    pub site: &'static str,
    /// The subsystem that owns the site (`driver`, `serve`, `storage`).
    pub layer: &'static str,
    /// What an injected fault means at this site.
    pub description: &'static str,
}

/// Every fail point the workspace defines, in sweep order. The chaos
/// campaign (`aqo chaos`) enumerates this table; keep it in sync with the
/// `fail_point` call sites (each row names its host module).
pub const CATALOG: &[SiteInfo] = &[
    SiteInfo {
        site: "qon::dp",
        layer: "driver",
        description: "before the QO_N subset-DP tier (aqo_driver::drive)",
    },
    SiteInfo {
        site: "qon::bnb",
        layer: "driver",
        description: "before the QO_N branch-and-bound tier (aqo_driver::drive)",
    },
    SiteInfo {
        site: "qon::ikkbz",
        layer: "driver",
        description: "before the QO_N IKKBZ tier (aqo_driver::drive)",
    },
    SiteInfo {
        site: "qon::greedy",
        layer: "driver",
        description: "before the QO_N greedy tier (aqo_driver::drive)",
    },
    SiteInfo {
        site: "qoh::exhaustive",
        layer: "driver",
        description: "before the QO_H exhaustive tier (aqo_driver::drive)",
    },
    SiteInfo {
        site: "qoh::greedy",
        layer: "driver",
        description: "before the QO_H greedy tier (aqo_driver::drive)",
    },
    SiteInfo {
        site: "serve::request",
        layer: "serve",
        description: "inside request handling, under catch_unwind (serve::engine)",
    },
    SiteInfo {
        site: "serve::net::torn_write",
        layer: "serve",
        description: "err tears a reply mid-frame and drops the connection (serve::server)",
    },
    SiteInfo {
        site: "serve::net::partial_frame",
        layer: "serve",
        description: "err writes a newline-less reply prefix, leaving the frame open (serve::server)",
    },
    SiteInfo {
        site: "serve::net::conn_drop",
        layer: "serve",
        description: "err drops the connection before the reply bytes (serve::server)",
    },
    SiteInfo {
        site: "serve::net::stalled_read",
        layer: "serve",
        description: "delay stalls the connection read loop; err aborts the read (serve::server)",
    },
    SiteInfo {
        site: "serve::net::oversized_line",
        layer: "serve",
        description: "err forces the oversized-line eviction path on the next frame (serve::server)",
    },
    SiteInfo {
        site: "serve::storage::snapshot_write",
        layer: "storage",
        description: "err tears the snapshot file mid-write, simulating a crash (serve::snapshot)",
    },
    SiteInfo {
        site: "serve::storage::snapshot_load",
        layer: "storage",
        description: "err discredits the snapshot checksum, forcing per-line salvage (serve::snapshot)",
    },
];

#[derive(Clone, Debug)]
struct Spec {
    kind: FaultKind,
    /// Fires while positive, then the site passes.
    remaining: u64,
    /// Total hits observed at this site since it was armed.
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, Spec>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Spec>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<String, Spec>> {
    // A panic while holding the lock is a legitimate outcome here (that is
    // what FaultKind::Panic does between hits), so ignore poisoning.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms `site` to fire `kind` on its next `count` hits.
pub fn arm(site: &str, kind: FaultKind, count: u64) {
    lock().insert(site.to_string(), Spec { kind, remaining: count, hits: 0 });
}

/// Disarms every site and forgets all hit counts.
pub fn clear() {
    lock().clear();
}

/// Number of [`fail_point`] hits at `site` since it was armed (armed sites
/// keep counting after their fault budget is spent; unarmed sites are not
/// tracked).
pub fn hits(site: &str) -> u64 {
    lock().get(site).map_or(0, |s| s.hits)
}

/// Sites currently armed (with fires left or spent), in sorted order.
pub fn armed_sites() -> Vec<String> {
    let mut sites: Vec<String> = lock().keys().cloned().collect();
    sites.sort();
    sites
}

/// The fail point itself: a no-op unless `site` is armed with fires left.
///
/// Every hit at an *armed* site increments the `faults.hit.<site>` counter;
/// hits that actually fire additionally increment `faults.injected.<site>`
/// and journal a `fault_injected` event. Both happen after the registry
/// lock is released and before the fault takes effect, so the metrics are
/// visible even when the fault panics.
pub fn fail_point(site: &str) -> Result<(), InjectedFault> {
    let action = {
        let mut reg = lock();
        let Some(spec) = reg.get_mut(site) else { return Ok(()) };
        spec.hits += 1;
        if spec.remaining == 0 {
            None
        } else {
            spec.remaining -= 1;
            Some(spec.kind)
        }
    };
    if aqo_obs::enabled() {
        aqo_obs::counter(&format!("faults.hit.{site}")).inc();
    }
    let Some(action) = action else { return Ok(()) };
    if aqo_obs::enabled() {
        aqo_obs::counter(&format!("faults.injected.{site}")).inc();
        aqo_obs::journal::event(
            "fault_injected",
            vec![("site", site.into()), ("kind", action.name().into())],
        );
    }
    match action {
        // analyze:allow(no-unwrap-in-lib) -- the documented effect of an
        // armed Panic fault; every fail_point caller wraps in catch_unwind.
        FaultKind::Panic => panic!("injected panic at fail point `{site}`"),
        FaultKind::Error => Err(InjectedFault { site: site.to_string() }),
        FaultKind::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

/// Parses and arms a `site=kind[*count],...` spec; returns the number of
/// sites armed.
pub fn load_spec(spec: &str) -> Result<usize, String> {
    let mut armed = 0usize;
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, rest) =
            entry.split_once('=').ok_or_else(|| format!("fault entry `{entry}`: missing `=`"))?;
        let (kind_str, count) = match rest.split_once('*') {
            Some((k, c)) => {
                let c: u64 = c
                    .parse()
                    .map_err(|_| format!("fault entry `{entry}`: bad count `{c}`"))?;
                (k, c)
            }
            None => (rest, 1),
        };
        let kind = match kind_str.split_once(':') {
            None if kind_str == "panic" => FaultKind::Panic,
            None if kind_str == "err" => FaultKind::Error,
            Some(("delay", ms)) => {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("fault entry `{entry}`: bad delay `{ms}`"))?;
                FaultKind::Delay(Duration::from_millis(ms))
            }
            _ => return Err(format!("fault entry `{entry}`: unknown kind `{kind_str}`")),
        };
        arm(site, kind, count);
        armed += 1;
    }
    Ok(armed)
}

/// Arms sites from the `AQO_FAULTS` environment variable (absent: no-op).
pub fn load_env() -> Result<usize, String> {
    match std::env::var("AQO_FAULTS") {
        Ok(spec) => load_spec(&spec),
        Err(_) => Ok(0),
    }
}

/// Runs `f` with this thread's panic messages suppressed: fault-tolerant
/// layers *expect* panics (that is what `FaultKind::Panic` and tier
/// degradation are for), and a backtrace per swallowed panic would drown
/// real output. The hook is installed once and delegates to the previous
/// hook for every other thread, so genuine panics elsewhere still print.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::cell::Cell;
    thread_local! {
        static SUPPRESS: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL: OnceLock<()> = OnceLock::new();
    INSTALL.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS.with(Cell::get) {
                prev(info);
            }
        }));
    });
    SUPPRESS.with(|s| s.set(true));
    let r = f();
    SUPPRESS.with(|s| s.set(false));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_is_noop() {
        assert_eq!(fail_point("faults-test::unarmed"), Ok(()));
        assert_eq!(hits("faults-test::unarmed"), 0);
    }

    #[test]
    fn error_fault_is_transient() {
        let site = "faults-test::transient";
        arm(site, FaultKind::Error, 2);
        assert!(fail_point(site).is_err());
        assert!(fail_point(site).is_err());
        assert!(fail_point(site).is_ok());
        assert_eq!(hits(site), 3);
    }

    #[test]
    fn panic_fault_panics() {
        let site = "faults-test::panic";
        arm(site, FaultKind::Panic, 1);
        let caught = with_quiet_panics(|| std::panic::catch_unwind(|| fail_point(site)));
        assert!(caught.is_err());
        assert!(fail_point(site).is_ok(), "single-shot: second hit passes");
    }

    #[test]
    fn spec_parsing_round_trips() {
        assert_eq!(
            load_spec("faults-test::a=panic, faults-test::b=err*3,faults-test::c=delay:5"),
            Ok(3)
        );
        assert!(fail_point("faults-test::b").is_err());
        assert!(fail_point("faults-test::c").is_ok()); // delays then passes

        assert!(load_spec("nosign").is_err());
        assert!(load_spec("s=warble").is_err());
        assert!(load_spec("s=err*many").is_err());
        assert!(load_spec("s=delay:soon").is_err());
        assert_eq!(load_spec(""), Ok(0));
    }

    #[test]
    fn catalog_names_are_unique_and_armable() {
        let mut names: Vec<&str> = CATALOG.iter().map(|s| s.site).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate catalog site");
        assert!(CATALOG.len() >= 14, "catalog shrank below the chaos sweep floor");
    }
}
