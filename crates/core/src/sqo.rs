//! **SQO−CP** — star query optimization without cartesian products
//! (paper Appendix A).
//!
//! A star query joins a central relation `R_0` with satellites
//! `R_1 … R_m`; the only predicates are between `R_0` and each `R_i`. Joins
//! may be computed by nested loops or by sort-merge, and cartesian products
//! are forbidden, so a feasible sequence has `R_0` in the first or second
//! position. The cost of a feasible sequence is the inductive function `D`
//! of §A.2:
//!
//! ```text
//! D(φ, R_0 M_i Y)   = b_0 + w_i·n_0 + D(R_0 M_i, Y)          (M = N)
//! D(φ, R_r M_0 Y)   = b_r + w_{0,r}·n_r + D(R_r M_0, Y)      (M = N, r ≠ 0)
//! D(φ, R_r S_i Y)   = C_sm(R_r, R_i) + D(R_r S_i, Y) = A_r + A_i + …
//! D(W, S_i Y)       = b(W)·(k_s − 1) + A_i + D(W S_i, Y)
//! D(W, N_i Y)       = n(W)·w_i + D(W N_i, Y)
//! D(W, φ)           = 0
//! ```
//!
//! with `b(X) = n(X)` once `X` holds at least two relations (output tuples
//! occupy one page each) and
//! `n(X) = n_0 · ∏_{i ∈ X∖{0}} n_i·s_i`.

use aqo_bignum::{BigRational, BigUint};
use std::fmt;

/// Join method for one position of a star plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinMethod {
    /// Nested-loops join (`N_i`).
    NestedLoops,
    /// Two-pass sort-merge join (`S_i`).
    SortMerge,
}

/// An instance of SQO−CP: `m + 1` relations with `R_0` central.
#[derive(Clone, Debug)]
pub struct SqoCpInstance {
    ks: u64,
    tuples: Vec<BigUint>,
    pages: Vec<BigUint>,
    sort_cost: Vec<BigUint>,
    selectivity: Vec<BigRational>,
    w: Vec<BigUint>,
    w0: Vec<BigUint>,
}

impl SqoCpInstance {
    /// Builds and validates an instance.
    ///
    /// * `ks` — passes constant of the 2-pass sort (`sort-cost = b·k_s` from
    ///   disk, `b·(k_s − 1)` when streaming);
    /// * `tuples[i] = n_i`, `pages[i] = b_i`, `sort_cost[i] = A_i` for
    ///   `0 ≤ i ≤ m` — all vectors of length `m + 1`;
    /// * `selectivity[i] = s_i` (predicate `R_0 ⋈ R_i`), `w[i] = w_i`,
    ///   `w0[i] = w_{0,i}` for `1 ≤ i ≤ m` — vectors of length `m + 1` whose
    ///   index-0 slot is ignored (kept for direct paper-style indexing).
    pub fn new(
        ks: u64,
        tuples: Vec<BigUint>,
        pages: Vec<BigUint>,
        sort_cost: Vec<BigUint>,
        selectivity: Vec<BigRational>,
        w: Vec<BigUint>,
        w0: Vec<BigUint>,
    ) -> Self {
        let len = tuples.len();
        assert!(len >= 2, "a star query needs the centre and one satellite");
        assert!(ks >= 2, "a 2-pass sort reads+writes at least twice");
        assert_eq!(pages.len(), len, "pages length mismatch");
        assert_eq!(sort_cost.len(), len, "sort_cost length mismatch");
        assert_eq!(selectivity.len(), len, "selectivity length mismatch");
        assert_eq!(w.len(), len, "w length mismatch");
        assert_eq!(w0.len(), len, "w0 length mismatch");
        for (i, s) in selectivity.iter().enumerate().skip(1) {
            assert!(
                s.is_positive() && *s <= BigRational::one(),
                "selectivity s_{i} out of (0,1]"
            );
        }
        SqoCpInstance { ks, tuples, pages, sort_cost, selectivity, w, w0 }
    }

    /// Number of satellites `m`.
    pub fn m(&self) -> usize {
        self.tuples.len() - 1
    }

    /// The sort-pass constant `k_s`.
    pub fn ks(&self) -> u64 {
        self.ks
    }

    /// `n_i`.
    pub fn tuples(&self, i: usize) -> &BigUint {
        &self.tuples[i]
    }

    /// `b_i`.
    pub fn pages(&self, i: usize) -> &BigUint {
        &self.pages[i]
    }

    /// `A_i` (cost of sorting the disk-resident `R_i`).
    pub fn sort_cost(&self, i: usize) -> &BigUint {
        &self.sort_cost[i]
    }

    /// `s_i` for a satellite `i ≥ 1`.
    pub fn selectivity(&self, i: usize) -> &BigRational {
        assert!(i >= 1, "selectivity indexed from 1");
        &self.selectivity[i]
    }

    /// `w_i` for a satellite `i ≥ 1`.
    pub fn w(&self, i: usize) -> &BigUint {
        assert!(i >= 1);
        &self.w[i]
    }

    /// `w_{0,i}` for a satellite `i ≥ 1`.
    pub fn w0(&self, i: usize) -> &BigUint {
        assert!(i >= 1);
        &self.w0[i]
    }

    /// `n(X)` for the relation set containing `R_0` and the satellites in
    /// `sats`: `n_0 · ∏ n_i s_i`.
    pub fn intermediate_tuples(&self, sats: &[usize]) -> BigRational {
        let mut nx = BigRational::from(self.tuples[0].clone());
        for &i in sats {
            assert!(i >= 1, "satellite indices start at 1");
            nx = nx * BigRational::from(self.tuples[i].clone()) * &self.selectivity[i];
        }
        nx
    }
}

/// A star plan: a feasible join order plus a method per join.
#[derive(Clone, PartialEq, Eq)]
pub struct StarPlan {
    /// Permutation of `0..=m`; `R_0` must be at index 0 or 1.
    pub order: Vec<usize>,
    /// `methods[p]` is the method of the join at position `p + 1` (the join
    /// that brings in `order[p + 1]`); length `m`.
    pub methods: Vec<JoinMethod>,
}

impl fmt::Debug for StarPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StarPlan(order={:?}, methods={:?})", self.order, self.methods)
    }
}

impl StarPlan {
    /// Validates shape and the no-cartesian-product constraint.
    pub fn new(order: Vec<usize>, methods: Vec<JoinMethod>) -> Self {
        let n = order.len();
        assert!(n >= 2, "plan needs at least two relations");
        assert_eq!(methods.len(), n - 1, "one method per join");
        let mut seen = vec![false; n];
        for &v in &order {
            assert!(v < n, "relation {v} out of range");
            assert!(!seen[v], "relation {v} repeated");
            seen[v] = true;
        }
        assert!(order[0] == 0 || order[1] == 0, "cartesian product: R_0 must come first or second");
        StarPlan { order, methods }
    }
}

impl SqoCpInstance {
    /// `C(Z)`: the cost of a feasible plan under the inductive `D` of §A.2.
    pub fn plan_cost(&self, plan: &StarPlan) -> BigRational {
        let mlen = self.m() + 1;
        assert_eq!(plan.order.len(), mlen, "plan relation count mismatch");
        let r = plan.order[0];
        let t = plan.order[1];
        // First join: D(φ, R_r M_t Y).
        let mut cost = match plan.methods[0] {
            JoinMethod::NestedLoops => {
                if r == 0 {
                    // b_0 + w_t·n_0
                    BigRational::from(self.pages[0].clone())
                        + BigRational::from(self.w[t].clone())
                            * BigRational::from(self.tuples[0].clone())
                } else {
                    // b_r + w_{0,r}·n_r   (t == 0 by feasibility)
                    debug_assert_eq!(t, 0);
                    BigRational::from(self.pages[r].clone())
                        + BigRational::from(self.w0[r].clone())
                            * BigRational::from(self.tuples[r].clone())
                }
            }
            JoinMethod::SortMerge => {
                // C_sm(R_r, R_t) = A_r + A_t.
                BigRational::from(self.sort_cost[r].clone())
                    + BigRational::from(self.sort_cost[t].clone())
            }
        };
        // Running intermediate n(W) after the first join.
        let sat_of_pair = if r == 0 { t } else { r };
        let mut nx = self.intermediate_tuples(&[sat_of_pair]);
        let ks_minus_1 = BigRational::from(self.ks - 1);
        for p in 2..mlen {
            let i = plan.order[p];
            debug_assert!(i >= 1, "R_0 already joined");
            match plan.methods[p - 1] {
                JoinMethod::NestedLoops => {
                    // n(W)·w_i
                    cost = cost + &nx * &BigRational::from(self.w[i].clone());
                }
                JoinMethod::SortMerge => {
                    // b(W)(k_s−1) + A_i, with b(W) = n(W).
                    cost = cost
                        + &nx * &ks_minus_1
                        + BigRational::from(self.sort_cost[i].clone());
                }
            }
            nx = nx
                * BigRational::from(self.tuples[i].clone())
                * &self.selectivity[i];
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_bignum::BigInt;

    /// Hand-checkable instance: m = 2 satellites.
    ///
    /// k_s = 4. n = (10, 6, 4); b = (10, 6, 4); A_i = b_i·k_s = (40, 24, 16).
    /// s_1 = 1/2, s_2 = 1/4. w = (−, 3, 2); w0 = (−, 5, 5).
    fn tiny() -> SqoCpInstance {
        SqoCpInstance::new(
            4,
            vec![BigUint::from(10u64), BigUint::from(6u64), BigUint::from(4u64)],
            vec![BigUint::from(10u64), BigUint::from(6u64), BigUint::from(4u64)],
            vec![BigUint::from(40u64), BigUint::from(24u64), BigUint::from(16u64)],
            vec![
                BigRational::one(), // unused slot 0
                BigRational::new(BigInt::one(), BigUint::from(2u64)),
                BigRational::new(BigInt::one(), BigUint::from(4u64)),
            ],
            vec![BigUint::zero(), BigUint::from(3u64), BigUint::from(2u64)],
            vec![BigUint::zero(), BigUint::from(5u64), BigUint::from(5u64)],
        )
    }

    #[test]
    fn intermediate_tuples_product() {
        let inst = tiny();
        // n({0}) = 10; n({0,1}) = 10·6/2 = 30; n({0,1,2}) = 30·4/4 = 30.
        assert_eq!(inst.intermediate_tuples(&[]), BigRational::from(10u64));
        assert_eq!(inst.intermediate_tuples(&[1]), BigRational::from(30u64));
        assert_eq!(inst.intermediate_tuples(&[1, 2]), BigRational::from(30u64));
    }

    #[test]
    fn nested_loops_all_the_way() {
        let inst = tiny();
        // Z = R0 N_1 N_2:
        //   b_0 + w_1·n_0 = 10 + 3·10 = 40
        //   n({0,1})·w_2 = 30·2 = 60   → total 100.
        let plan = StarPlan::new(
            vec![0, 1, 2],
            vec![JoinMethod::NestedLoops, JoinMethod::NestedLoops],
        );
        assert_eq!(inst.plan_cost(&plan), BigRational::from(100u64));
    }

    #[test]
    fn satellite_first_nested_loops() {
        let inst = tiny();
        // Z = R1 N_0 N_2:
        //   b_1 + w_{0,1}·n_1 = 6 + 5·6 = 36
        //   n({0,1})·w_2 = 30·2 = 60  → total 96.
        let plan = StarPlan::new(
            vec![1, 0, 2],
            vec![JoinMethod::NestedLoops, JoinMethod::NestedLoops],
        );
        assert_eq!(inst.plan_cost(&plan), BigRational::from(96u64));
    }

    #[test]
    fn sort_merge_costs() {
        let inst = tiny();
        // Z = R0 S_1 S_2:
        //   C_sm(R0, R1) = A_0 + A_1 = 64
        //   b(W)(k_s−1) + A_2 = 30·3 + 16 = 106  → total 170.
        let plan =
            StarPlan::new(vec![0, 1, 2], vec![JoinMethod::SortMerge, JoinMethod::SortMerge]);
        assert_eq!(inst.plan_cost(&plan), BigRational::from(170u64));
    }

    #[test]
    fn mixed_methods() {
        let inst = tiny();
        // Z = R0 S_2 N_1:
        //   C_sm(R0, R2) = 40 + 16 = 56
        //   n({0,2})·w_1 = 10·w_1 = 30  (n({0,2}) = 10·4/4 = 10) → 86.
        let plan =
            StarPlan::new(vec![0, 2, 1], vec![JoinMethod::SortMerge, JoinMethod::NestedLoops]);
        assert_eq!(inst.plan_cost(&plan), BigRational::from(86u64));
    }

    #[test]
    #[should_panic(expected = "cartesian product")]
    fn satellites_first_two_rejected() {
        StarPlan::new(vec![1, 2, 0], vec![JoinMethod::NestedLoops, JoinMethod::NestedLoops]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn duplicate_relation_rejected() {
        StarPlan::new(vec![0, 1, 1], vec![JoinMethod::NestedLoops, JoinMethod::NestedLoops]);
    }
}
