//! Property tests for the cost models: backend agreement, sequence
//! invariants, and QO_H allocation optimality against random allocations.

use aqo_bignum::{BigInt, BigRational, BigUint, LogNum};
use aqo_core::qoh::{PipelineDecomposition, QoHInstance};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, CostScalar, JoinSequence, SelectivityMatrix};
use aqo_graph::Graph;
use proptest::prelude::*;

/// A random connected QO_N instance on `n` vertices, sizes in [2, 64],
/// selectivities 1/d with d in [2, 16], w set to the lower bound t·s
/// (always valid).
fn qon_instance() -> impl Strategy<Value = (QoNInstance, u64)> {
    (3usize..7, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut g = Graph::new(n);
        // Random spanning tree + extra edges.
        for v in 1..n {
            let u = (next() % v as u64) as usize;
            g.add_edge(u, v);
        }
        for _ in 0..n {
            let u = (next() % n as u64) as usize;
            let v = (next() % n as u64) as usize;
            if u != v {
                g.add_edge(u, v);
            }
        }
        let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(2 + next() % 63)).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let d = 2 + next() % 15;
            let sel = BigRational::new(BigInt::one(), BigUint::from(d));
            s.set(u, v, sel.clone());
            // w(j,k) = ceil(t_j·s) is within [t_j·s, t_j].
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        (QoNInstance::new(g, sizes, s, w), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qon_backends_agree((inst, seed) in qon_instance()) {
        let n = inst.n();
        let mut order: Vec<usize> = (0..n).collect();
        // Pseudo-shuffle by seed.
        for i in (1..n).rev() {
            let j = (seed.wrapping_mul(i as u64 + 7) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let z = JoinSequence::new(order);
        let exact: BigRational = inst.total_cost(&z);
        let log: LogNum = inst.total_cost(&z);
        let d = (CostScalar::log2(&exact) - CostScalar::log2(&log)).abs();
        prop_assert!(d < 1e-6, "log2 mismatch {d}");
    }

    #[test]
    fn qon_final_intermediate_order_invariant((inst, _) in qon_instance()) {
        let n = inst.n();
        let mut finals: Vec<BigRational> = Vec::new();
        for perm in aqo_core::join::permutations(n).take(24) {
            let z = JoinSequence::new(perm);
            let c = inst.cost::<BigRational>(&z);
            finals.push(c.intermediates[n - 1].clone());
        }
        prop_assert!(finals.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn qon_cost_positive_and_total_is_sum((inst, _) in qon_instance()) {
        let z = JoinSequence::identity(inst.n());
        let c = inst.cost::<BigRational>(&z);
        let sum: BigRational = c.per_join.iter().cloned().sum();
        prop_assert_eq!(&sum, &c.total);
        prop_assert!(c.total.is_positive());
        prop_assert_eq!(c.per_join.len(), inst.n() - 1);
        prop_assert_eq!(c.intermediates.len(), inst.n());
    }

    #[test]
    fn qon_densities_match_back_edges((inst, _) in qon_instance()) {
        let z = JoinSequence::identity(inst.n());
        let b = inst.back_edges(&z);
        let d = inst.prefix_densities(&z);
        let mut acc = 0;
        for i in 0..b.len() {
            acc += b[i];
            prop_assert_eq!(d[i], acc);
        }
        // Full-sequence density = |E|.
        prop_assert_eq!(*d.last().unwrap(), inst.graph().m());
    }

    #[test]
    fn qoh_optimal_allocation_dominates_random(seed in any::<u64>(), n in 3usize..6) {
        // Path query with uniform sizes; compare the closed-form optimal
        // allocation against random feasible allocations.
        let mut g = Graph::new(n);
        let mut s = SelectivityMatrix::new();
        for v in 1..n {
            g.add_edge(v - 1, v);
            s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(4u64)));
        }
        let sizes = vec![BigUint::from(256u64); n];
        // Memory: enough for hjmin everywhere plus some slack.
        let m_total = BigUint::from(16 * n as u64 + seed % 200);
        let inst = QoHInstance::new(g, sizes, s, m_total.clone());
        let z = JoinSequence::identity(n);
        let inter: Vec<BigRational> = inst.intermediates(&z);
        let frag = (1usize, n - 1);
        let opt_alloc = match inst.optimal_allocation(&z, frag, &inter) {
            Some(a) => a,
            None => return Ok(()), // infeasible budget; nothing to compare
        };
        let opt = inst.fragment_cost(&z, frag, &opt_alloc, &inter).unwrap();
        // Random feasible allocation: hjmin each + random split of leftover.
        let hj = inst.hjmin(&BigUint::from(256u64));
        let mandatory: BigUint = (1..n).fold(BigUint::zero(), |acc, _| acc + hj.clone());
        let leftover = m_total.checked_sub(&mandatory).unwrap_or_default();
        let mut alloc: Vec<BigRational> =
            (1..n).map(|_| BigRational::from(hj.clone())).collect();
        // Give all the leftover to a pseudo-random single join.
        let idx = (seed % (n as u64 - 1)) as usize;
        alloc[idx] = &alloc[idx] + &BigRational::from(leftover);
        if let Some(rand_cost) = inst.fragment_cost(&z, frag, &alloc, &inter) {
            prop_assert!(opt <= rand_cost, "optimal {} > random {}", opt, rand_cost);
        }
    }

    #[test]
    fn qoh_more_memory_never_hurts(extra in 0u64..500, n in 3usize..6) {
        let mut g = Graph::new(n);
        let mut s = SelectivityMatrix::new();
        for v in 1..n {
            g.add_edge(v - 1, v);
            s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(8u64)));
        }
        let sizes = vec![BigUint::from(400u64); n];
        let base_mem = BigUint::from(20 * (n as u64));
        let small = QoHInstance::new(g.clone(), sizes.clone(), s.clone(), base_mem.clone());
        let big = QoHInstance::new(g, sizes, s, base_mem + BigUint::from(extra));
        let z = JoinSequence::identity(n);
        let d = PipelineDecomposition::single_pipeline(n);
        match (small.plan_cost_optimal_alloc(&z, &d), big.plan_cost_optimal_alloc(&z, &d)) {
            (Some(cs), Some(cb)) => prop_assert!(cb <= cs, "more memory increased cost"),
            (None, _) => {}
            (Some(_), None) => prop_assert!(false, "more memory made the plan infeasible"),
        }
    }

    #[test]
    fn qoh_h_is_monotone_decreasing_in_memory(bs in 16u64..4096, br in 1u64..100_000, steps in 2usize..8) {
        // h(m, b_R, b_S) never increases as a join gets more memory.
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        let inst = QoHInstance::new(
            g,
            vec![BigUint::from(br.max(1)), BigUint::from(bs)],
            s,
            BigUint::from(bs + 1),
        );
        let hj = inst.hjmin(&BigUint::from(bs));
        let hj_v = hj.to_u64().unwrap();
        let br_s = BigRational::from(br);
        let mut prev: Option<BigRational> = None;
        for i in 0..steps {
            // Sweep m from hjmin to beyond bs.
            let m = hj_v + (bs + 10 - hj_v) * i as u64 / (steps as u64 - 1);
            let h = inst.h(&BigRational::from(m), &br_s, &BigUint::from(bs))
                .expect("m >= hjmin");
            if let Some(p) = prev {
                prop_assert!(h <= p, "h increased with memory");
            }
            prev = Some(h);
        }
    }

    #[test]
    fn qoh_g_bounds(bs in 4u64..10_000, m_frac in 0.0f64..1.5) {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        let inst = QoHInstance::new(
            g,
            vec![BigUint::from(bs); 2],
            s,
            BigUint::from(bs),
        );
        let hj = inst.hjmin(&BigUint::from(bs)).to_u64().unwrap();
        let m = hj + ((bs as f64 * m_frac) as u64);
        match inst.g(&BigRational::from(m), &BigUint::from(bs)) {
            Some(gv) => {
                prop_assert!(gv >= BigRational::zero());
                prop_assert!(gv <= BigRational::one());
            }
            None => prop_assert!(m < hj, "g undefined only below hjmin"),
        }
    }

    #[test]
    fn qoh_decomposition_cost_additive(n in 3usize..6) {
        // Cost of singleton fragments equals the sum of per-fragment costs
        // computed independently.
        let mut g = Graph::new(n);
        let mut s = SelectivityMatrix::new();
        for v in 1..n {
            g.add_edge(v - 1, v);
            s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        }
        let sizes = vec![BigUint::from(64u64); n];
        let inst = QoHInstance::new(g, sizes, s, BigUint::from(1000u64));
        let z = JoinSequence::identity(n);
        let inter: Vec<BigRational> = inst.intermediates(&z);
        let total = inst
            .plan_cost_optimal_alloc(&z, &PipelineDecomposition::singletons(n))
            .unwrap();
        let mut sum = BigRational::zero();
        for j in 1..n {
            let alloc = inst.optimal_allocation(&z, (j, j), &inter).unwrap();
            sum = &sum + &inst.fragment_cost(&z, (j, j), &alloc, &inter).unwrap();
        }
        prop_assert_eq!(total, sum);
    }
}
