//! Robustness and round-trip property tests for the text instance format.

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qon::QoNInstance;
use aqo_core::{textio, AccessCostMatrix, JoinSequence, SelectivityMatrix};
use aqo_graph::Graph;
use proptest::prelude::*;

fn instance() -> impl Strategy<Value = QoNInstance> {
    (2usize..8, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge((next() % v as u64) as usize, v);
        }
        let sizes: Vec<BigUint> =
            (0..n).map(|_| BigUint::from(2u64).pow(1 + next() % 90)).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let sel = BigRational::new(BigInt::one(), BigUint::from(2 + next() % 1000));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone().max(BigUint::one()));
            }
        }
        QoNInstance::new(g, sizes, s, w)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qon_text_roundtrip_exact(inst in instance()) {
        let text = textio::qon_to_text(&inst);
        let back = textio::qon_from_text(&text).unwrap();
        prop_assert_eq!(back.n(), inst.n());
        prop_assert_eq!(back.graph().m(), inst.graph().m());
        // Costs agree on an arbitrary sequence.
        let z = JoinSequence::identity(inst.n());
        let a: BigRational = inst.total_cost(&z);
        let b: BigRational = back.total_cost(&z);
        prop_assert_eq!(a, b);
        // And the serialization is stable (idempotent).
        prop_assert_eq!(textio::qon_to_text(&back), text);
    }

    #[test]
    fn qon_parser_never_panics(garbage in "[a-z0-9 /\n#]{0,200}") {
        // Arbitrary text must produce Ok or Err, never a panic.
        let _ = textio::qon_from_text(&garbage);
        let _ = textio::qoh_from_text(&garbage);
    }
}
