//! Exhaustive interleaving models of the [`aqo_core::parallel::SharedBound`]
//! publish protocol, plus a real-thread stress check.
//!
//! `SharedBound::tighten` is a CAS-retry fetch-min over a single atomic
//! word. These models verify the *protocol* across every 2-thread
//! interleaving: the CAS loop keeps the monotone minimum under all
//! schedules, while the "obvious" load-then-store alternative provably
//! loses updates (the explorer produces the exact losing schedule). This
//! is the justification for the `Ordering::Relaxed` annotations in
//! `parallel.rs`: the word carries its whole message, so only atomicity —
//! not ordering — does any work.

use aqo_core::interleave::{explore, StepOutcome};
use aqo_core::parallel::SharedBound;

/// Two workers each publishing one proposal into a shared fetch-min word.
#[derive(Clone)]
struct BoundModel {
    /// Published bound, as `f64` bits (starts at `+inf`).
    word: u64,
    /// Per-thread program counter.
    pc: [u8; 2],
    /// Per-thread snapshot register (the `load` half of the protocol).
    observed: [u64; 2],
    /// Per-thread value to publish.
    proposal: [f64; 2],
}

impl BoundModel {
    fn new(p0: f64, p1: f64) -> Self {
        BoundModel {
            word: f64::INFINITY.to_bits(),
            pc: [0; 2],
            observed: [0; 2],
            proposal: [p0, p1],
        }
    }

    fn expected_min(&self) -> f64 {
        self.proposal[0].min(self.proposal[1])
    }

    fn published(&self) -> f64 {
        f64::from_bits(self.word)
    }
}

/// The real protocol: load, then a compare-exchange that retries from the
/// load when the word moved. Mirrors `AtomicU64::fetch_update`.
fn cas_step(s: &mut BoundModel, tid: usize) -> StepOutcome {
    match s.pc[tid] {
        0 => {
            s.observed[tid] = s.word;
            s.pc[tid] = 1;
            StepOutcome::Ran
        }
        _ => {
            if s.word != s.observed[tid] {
                // CAS failure: go back and re-load.
                s.pc[tid] = 0;
                return StepOutcome::Ran;
            }
            if s.proposal[tid] < f64::from_bits(s.word) {
                s.word = s.proposal[tid].to_bits();
            }
            StepOutcome::Done
        }
    }
}

/// The broken alternative: load, then an unconditional store decided from
/// the stale snapshot.
fn naive_step(s: &mut BoundModel, tid: usize) -> StepOutcome {
    match s.pc[tid] {
        0 => {
            s.observed[tid] = s.word;
            s.pc[tid] = 1;
            StepOutcome::Ran
        }
        _ => {
            if s.proposal[tid] < f64::from_bits(s.observed[tid]) {
                s.word = s.proposal[tid].to_bits();
            }
            StepOutcome::Done
        }
    }
}

fn min_invariant(s: &BoundModel, done: bool) -> Result<(), String> {
    // Mid-run the bound may still be loose, but it must never be tighter
    // than the true minimum (that would prune the optimal plan).
    if s.published() < s.expected_min() {
        return Err(format!(
            "bound {} tighter than any proposal (min {})",
            s.published(),
            s.expected_min()
        ));
    }
    if done && s.published() != s.expected_min() {
        return Err(format!(
            "lost update: published {} but the minimum proposal was {}",
            s.published(),
            s.expected_min()
        ));
    }
    Ok(())
}

#[test]
fn cas_fetch_min_holds_under_every_interleaving() {
    for (p0, p1) in [(5.0, 7.0), (7.0, 5.0), (3.0, 3.0), (f64::INFINITY, 2.0)] {
        let init = BoundModel::new(p0, p1);
        let t0 = |s: &mut BoundModel| cas_step(s, 0);
        let t1 = |s: &mut BoundModel| cas_step(s, 1);
        let n = explore(&init, &[&t0, &t1], &min_invariant, 32)
            .unwrap_or_else(|v| panic!("proposals ({p0}, {p1}): {v}"));
        // More schedules than the no-retry binomial C(4,2)=6: CAS
        // failure paths are genuinely explored.
        assert!(n >= 6, "explored only {n} schedules");
    }
}

#[test]
fn naive_load_store_loses_an_update() {
    let init = BoundModel::new(5.0, 7.0);
    let t0 = |s: &mut BoundModel| naive_step(s, 0);
    let t1 = |s: &mut BoundModel| naive_step(s, 1);
    let v = explore(&init, &[&t0, &t1], &min_invariant, 32)
        .expect_err("the naive protocol must lose an update somewhere");
    assert!(v.message.contains("lost update"), "{v}");
    // The counterexample: both threads load +inf, the tighter write (5.0)
    // lands first, then the staler 7.0 overwrites it.
    assert_eq!(v.schedule, vec![0, 1, 0, 1], "{v}");
}

/// The real `SharedBound` under real threads: not exhaustive (the models
/// above are), but checks the implementation agrees with the protocol.
#[test]
fn shared_bound_real_threads_converge_to_min() {
    for trial in 0..50u64 {
        let bound = SharedBound::unbounded();
        std::thread::scope(|scope| {
            for tid in 0..4u64 {
                let bound = &bound;
                scope.spawn(move || {
                    for k in 0..100u64 {
                        // Deterministic per-thread values; global min is 1.0.
                        let v = 1.0 + ((tid * 37 + k * 13 + trial) % 101) as f64;
                        bound.tighten(v);
                    }
                });
            }
        });
        assert_eq!(bound.get(), 1.0, "trial {trial}");
        // Monotone: tightening with anything looser is a no-op.
        bound.tighten(9.0);
        assert_eq!(bound.get(), 1.0);
    }
}
