//! The one `DimacsError` both DIMACS parsers share.
//!
//! The workspace reads two DIMACS dialects: the graph *edge* format
//! (`p edge n m`, consumed by `aqo_graph::io`) and CNF (`p cnf v c`,
//! consumed by `aqo_sat::dimacs`). Their failure modes are the same shape —
//! missing header, malformed line or token, an id beyond the declared
//! range, a count that contradicts the header — so both parsers return this
//! single enum (re-exported under their old paths) instead of maintaining
//! two structurally identical copies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Error from either DIMACS parser (`aqo_graph::io::from_dimacs`,
/// `aqo_sat::dimacs::from_dimacs`). The edge-format parser uses the
/// vertex/edge variants, the CNF parser the header/literal/variable/clause
/// variants; `MissingHeader` is common to both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsError {
    /// No `p …` header line found before data.
    MissingHeader,
    /// Malformed `p cnf` header.
    BadHeader(String),
    /// Malformed header or edge line (edge format).
    BadLine(String),
    /// A clause token was not an integer (CNF).
    BadLiteral(String),
    /// Vertex id out of the declared range (edge format, 1-based).
    VertexOutOfRange(usize),
    /// A literal referenced a variable beyond the declared count (CNF).
    VariableOutOfRange(i64),
    /// Edge count differs from the header (edge format).
    EdgeCountMismatch {
        /// Declared in the header.
        declared: usize,
        /// Actually parsed (distinct edges).
        found: usize,
    },
    /// Fewer/more clauses than the header declared (CNF).
    ClauseCountMismatch {
        /// Declared in the header.
        declared: usize,
        /// Actually parsed.
        found: usize,
    },
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::MissingHeader => write!(f, "missing DIMACS 'p' header"),
            DimacsError::BadHeader(l) => write!(f, "malformed header: {l}"),
            DimacsError::BadLine(l) => write!(f, "malformed line: {l}"),
            DimacsError::BadLiteral(t) => write!(f, "bad literal token: {t}"),
            DimacsError::VertexOutOfRange(v) => write!(f, "vertex out of range: {v}"),
            DimacsError::VariableOutOfRange(v) => write!(f, "variable out of range: {v}"),
            DimacsError::EdgeCountMismatch { declared, found } => {
                write!(f, "header declared {declared} edges, found {found}")
            }
            DimacsError::ClauseCountMismatch { declared, found } => {
                write!(f, "header declared {declared} clauses, found {found}")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<DimacsError> for String {
    fn from(e: DimacsError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_variant() {
        let cases: Vec<(DimacsError, &str)> = vec![
            (DimacsError::MissingHeader, "missing DIMACS 'p' header"),
            (DimacsError::BadHeader("p x".into()), "malformed header: p x"),
            (DimacsError::BadLine("q 1".into()), "malformed line: q 1"),
            (DimacsError::BadLiteral("a".into()), "bad literal token: a"),
            (DimacsError::VertexOutOfRange(9), "vertex out of range: 9"),
            (DimacsError::VariableOutOfRange(-4), "variable out of range: -4"),
            (
                DimacsError::EdgeCountMismatch { declared: 1, found: 2 },
                "header declared 1 edges, found 2",
            ),
            (
                DimacsError::ClauseCountMismatch { declared: 3, found: 1 },
                "header declared 3 clauses, found 1",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
            let s: String = err.into();
            assert_eq!(s, want);
        }
    }
}
