//! Properties of the driver (satellite of the robustness PR):
//!
//! * whenever the dp tier completes within budget, the driver's cost equals
//!   the DP optimum exactly;
//! * a forced first-tier failure still yields a valid, feasible join
//!   sequence from a lower tier.

use aqo_bignum::BigRational;
use aqo_core::qon::QoNInstance;
use aqo_core::workloads;
use aqo_driver::{faults, optimize_qon, QonDriverConfig};
use aqo_optimizer::dp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Fault sites are process-global; tests touching them serialize here.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn instance(shape: u8, n: usize, seed: u64) -> QoNInstance {
    let params = workloads::WorkloadParams::default();
    let mut rng = StdRng::seed_from_u64(seed);
    match shape % 4 {
        0 => workloads::chain(n, &params, &mut rng),
        1 => workloads::star(n, &params, &mut rng),
        2 => workloads::cycle(n.max(3), &params, &mut rng),
        _ => workloads::clique(n, &params, &mut rng),
    }
}

fn is_permutation(order: &[usize], n: usize) -> bool {
    let mut seen = vec![false; n];
    order.len() == n
        && order.iter().all(|&v| {
            if v >= n || seen[v] {
                return false;
            }
            seen[v] = true;
            true
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Within budget, the driver *is* the DP: same cost, bit for bit.
    #[test]
    fn dp_tier_within_budget_matches_dp_optimum(
        shape in any::<u8>(),
        n in 4usize..9,
        seed in any::<u64>(),
    ) {
        // Hold the lock so concurrently running fault tests cannot arm
        // `qon::dp` under us.
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let inst = instance(shape, n, seed);
        let outcome = optimize_qon(&inst, &QonDriverConfig::default())
            .expect("default chain ends in greedy");
        if outcome.report.tier == "dp" {
            let direct = dp::optimize::<BigRational>(&inst, true).unwrap();
            prop_assert_eq!(&outcome.optimum.cost, &direct.cost);
            prop_assert!(outcome.report.exact);
            prop_assert!(outcome.report.failures.is_empty());
        }
    }

    /// Kill the first tier: whatever answers instead must produce a valid
    /// permutation whose recomputed cost matches the reported one.
    #[test]
    fn forced_first_tier_failure_still_yields_valid_sequence(
        shape in any::<u8>(),
        n in 4usize..9,
        seed in any::<u64>(),
        kind in any::<bool>(),
    ) {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faults::clear();
        let fault =
            if kind { faults::FaultKind::Panic } else { faults::FaultKind::Error };
        faults::arm("qon::dp", fault, u64::MAX);
        let inst = instance(shape, n, seed);
        let outcome = optimize_qon(&inst, &QonDriverConfig::default());
        faults::clear();
        let outcome = outcome.expect("lower tiers answer");
        prop_assert!(outcome.report.tier != "dp");
        prop_assert!(!outcome.report.failures.is_empty());
        prop_assert!(is_permutation(outcome.optimum.sequence.order(), inst.n()));
        let recost: BigRational = inst.total_cost(&outcome.optimum.sequence);
        prop_assert_eq!(&recost, &outcome.optimum.cost);
    }
}
