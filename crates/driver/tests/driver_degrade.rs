//! Integration: the acceptance scenarios for the budgeted driver.
//!
//! (a) a clique instance that exhausts a tiny deadline returns a heuristic
//!     plan with a report naming the fallback tier instead of hanging;
//! (b) a fault-injected panic in the DP tier still yields a valid plan
//!     from the next tier;
//! (c) a generous budget reproduces `dp::optimize` bit for bit.
//!
//! Fault sites are process-global, so tests that arm them serialize on
//! [`FAULT_LOCK`].

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::budget::CancelToken;
use aqo_core::qoh::QoHInstance;
use aqo_core::qon::QoNInstance;
use aqo_core::{workloads, SelectivityMatrix};
use aqo_driver::{
    faults, optimize_qoh, optimize_qon, BudgetSpec, QohDriverConfig, QohTier, QonDriverConfig,
    QonTier, RetryPolicy,
};
use aqo_graph::Graph;
use aqo_optimizer::dp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn clique_instance(n: usize, seed: u64) -> QoNInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    workloads::clique(n, &workloads::WorkloadParams::default(), &mut rng)
}

fn assert_valid_sequence(inst: &QoNInstance, outcome: &aqo_driver::QonOutcome) {
    let order = outcome.optimum.sequence.order();
    assert_eq!(order.len(), inst.n());
    let mut seen = vec![false; inst.n()];
    for &v in order {
        assert!(!seen[v], "duplicate relation {v}");
        seen[v] = true;
    }
    let recost: BigRational = inst.total_cost(&outcome.optimum.sequence);
    assert_eq!(recost, outcome.optimum.cost, "reported cost must be the sequence's cost");
}

#[test]
fn clique_with_tiny_deadline_degrades_to_heuristic() {
    let inst = clique_instance(14, 7);
    let cfg = QonDriverConfig {
        budget: BudgetSpec { timeout: Some(Duration::ZERO), ..BudgetSpec::unlimited() },
        ..QonDriverConfig::default()
    };
    let outcome = optimize_qon(&inst, &cfg).expect("greedy tier always answers");
    assert_eq!(outcome.report.tier, "greedy");
    assert!(!outcome.report.exact);
    // Every stronger tier's failure is on the record: dp and bnb tripped
    // the deadline, ccp is unsupported with cartesian products admissible,
    // ikkbz panicked on the cyclic graph.
    let failed: Vec<&str> = outcome.report.failures.iter().map(|a| a.tier).collect();
    assert_eq!(failed, ["dp", "ccp", "bnb", "ikkbz"]);
    assert!(matches!(
        outcome.report.failures[0].failure,
        aqo_driver::TierFailure::Budget(_)
    ));
    assert!(matches!(
        outcome.report.failures[1].failure,
        aqo_driver::TierFailure::Unsupported(_)
    ));
    assert!(matches!(
        outcome.report.failures[3].failure,
        aqo_driver::TierFailure::Panic(_)
    ));
    assert_valid_sequence(&inst, &outcome);
}

#[test]
fn injected_dp_panic_degrades_to_branch_and_bound() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    faults::arm("qon::dp", faults::FaultKind::Panic, 1);
    let inst = clique_instance(8, 3);
    let outcome = optimize_qon(&inst, &QonDriverConfig::default()).expect("bnb answers");
    faults::clear();
    assert_eq!(outcome.report.tier, "bnb");
    assert!(outcome.report.exact);
    assert_valid_sequence(&inst, &outcome);
    // bnb is exact too, so the answer still matches the DP optimum.
    let direct = dp::optimize::<BigRational>(&inst, true).unwrap();
    assert_eq!(outcome.optimum.cost, direct.cost);
}

#[test]
fn generous_budget_is_bit_identical_to_direct_dp() {
    let inst = clique_instance(10, 11);
    let cfg = QonDriverConfig {
        budget: BudgetSpec {
            timeout: Some(Duration::from_secs(600)),
            max_expansions: Some(1_000_000_000),
            max_memory_bytes: Some(1 << 32),
        },
        ..QonDriverConfig::default()
    };
    let outcome = optimize_qon(&inst, &cfg).expect("dp fits the budget");
    assert_eq!(outcome.report.tier, "dp");
    assert!(outcome.report.exact);
    assert!(outcome.report.failures.is_empty());
    let direct = dp::optimize::<BigRational>(&inst, true).unwrap();
    assert_eq!(outcome.optimum.cost, direct.cost);
    assert_eq!(outcome.optimum.sequence.order(), direct.sequence.order());
}

#[test]
fn transient_injected_error_is_retried_then_succeeds() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    // Two spurious errors, then the site passes: with two retries allowed,
    // the dp tier itself still answers.
    faults::arm("qon::dp", faults::FaultKind::Error, 2);
    let inst = clique_instance(7, 5);
    let cfg = QonDriverConfig {
        retry: RetryPolicy { max_retries: 2, initial_backoff: Duration::from_millis(1) },
        ..QonDriverConfig::default()
    };
    let outcome = optimize_qon(&inst, &cfg).expect("third attempt succeeds");
    assert_eq!(faults::hits("qon::dp"), 3);
    faults::clear();
    assert_eq!(outcome.report.tier, "dp");
    assert_eq!(outcome.report.retries, 2);
    assert_eq!(outcome.report.failures.len(), 2);
    assert!(outcome
        .report
        .failures
        .iter()
        .all(|a| matches!(a.failure, aqo_driver::TierFailure::Injected(_))));
}

#[test]
fn exhausted_retries_degrade_instead_of_failing() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    faults::arm("qon::dp", faults::FaultKind::Error, 100);
    let inst = clique_instance(7, 6);
    let cfg = QonDriverConfig {
        retry: RetryPolicy { max_retries: 1, initial_backoff: Duration::from_millis(1) },
        ..QonDriverConfig::default()
    };
    let outcome = optimize_qon(&inst, &cfg).expect("bnb answers");
    faults::clear();
    assert_eq!(outcome.report.tier, "bnb");
    // dp was attempted twice (initial + one retry), then abandoned.
    let dp_attempts =
        outcome.report.failures.iter().filter(|a| a.tier == "dp").count();
    assert_eq!(dp_attempts, 2);
}

#[test]
fn every_tier_armed_means_driver_error() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    for site in ["qon::dp", "qon::ccp", "qon::bnb", "qon::ikkbz", "qon::greedy"] {
        faults::arm(site, faults::FaultKind::Panic, 100);
    }
    let inst = clique_instance(6, 2);
    let err = optimize_qon(&inst, &QonDriverConfig::default()).unwrap_err();
    faults::clear();
    assert_eq!(err.failures.len(), 5);
    let msg = err.to_string();
    assert!(msg.contains("every tier failed"), "unexpected message: {msg}");
}

#[test]
fn pre_cancelled_token_skips_budgeted_tiers() {
    let token = CancelToken::new();
    token.cancel();
    let inst = clique_instance(9, 4);
    let cfg = QonDriverConfig {
        cancel: Some(token),
        chain: vec![QonTier::Dp, QonTier::Greedy],
        ..QonDriverConfig::default()
    };
    let outcome = optimize_qon(&inst, &cfg).expect("greedy ignores the budget");
    assert_eq!(outcome.report.tier, "greedy");
    assert!(matches!(
        outcome.report.failures[0].failure,
        aqo_driver::TierFailure::Budget(ref e)
            if e.kind == aqo_core::budget::BudgetKind::Cancelled
    ));
}

fn chain_qon_instance(n: usize, seed: u64) -> QoNInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    workloads::chain(n, &workloads::WorkloadParams::default(), &mut rng)
}

#[test]
fn ccp_tier_answers_past_the_dp_cap_on_sparse_no_cartesian() {
    // n = 26 is over dp::MAX_N: dp must step aside with a structured
    // unsupported failure and ccp must answer exactly.
    let n = aqo_optimizer::dp::MAX_N + 1;
    let inst = chain_qon_instance(n, 21);
    let cfg = QonDriverConfig { allow_cartesian: false, ..QonDriverConfig::default() };
    let outcome = optimize_qon(&inst, &cfg).expect("ccp answers");
    assert_eq!(outcome.report.tier, "ccp");
    assert!(outcome.report.exact);
    assert_eq!(outcome.report.failures.len(), 1);
    assert_eq!(outcome.report.failures[0].tier, "dp");
    assert!(matches!(
        outcome.report.failures[0].failure,
        aqo_driver::TierFailure::Unsupported(_)
    ));
    assert_valid_sequence(&inst, &outcome);
    assert!(!inst.has_cartesian_product(&outcome.optimum.sequence));
}

#[test]
fn ccp_pin_with_cartesian_products_is_a_structured_unsupported_error() {
    // Cartesian products can beat every connected order, so ccp refuses
    // rather than silently returning a non-optimal "exact" plan.
    let inst = chain_qon_instance(8, 22);
    let cfg = QonDriverConfig {
        chain: vec![QonTier::Ccp],
        allow_cartesian: true,
        ..QonDriverConfig::default()
    };
    let err = optimize_qon(&inst, &cfg).unwrap_err();
    assert_eq!(err.failures.len(), 1);
    match &err.failures[0].failure {
        aqo_driver::TierFailure::Unsupported(msg) => {
            assert!(msg.contains("cartesian"), "message should say why: {msg}");
        }
        other => panic!("expected unsupported, got {other:?}"),
    }
}

#[test]
fn n_over_mask_width_degrades_every_mask_tier_with_unsupported() {
    // n = 33 overflows every u32-mask tier (dp, ccp); the chain must
    // degrade to the polynomial tiers with structured failures, not
    // wrap masks or hit an assert-turned-panic.
    let inst = chain_qon_instance(33, 23);
    let cfg = QonDriverConfig {
        chain: vec![QonTier::Dp, QonTier::Ccp, QonTier::Greedy],
        allow_cartesian: false,
        ..QonDriverConfig::default()
    };
    let outcome = optimize_qon(&inst, &cfg).expect("greedy answers");
    assert_eq!(outcome.report.tier, "greedy");
    let kinds: Vec<&str> =
        outcome.report.failures.iter().map(|a| a.failure.kind_str()).collect();
    assert_eq!(kinds, ["unsupported", "unsupported"]);
    for a in &outcome.report.failures {
        match &a.failure {
            aqo_driver::TierFailure::Unsupported(msg) => {
                assert!(msg.contains("n = 33"), "boundary in message: {msg}");
            }
            other => panic!("expected unsupported, got {other:?}"),
        }
    }
    assert_valid_sequence(&inst, &outcome);
}

#[test]
fn mask_tiers_accept_exactly_their_documented_caps() {
    // Boundary: n == ccp::MAX_N (32) is in range for ccp and out of range
    // for dp; n == dp::MAX_N is in range for dp. Tiny deadline keeps the
    // in-range attempts cheap — a budget trip proves the tier *ran*.
    let inst = chain_qon_instance(aqo_optimizer::ccp::MAX_N, 24);
    let cfg = QonDriverConfig {
        budget: BudgetSpec { timeout: Some(Duration::ZERO), ..BudgetSpec::unlimited() },
        chain: vec![QonTier::Dp, QonTier::Ccp, QonTier::Greedy],
        allow_cartesian: false,
        ..QonDriverConfig::default()
    };
    let outcome = optimize_qon(&inst, &cfg).expect("greedy answers");
    let by_tier: Vec<(&str, &str)> =
        outcome.report.failures.iter().map(|a| (a.tier, a.failure.kind_str())).collect();
    assert_eq!(by_tier, [("dp", "unsupported"), ("ccp", "budget")]);
}

fn qoh_chain_instance(n: usize) -> QoHInstance {
    let mut g = Graph::new(n);
    let mut s = SelectivityMatrix::new();
    let sizes: Vec<BigUint> = (0..n).map(|i| BigUint::from(8u64 << i)).collect();
    for v in 1..n {
        g.add_edge(v - 1, v);
        s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(4u64)));
    }
    QoHInstance::new(g, sizes, s, BigUint::from(1u64 << 20))
}

#[test]
fn qoh_driver_degrades_from_exhaustive_to_greedy() {
    let inst = qoh_chain_instance(6);
    // Unlimited: the exhaustive tier answers and is exact.
    let exact = optimize_qoh(&inst, &QohDriverConfig::default()).expect("feasible");
    assert_eq!(exact.report.tier, "exhaustive");
    assert!(exact.report.exact);

    // One expansion allowed: exhaustive trips, greedy answers, and the
    // heuristic cost can only be weakly worse.
    let cfg = QohDriverConfig {
        budget: BudgetSpec { max_expansions: Some(1), ..BudgetSpec::unlimited() },
        chain: vec![QohTier::Exhaustive, QohTier::Greedy],
        ..QohDriverConfig::default()
    };
    let degraded = optimize_qoh(&inst, &cfg).expect("greedy answers");
    assert_eq!(degraded.report.tier, "greedy");
    assert!(!degraded.report.exact);
    assert!(degraded.plan.cost >= exact.plan.cost);
}
