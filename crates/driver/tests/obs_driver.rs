//! Observability integration for the driver: armed fault sites surface as
//! per-site hit/injected counters and `fault_injected` journal events, the
//! retry path journals one `retry` per spurious failure, and the
//! machine-readable [`DriverReport::to_json`] names each injected attempt.
//!
//! Fault sites and the metrics registry are both process-global, so every
//! test here serializes on [`OBS_LOCK`].

use aqo_core::workloads;
use aqo_driver::{faults, optimize_qon, QonDriverConfig, RetryPolicy};
use aqo_obs::journal;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::Duration;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn counter_value(counters: &[(String, u64)], name: &str) -> u64 {
    counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
}

#[test]
fn injected_faults_are_counted_per_site_and_journaled() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    aqo_obs::reset_metrics();
    journal::clear();
    // The CLI arms sites through the same spec parser (`AQO_FAULTS`).
    assert_eq!(faults::load_spec("qon::dp=err*2"), Ok(1));
    aqo_obs::set_enabled(true);

    let mut rng = StdRng::seed_from_u64(5);
    let inst = workloads::clique(7, &workloads::WorkloadParams::default(), &mut rng);
    let cfg = QonDriverConfig {
        retry: RetryPolicy { max_retries: 2, initial_backoff: Duration::from_millis(1) },
        ..QonDriverConfig::default()
    };
    let outcome = optimize_qon(&inst, &cfg).expect("third attempt passes the fail point");

    aqo_obs::set_enabled(false);
    faults::clear();
    let counters = aqo_obs::counters_snapshot();
    let events = journal::drain();
    aqo_obs::reset_metrics();

    // Two fires, then the third (successful) attempt still *hits* the
    // armed site.
    assert_eq!(counter_value(&counters, "faults.injected.qon::dp"), 2);
    assert_eq!(counter_value(&counters, "faults.hit.qon::dp"), 3);
    assert_eq!(counter_value(&counters, "driver.retries"), 2);
    assert_eq!(counter_value(&counters, "driver.tier_failure"), 2);
    assert_eq!(counter_value(&counters, "driver.tier_success"), 1);

    let injected: Vec<_> = events.iter().filter(|e| e.etype == "fault_injected").collect();
    assert_eq!(injected.len(), 2, "one event per fired fault: {events:?}");
    for e in &injected {
        assert!(
            e.fields.contains(&("site", journal::Value::from("qon::dp"))),
            "site field names the fail point: {e:?}"
        );
        assert!(e.fields.contains(&("kind", journal::Value::from("err"))));
    }
    assert_eq!(events.iter().filter(|e| e.etype == "retry").count(), 2);
    // tier_start precedes each of the three attempts.
    assert_eq!(events.iter().filter(|e| e.etype == "tier_start").count(), 3);

    // The machine-readable report records both injected attempts.
    assert_eq!(outcome.report.tier, "dp");
    let json = outcome.report.to_json();
    assert_eq!(json.matches("\"kind\": \"injected\"").count(), 2, "json: {json}");
    assert!(json.contains("\"retries\": 2"), "json: {json}");
}

#[test]
fn disabled_collection_leaves_no_trace() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    aqo_obs::reset_metrics();
    journal::clear();
    assert!(!aqo_obs::enabled());
    faults::arm("qon::dp", faults::FaultKind::Error, 1);

    let mut rng = StdRng::seed_from_u64(9);
    let inst = workloads::clique(6, &workloads::WorkloadParams::default(), &mut rng);
    let cfg = QonDriverConfig {
        retry: RetryPolicy { max_retries: 1, initial_backoff: Duration::from_millis(1) },
        ..QonDriverConfig::default()
    };
    optimize_qon(&inst, &cfg).expect("retry succeeds");
    faults::clear();

    assert!(aqo_obs::counters_snapshot().is_empty(), "no counters while disabled");
    assert!(journal::drain().is_empty(), "no events while disabled");
}
