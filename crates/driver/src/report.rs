//! What the driver did and what it swallowed along the way.

use aqo_core::budget::BudgetExceeded;
use std::fmt;
use std::time::Duration;

/// Why a tier attempt failed to produce a plan.
#[derive(Clone, Debug)]
pub enum TierFailure {
    /// The cooperative budget tripped inside the tier.
    Budget(BudgetExceeded),
    /// The tier panicked (payload stringified); isolated by `catch_unwind`.
    Panic(String),
    /// The faults layer injected a spurious error (transient: retried).
    Injected(String),
    /// The tier completed but found no feasible plan.
    NoPlan,
    /// The tier cannot handle this instance/config combination at all
    /// (instance too large for its mask width, cartesian products
    /// requested from a connected-only tier). Permanent: never retried,
    /// degrades straight to the next tier.
    Unsupported(String),
}

impl TierFailure {
    /// Stable machine-readable discriminant, used in trace events, fault
    /// counters and the JSON report.
    pub fn kind_str(&self) -> &'static str {
        match self {
            TierFailure::Budget(_) => "budget",
            TierFailure::Panic(_) => "panic",
            TierFailure::Injected(_) => "injected",
            TierFailure::NoPlan => "no_plan",
            TierFailure::Unsupported(_) => "unsupported",
        }
    }
}

impl fmt::Display for TierFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierFailure::Budget(e) => write!(f, "budget: {e}"),
            TierFailure::Panic(msg) => write!(f, "panic: {msg}"),
            TierFailure::Injected(msg) => write!(f, "injected: {msg}"),
            TierFailure::NoPlan => write!(f, "no feasible plan"),
            TierFailure::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

/// One failed attempt at one tier.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// Name of the tier (`dp`, `bnb`, `ikkbz`, `greedy`, `exhaustive`).
    pub tier: &'static str,
    /// 1-based attempt number at that tier (> 1 only after retries).
    pub attempt: u32,
    /// What went wrong.
    pub failure: TierFailure,
}

impl fmt::Display for Attempt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} attempt {}: {}", self.tier, self.attempt, self.failure)
    }
}

/// How an answer was obtained: which tier produced it, what it cost, and
/// every failure degraded past on the way down the chain.
#[derive(Clone, Debug)]
pub struct DriverReport {
    /// The tier that produced the returned plan.
    pub tier: &'static str,
    /// Whether that tier is exact (optimal) or a heuristic.
    pub exact: bool,
    /// Budget expansions consumed across all tiers (the budget is shared).
    pub expansions: u64,
    /// Bytes charged against the memory cap across all tiers.
    pub memory_bytes: u64,
    /// Wall-clock time from budget start to the winning tier's answer.
    pub elapsed: Duration,
    /// Number of retry backoff sleeps performed for transient faults.
    pub retries: u32,
    /// Every failed attempt, in order, that the driver degraded past.
    pub failures: Vec<Attempt>,
}

impl fmt::Display for DriverReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tier={} kind={} expansions={} memory={}B elapsed={:.3}ms retries={}",
            self.tier,
            if self.exact { "exact" } else { "heuristic" },
            self.expansions,
            self.memory_bytes,
            self.elapsed.as_secs_f64() * 1e3,
            self.retries,
        )?;
        if self.failures.is_empty() {
            return Ok(());
        }
        write!(f, " degraded-past=[")?;
        for (i, a) in self.failures.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

impl DriverReport {
    /// Machine-readable JSON rendering of the report (hand-rolled, no
    /// serialization dependency). [`Display`](fmt::Display) stays the
    /// human-facing form; this is what `--report-json` writes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("  \"tier\": \"{}\",\n", self.tier));
        out.push_str(&format!("  \"exact\": {},\n", self.exact));
        out.push_str(&format!("  \"expansions\": {},\n", self.expansions));
        out.push_str(&format!("  \"memory_bytes\": {},\n", self.memory_bytes));
        out.push_str(&format!(
            "  \"elapsed_ms\": {:.3},\n",
            self.elapsed.as_secs_f64() * 1e3
        ));
        out.push_str(&format!("  \"retries\": {},\n", self.retries));
        out.push_str("  \"failures\": [");
        for (i, a) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"tier\": \"{}\", ", a.tier));
            out.push_str(&format!("\"attempt\": {}, ", a.attempt));
            out.push_str(&format!("\"kind\": \"{}\", ", a.failure.kind_str()));
            out.push_str("\"detail\": ");
            aqo_obs::json::escape_into(&mut out, &a.failure.to_string());
            out.push('}');
        }
        if !self.failures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Every tier in the chain failed; the failures say how.
#[derive(Clone, Debug)]
pub struct DriverError {
    /// Each attempt's failure, in chain order.
    pub failures: Vec<Attempt>,
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "every tier failed: ")?;
        for (i, a) in self.failures.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl std::error::Error for DriverError {}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_obs::json::{self, JsonValue};

    #[test]
    fn to_json_with_failures_parses() {
        let report = DriverReport {
            tier: "bnb",
            exact: true,
            expansions: 42,
            memory_bytes: 1024,
            elapsed: Duration::from_millis(7),
            retries: 1,
            failures: vec![
                Attempt {
                    tier: "dp",
                    attempt: 1,
                    failure: TierFailure::Injected("spurious \"io\" error".into()),
                },
                Attempt { tier: "dp", attempt: 2, failure: TierFailure::NoPlan },
            ],
        };
        let doc = json::parse(&report.to_json()).expect("report JSON parses");
        assert_eq!(doc.get("tier").and_then(JsonValue::as_str), Some("bnb"));
        assert_eq!(doc.get("retries").and_then(JsonValue::as_num), Some(1.0));
        let failures = doc.get("failures").and_then(JsonValue::as_arr).expect("failures array");
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].get("kind").and_then(JsonValue::as_str), Some("injected"));
        assert_eq!(
            failures[0].get("detail").and_then(JsonValue::as_str),
            Some("injected: spurious \"io\" error"),
        );
        assert_eq!(failures[1].get("detail").and_then(JsonValue::as_str), Some("no feasible plan"));
    }

    #[test]
    fn to_json_without_failures_parses() {
        let report = DriverReport {
            tier: "dp",
            exact: true,
            expansions: 0,
            memory_bytes: 0,
            elapsed: Duration::ZERO,
            retries: 0,
            failures: Vec::new(),
        };
        let doc = json::parse(&report.to_json()).expect("report JSON parses");
        assert_eq!(doc.get("failures").and_then(JsonValue::as_arr).map(<[_]>::len), Some(0));
    }
}
