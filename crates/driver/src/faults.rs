//! Deterministic fault injection — re-exported from [`aqo_core::faults`].
//!
//! The registry started life here when only the driver tiers had fail
//! points; it moved into `aqo_core` once the serve transport and snapshot
//! layers grew sites of their own, so every crate shares one
//! process-global registry and the chaos campaign can enumerate all sites
//! through one [`CATALOG`]. This module stays as the driver-facing path
//! (`aqo_driver::faults`) so existing callers and `AQO_FAULTS` docs keep
//! working.

pub use aqo_core::faults::*;
