//! Budgeted, cancellable optimization driver with graceful degradation.
//!
//! The optimizers in [`aqo_optimizer`] are a bestiary: exponential exact
//! algorithms (subset DP, branch-and-bound, exhaustive enumeration) next to
//! polynomial heuristics. This crate wraps them behind a single entry point
//! per problem — [`optimize_qon`] and [`optimize_qoh`] — that
//!
//! * runs the strongest tier first under a cooperative
//!   [`Budget`](aqo_core::Budget) (wall-clock deadline, expansion cap,
//!   memory cap, cancel token);
//! * isolates panics with `catch_unwind` and treats them like any other
//!   tier failure;
//! * retries transient injected failures (see [`faults`]) a bounded number
//!   of times with doubling backoff;
//! * on failure, degrades down a configurable fallback chain
//!   (`dp → bnb → ikkbz → greedy` for QO_N, `exhaustive → greedy` for
//!   QO_H) until some tier answers;
//! * returns a [`DriverReport`] recording which tier answered, whether it
//!   is exact, how much budget was consumed, and every failure swallowed on
//!   the way down.
//!
//! The budget is *shared* across tiers: when the deadline trips in the DP
//! tier, branch-and-bound trips on its first checkpoint too, and the chain
//! falls through to the polynomial tiers, which run unbudgeted and always
//! terminate. A chain that ends in `greedy` therefore answers every
//! connected instance — degraded, but never hung.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod report;

pub use report::{Attempt, DriverError, DriverReport, TierFailure};

use aqo_bignum::BigRational;
use aqo_core::budget::{Budget, CancelToken};
use aqo_core::qoh::QoHInstance;
use aqo_core::qon::QoNInstance;
use aqo_optimizer::pipeline::QohPlan;
use aqo_optimizer::{branch_bound, ccp, dp, engine, exhaustive, greedy, ikkbz, pipeline, Optimum};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Declarative budget limits; [`build`](BudgetSpec::build) turns them into
/// a live [`Budget`] (the clock starts then).
#[derive(Clone, Debug, Default)]
pub struct BudgetSpec {
    /// Wall-clock deadline.
    pub timeout: Option<Duration>,
    /// Cap on cooperative expansion ticks.
    pub max_expansions: Option<u64>,
    /// Cap on bytes charged for table allocations.
    pub max_memory_bytes: Option<u64>,
}

impl BudgetSpec {
    /// A spec with no limits.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Materializes the spec; the deadline countdown starts here.
    pub fn build(&self, cancel: Option<CancelToken>) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(t) = self.timeout {
            b = b.with_timeout(t);
        }
        if let Some(n) = self.max_expansions {
            b = b.with_max_expansions(n);
        }
        if let Some(m) = self.max_memory_bytes {
            b = b.with_max_memory_bytes(m);
        }
        if let Some(c) = cancel {
            b = b.with_cancel_token(c);
        }
        b
    }
}

/// Bounded retry with doubling backoff, applied only to *transient*
/// failures (injected errors from the [`faults`] layer). Budget trips and
/// panics never retry: they degrade immediately.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries per tier after the first attempt (0 disables retry).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles on each subsequent one.
    pub initial_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 2, initial_backoff: Duration::from_millis(1) }
    }
}

/// The QO_N fallback tiers, strongest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QonTier {
    /// Subset dynamic programming (exact, `O(2^n)` memory).
    Dp,
    /// DPccp connected-subgraph DP (exact for the cartesian-free space,
    /// memory sized by the connected-subgraph count — polynomial on
    /// chains/cycles/sparse graphs; unsupported when cartesian products
    /// are admissible).
    Ccp,
    /// Branch-and-bound DFS (exact, low memory, worst-case exponential).
    BranchBound,
    /// IKKBZ (polynomial; exact only on acyclic query graphs, panics on
    /// cyclic ones — the driver degrades past that panic).
    Ikkbz,
    /// Greedy min-intermediate (polynomial heuristic; always terminates).
    Greedy,
}

impl QonTier {
    /// Short name used in chain specs, fail-point sites, and reports.
    pub fn name(self) -> &'static str {
        match self {
            QonTier::Dp => "dp",
            QonTier::Ccp => "ccp",
            QonTier::BranchBound => "bnb",
            QonTier::Ikkbz => "ikkbz",
            QonTier::Greedy => "greedy",
        }
    }

    /// Whether the tier's answer is provably optimal for every instance.
    pub fn is_exact(self) -> bool {
        matches!(self, QonTier::Dp | QonTier::Ccp | QonTier::BranchBound)
    }

    /// The default chain: `dp → ccp → bnb → ikkbz → greedy`. `ccp` covers
    /// the no-cartesian configs `dp` is too big for (sparse graphs far
    /// past [`dp::MAX_N`]); with cartesian products admissible it reports
    /// unsupported and the chain moves on.
    pub fn default_chain() -> Vec<QonTier> {
        vec![
            QonTier::Dp,
            QonTier::Ccp,
            QonTier::BranchBound,
            QonTier::Ikkbz,
            QonTier::Greedy,
        ]
    }

    /// Parses a comma-separated chain spec such as `dp,ccp,greedy`.
    pub fn parse_chain(spec: &str) -> Result<Vec<QonTier>, String> {
        let mut chain = Vec::new();
        for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            chain.push(match name {
                "dp" => QonTier::Dp,
                "ccp" => QonTier::Ccp,
                "bnb" => QonTier::BranchBound,
                "ikkbz" => QonTier::Ikkbz,
                "greedy" => QonTier::Greedy,
                other => {
                    return Err(format!("unknown tier `{other}` (dp|ccp|bnb|ikkbz|greedy)"))
                }
            });
        }
        if chain.is_empty() {
            return Err("empty fallback chain".to_string());
        }
        Ok(chain)
    }
}

/// The QO_H fallback tiers, strongest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QohTier {
    /// Exhaustive search over sequences with exact decomposition (exact).
    Exhaustive,
    /// Greedy sequence + exact decomposition + 2-opt (heuristic).
    Greedy,
}

impl QohTier {
    /// Short name used in chain specs, fail-point sites, and reports.
    pub fn name(self) -> &'static str {
        match self {
            QohTier::Exhaustive => "exhaustive",
            QohTier::Greedy => "greedy",
        }
    }

    /// Whether the tier's answer is provably optimal.
    pub fn is_exact(self) -> bool {
        matches!(self, QohTier::Exhaustive)
    }

    /// The default chain: `exhaustive → greedy`.
    pub fn default_chain() -> Vec<QohTier> {
        vec![QohTier::Exhaustive, QohTier::Greedy]
    }

    /// Parses a comma-separated chain spec such as `exhaustive,greedy`.
    pub fn parse_chain(spec: &str) -> Result<Vec<QohTier>, String> {
        let mut chain = Vec::new();
        for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            chain.push(match name {
                "exhaustive" => QohTier::Exhaustive,
                "greedy" => QohTier::Greedy,
                other => return Err(format!("unknown tier `{other}` (exhaustive|greedy)")),
            });
        }
        if chain.is_empty() {
            return Err("empty fallback chain".to_string());
        }
        Ok(chain)
    }
}

/// Configuration for [`optimize_qon`].
#[derive(Clone, Debug)]
pub struct QonDriverConfig {
    /// Budget limits shared by every tier in the chain.
    pub budget: BudgetSpec,
    /// Fallback chain, tried in order.
    pub chain: Vec<QonTier>,
    /// Whether sequences with cartesian products are admissible.
    pub allow_cartesian: bool,
    /// Retry policy for transient injected failures.
    pub retry: RetryPolicy,
    /// Optional cooperative cancellation token.
    pub cancel: Option<CancelToken>,
    /// Worker threads for the exact tiers: `1` keeps the classic
    /// sequential algorithms, `0` means one worker per hardware thread,
    /// and `> 1` routes the DP tier to the two-phase parallel
    /// [`aqo_optimizer::engine`] and branch-and-bound to its shared-bound
    /// parallel variant. The optimal cost is identical in every mode.
    pub threads: usize,
    /// Route the DP tier through the two-phase [`aqo_optimizer::engine`]
    /// even at `threads == 1` (by default one thread runs the classic
    /// sequential DP, which reproduces `dp::optimize` bit for bit). The CLI
    /// sets this when metrics or tracing are on so the deterministic
    /// `optimizer.engine.*` counters are comparable across thread counts.
    pub force_engine_dp: bool,
}

impl Default for QonDriverConfig {
    fn default() -> Self {
        Self {
            budget: BudgetSpec::unlimited(),
            chain: QonTier::default_chain(),
            allow_cartesian: true,
            retry: RetryPolicy::default(),
            cancel: None,
            threads: 1,
            force_engine_dp: false,
        }
    }
}

/// Configuration for [`optimize_qoh`].
#[derive(Clone, Debug)]
pub struct QohDriverConfig {
    /// Budget limits shared by every tier in the chain.
    pub budget: BudgetSpec,
    /// Fallback chain, tried in order.
    pub chain: Vec<QohTier>,
    /// Retry policy for transient injected failures.
    pub retry: RetryPolicy,
    /// Optional cooperative cancellation token.
    pub cancel: Option<CancelToken>,
    /// Worker threads for the exhaustive tier: `1` is sequential, `0`
    /// means one worker per hardware thread. The parallel sweep returns
    /// exactly the sequential winner (reduced by permutation index).
    pub threads: usize,
}

impl Default for QohDriverConfig {
    fn default() -> Self {
        Self {
            budget: BudgetSpec::unlimited(),
            chain: QohTier::default_chain(),
            retry: RetryPolicy::default(),
            cancel: None,
            threads: 1,
        }
    }
}

/// A QO_N answer with its provenance.
#[derive(Clone, Debug)]
pub struct QonOutcome {
    /// The plan the winning tier produced.
    pub optimum: Optimum<BigRational>,
    /// Which tier answered and what was swallowed on the way.
    pub report: DriverReport,
}

/// A QO_H answer with its provenance.
#[derive(Clone, Debug)]
pub struct QohOutcome {
    /// The plan the winning tier produced.
    pub plan: QohPlan,
    /// Which tier answered and what was swallowed on the way.
    pub report: DriverReport,
}

/// The chain engine: runs tiers in order under one shared budget, isolating
/// panics, retrying transient injections, and recording every failure.
// The per-tier accessors (name/exact/tier_span) stay separate closures so
// each call site keeps one static span literal per tier for the
// counter-catalog scanner; folding them into a struct would hide those.
#[allow(clippy::too_many_arguments)]
fn drive<T, Tier: Copy>(
    chain: &[Tier],
    budget: &Budget,
    retry: &RetryPolicy,
    site_prefix: &str,
    name: impl Fn(Tier) -> &'static str,
    exact: impl Fn(Tier) -> bool,
    tier_span: impl Fn(Tier) -> aqo_obs::Span,
    run: impl Fn(Tier, &Budget) -> Result<Option<T>, TierFailure>,
) -> Result<(T, DriverReport), DriverError> {
    let mut failures: Vec<Attempt> = Vec::new();
    let mut retries = 0u32;
    for (chain_pos, &tier) in chain.iter().enumerate() {
        let site = format!("{site_prefix}::{}", name(tier));
        let mut backoff = retry.initial_backoff;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if aqo_obs::enabled() {
                aqo_obs::counter_handle!("driver.tier_start").inc();
                aqo_obs::journal::event(
                    "tier_start",
                    vec![("tier", name(tier).into()), ("attempt", attempt.into())],
                );
            }
            let outcome = with_quiet_panics(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    // The per-tier span lives inside the catch_unwind so
                    // a panicking tier still closes it on unwind —
                    // trace-check's balance invariant holds on every path.
                    let _tier_span = tier_span(tier);
                    faults::fail_point(&site)
                        .map_err(|e| TierFailure::Injected(e.to_string()))?;
                    run(tier, budget)
                }))
            });
            let failure = match outcome {
                Ok(Ok(Some(answer))) => {
                    if aqo_obs::enabled() {
                        aqo_obs::counter_handle!("driver.tier_success").inc();
                        aqo_obs::counter(&format!("driver.tier_success.{}", name(tier))).inc();
                        aqo_obs::journal::event(
                            "tier_success",
                            vec![("tier", name(tier).into()), ("attempt", attempt.into())],
                        );
                        budget.observe(name(tier));
                    }
                    let report = DriverReport {
                        tier: name(tier),
                        exact: exact(tier),
                        expansions: budget.expansions_used(),
                        memory_bytes: budget.memory_charged(),
                        elapsed: budget.elapsed(),
                        retries,
                        failures,
                    };
                    return Ok((answer, report));
                }
                Ok(Ok(None)) => TierFailure::NoPlan,
                Ok(Err(failure)) => failure,
                Err(payload) => TierFailure::Panic(panic_message(payload)),
            };
            let transient = matches!(failure, TierFailure::Injected(_));
            if aqo_obs::enabled() {
                aqo_obs::counter_handle!("driver.tier_failure").inc();
                aqo_obs::journal::event(
                    "tier_failure",
                    vec![
                        ("tier", name(tier).into()),
                        ("attempt", attempt.into()),
                        ("kind", failure.kind_str().into()),
                    ],
                );
            }
            failures.push(Attempt { tier: name(tier), attempt, failure });
            if transient && attempt <= retry.max_retries {
                if aqo_obs::enabled() {
                    aqo_obs::counter_handle!("driver.retries").inc();
                    aqo_obs::journal::event(
                        "retry",
                        vec![
                            ("tier", name(tier).into()),
                            ("attempt", attempt.into()),
                            ("backoff_ms", (backoff.as_millis() as u64).into()),
                        ],
                    );
                }
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
                retries += 1;
                continue;
            }
            break; // degrade to the next tier
        }
        if aqo_obs::enabled() {
            budget.observe(name(tier));
            if chain_pos + 1 < chain.len() {
                aqo_obs::counter_handle!("driver.fallbacks").inc();
                aqo_obs::journal::event(
                    "fallback",
                    vec![
                        ("from_tier", name(tier).into()),
                        ("to_tier", name(chain[chain_pos + 1]).into()),
                    ],
                );
            }
        }
    }
    Err(DriverError { failures })
}

use faults::with_quiet_panics;

/// Per-tier span for QO_N attempts, timing each tier's execution inside
/// the driver chain (one static name per tier so the catalog scanner and
/// the `span.<name>` histograms see every variant).
fn qon_tier_span(tier: QonTier) -> aqo_obs::Span {
    match tier {
        QonTier::Dp => aqo_obs::span("tier.dp"),
        QonTier::Ccp => aqo_obs::span("tier.ccp"),
        QonTier::BranchBound => aqo_obs::span("tier.bnb"),
        QonTier::Ikkbz => aqo_obs::span("tier.ikkbz"),
        QonTier::Greedy => aqo_obs::span("tier.greedy"),
    }
}

/// Per-tier span for QO_H attempts (`tier.greedy` is shared with QO_N —
/// same histogram, distinguishable by the surrounding driver span).
fn qoh_tier_span(tier: QohTier) -> aqo_obs::Span {
    match tier {
        QohTier::Exhaustive => aqo_obs::span("tier.exhaustive"),
        QohTier::Greedy => aqo_obs::span("tier.greedy"),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Optimizes a QO_N instance down the fallback chain. Exact arithmetic
/// ([`BigRational`]) throughout, so a generous budget reproduces
/// `dp::optimize` bit for bit.
pub fn optimize_qon(
    inst: &QoNInstance,
    cfg: &QonDriverConfig,
) -> Result<QonOutcome, DriverError> {
    let _span = aqo_obs::span("driver.optimize_qon");
    let budget = cfg.budget.build(cfg.cancel.clone());
    let allow = cfg.allow_cartesian;
    let threads = cfg.threads;
    let force_engine = cfg.force_engine_dp;
    drive(
        &cfg.chain,
        &budget,
        &cfg.retry,
        "qon",
        QonTier::name,
        QonTier::is_exact,
        qon_tier_span,
        |tier, budget| match tier {
            // The mask-based exact tiers reject oversized instances with a
            // structured failure (degrading down the chain) instead of
            // hitting their internal asserts or silent u32 wraparound.
            QonTier::Dp if inst.n() > dp::MAX_N => Err(TierFailure::Unsupported(format!(
                "dp handles n <= {} (got n = {})",
                dp::MAX_N,
                inst.n()
            ))),
            QonTier::Dp if threads == 1 && !force_engine => {
                dp::optimize_with_budget::<BigRational>(inst, allow, budget)
                    .map_err(TierFailure::Budget)
            }
            QonTier::Dp => {
                let opts = engine::DpOptions { allow_cartesian: allow, threads };
                engine::optimize_two_phase::<BigRational>(inst, &opts, budget)
                    .map_err(TierFailure::Budget)
            }
            QonTier::Ccp if allow => Err(TierFailure::Unsupported(
                "ccp enumerates connected subgraphs only, which is exact just for the \
                 cartesian-free space; rerun with --no-cartesian or use dp/bnb"
                    .to_string(),
            )),
            QonTier::Ccp if inst.n() > ccp::MAX_N => Err(TierFailure::Unsupported(format!(
                "ccp handles n <= {} (got n = {}): subset masks are u32",
                ccp::MAX_N,
                inst.n()
            ))),
            QonTier::Ccp => ccp::optimize_two_phase::<BigRational>(inst, threads, budget)
                .map_err(TierFailure::Budget),
            QonTier::BranchBound if threads == 1 => {
                branch_bound::optimize_with_budget::<BigRational>(inst, allow, budget)
                    .map_err(TierFailure::Budget)
            }
            QonTier::BranchBound => {
                branch_bound::optimize_par_with_budget::<BigRational>(
                    inst, allow, threads, budget,
                )
                .map_err(TierFailure::Budget)
            }
            QonTier::Ikkbz => Ok(Some(ikkbz::optimize(inst))),
            QonTier::Greedy => Ok(greedy::min_intermediate(inst, allow).map(|z| {
                let cost: BigRational = inst.total_cost(&z);
                Optimum { sequence: z, cost }
            })),
        },
    )
    .map(|(optimum, report)| QonOutcome { optimum, report })
}

/// Optimizes a QO_H instance down the fallback chain.
pub fn optimize_qoh(
    inst: &QoHInstance,
    cfg: &QohDriverConfig,
) -> Result<QohOutcome, DriverError> {
    let _span = aqo_obs::span("driver.optimize_qoh");
    let budget = cfg.budget.build(cfg.cancel.clone());
    drive(
        &cfg.chain,
        &budget,
        &cfg.retry,
        "qoh",
        QohTier::name,
        QohTier::is_exact,
        qoh_tier_span,
        |tier, budget| match tier {
            QohTier::Exhaustive if cfg.threads == 1 => {
                pipeline::optimize_exhaustive_with_budget(inst, budget)
                    .map_err(TierFailure::Budget)
            }
            QohTier::Exhaustive => {
                pipeline::optimize_exhaustive_par_with_budget(inst, cfg.threads, budget)
                    .map_err(TierFailure::Budget)
            }
            QohTier::Greedy => Ok(pipeline::optimize_greedy(inst)),
        },
    )
    .map(|(plan, report)| QohOutcome { plan, report })
}

/// Convenience QO_N entry point for small fixed limits: default chain,
/// cartesian products allowed.
pub fn optimize_qon_with_limits(
    inst: &QoNInstance,
    timeout: Option<Duration>,
    max_expansions: Option<u64>,
) -> Result<QonOutcome, DriverError> {
    let cfg = QonDriverConfig {
        budget: BudgetSpec { timeout, max_expansions, max_memory_bytes: None },
        ..QonDriverConfig::default()
    };
    optimize_qon(inst, &cfg)
}

// Re-export so callers of the driver can name the exhaustive tier's cap.
pub use exhaustive::MAX_N as EXHAUSTIVE_MAX_N;
