//! Concurrency stress: many worker threads hammer one [`aqo_serve::Engine`]
//! with a mixed QO_N/QO_H request stream and every single response must
//! carry exactly the cost the *sequential* driver computes for that
//! instance — with the plan cache on (hits are served concurrently with
//! misses and inserts) and with it off (every request solves from
//! scratch). A wrong cost here means the cache returned a plan for the
//! wrong instance or a torn value crossed threads.

use aqo_core::parallel::run_workers;
use aqo_core::{textio, workloads};
use aqo_driver::{QohDriverConfig, QonDriverConfig};
use aqo_serve::{Engine, Op, Problem, Reply, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One pooled instance: its wire text and the sequential driver's cost.
struct Pooled {
    problem: Problem,
    text: String,
    expected_cost: String,
}

fn build_pool() -> Vec<Pooled> {
    let params = workloads::WorkloadParams::default();
    let mut pool = Vec::new();
    for (i, n) in [5usize, 6, 7, 6].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let inst = if i % 2 == 0 {
            workloads::chain(n, &params, &mut rng)
        } else {
            workloads::cycle(n, &params, &mut rng)
        };
        let outcome =
            aqo_driver::optimize_qon(&inst, &QonDriverConfig::default()).expect("qon solves");
        assert!(outcome.report.exact);
        pool.push(Pooled {
            problem: Problem::Qon,
            text: textio::qon_to_text(&inst),
            expected_cost: outcome.optimum.cost.to_string(),
        });
    }
    for i in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(200 + i);
        let base = workloads::chain(5 + i as usize, &params, &mut rng);
        // Memory = product of sizes keeps every plan feasible (η < 1).
        let memory = base
            .sizes()
            .iter()
            .fold(aqo_bignum::BigUint::from(1u64), |acc, s| &acc * s);
        let inst = aqo_core::qoh::QoHInstance::new(
            base.graph().clone(),
            base.sizes().to_vec(),
            base.selectivity().clone(),
            memory,
        );
        let outcome =
            aqo_driver::optimize_qoh(&inst, &QohDriverConfig::default()).expect("qoh solves");
        pool.push(Pooled {
            problem: Problem::Qoh,
            text: textio::qoh_to_text(&inst),
            expected_cost: outcome.plan.cost.to_string(),
        });
    }
    pool
}

/// Fires `total` requests from `threads` workers and checks every cost.
fn hammer(engine: &Engine, pool: &[Pooled], threads: usize, total: usize, use_cache: bool) {
    run_workers(threads, |w| {
        for j in (w..total).step_by(threads) {
            let item = &pool[j % pool.len()];
            let mut req = Request::new(Op::Optimize, item.problem);
            req.id = j as u64;
            req.instance = Some(item.text.clone());
            req.use_cache = use_cache;
            match engine.handle(&req) {
                Reply::Ok(ok) => {
                    assert_eq!(
                        ok.cost, item.expected_cost,
                        "request {j}: concurrent answer diverged from the sequential driver"
                    );
                    assert!(ok.exact, "request {j}: default chain must answer exactly");
                }
                other => panic!("request {j} failed: {}", other.to_json_line()),
            }
        }
    });
}

#[test]
fn concurrent_mixed_load_matches_sequential_costs_with_cache() {
    let pool = build_pool();
    let engine = Engine::new(64, None);
    hammer(&engine, &pool, 8, 96, true);
    let stats = engine.cache().stats();
    assert!(stats.hits > 0, "96 requests over 6 instances must hit the cache");
    // Two threads can miss the same key concurrently and both insert
    // (replace-in-place), so inserts is a lower bound — but the cache
    // itself must hold exactly one entry per distinct instance.
    assert!(stats.inserts as usize >= pool.len(), "every instance cached");
    assert_eq!(stats.len, pool.len(), "duplicate inserts collapse per key");
}

#[test]
fn concurrent_mixed_load_matches_sequential_costs_without_cache() {
    let pool = build_pool();
    let engine = Engine::new(64, None);
    hammer(&engine, &pool, 8, 48, false);
    let stats = engine.cache().stats();
    assert_eq!(stats.hits, 0, "cache-off requests must not read the cache");
    assert_eq!(stats.inserts, 0, "cache-off requests must not populate the cache");
}
