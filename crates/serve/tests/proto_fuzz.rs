//! Fuzz-shaped robustness tests for the wire protocol.
//!
//! Two layers are attacked. [`aqo_serve::Request::parse`] is hammered
//! directly with truncated JSON, type confusion, and seeded byte
//! mutations — it must return a structured `Err` or a valid request,
//! never panic. Then a live server on a loopback port is fed raw bytes
//! a well-behaved client would never send — invalid UTF-8, interleaved
//! garbage, oversized lines, and a held-open partial line — and must
//! answer each abuse with a structured error (or a deliberate eviction)
//! while staying serviceable for the next well-formed request.
//!
//! The fault registry and obs switch are process-global, so the
//! server-level tests serialize on one mutex (each test binary is its
//! own process, so this does not contend with `serve_e2e`).

use aqo_core::{textio, workloads};
use aqo_driver::faults;
use aqo_obs::json::{self, JsonValue};
use aqo_serve::{Op, Problem, Request, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn qon_text(n: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    textio::qon_to_text(&workloads::chain(n, &workloads::WorkloadParams::default(), &mut rng))
}

fn optimize_line(id: u64, text: &str) -> String {
    let mut req = Request::new(Op::Optimize, Problem::Qon);
    req.id = id;
    req.instance = Some(text.to_string());
    req.to_json_line()
}

/// Parses under `catch_unwind`: `Some(result)` on a clean return,
/// `None` if the parser panicked (which fails the calling test).
fn parse_contained(line: &str) -> Option<Result<Request, String>> {
    catch_unwind(AssertUnwindSafe(|| Request::parse(line))).ok()
}

// ---------------------------------------------------------------------------
// Parser-level: malformed text must yield Err, never a panic.
// ---------------------------------------------------------------------------

#[test]
fn truncated_json_never_panics_and_never_parses() {
    let full = optimize_line(7, &qon_text(5, 3));
    for cut in 0..full.len() {
        if !full.is_char_boundary(cut) {
            continue;
        }
        let prefix = &full[..cut];
        let result = parse_contained(prefix)
            .unwrap_or_else(|| panic!("parse panicked on prefix of len {cut}"));
        // Every strict prefix of a JSON object is unterminated, so the
        // parser must reject it with a message, not accept or crash.
        let err = result.err().unwrap_or_else(|| panic!("truncated prefix {prefix:?} parsed"));
        assert!(!err.is_empty(), "rejection carries a message");
    }
}

#[test]
fn type_confusion_is_rejected_with_structured_messages() {
    let cases: &[&str] = &[
        "",
        "   ",
        "null",
        "42",
        "\"a bare string\"",
        "[1, 2, 3]",
        "{}",
        "{\"op\": 17}",
        "{\"op\": [\"optimize\"]}",
        "{\"op\": \"optimize\", \"instance\": 9}",
        "{\"op\": \"optimize\", \"instance\": \"x\", \"id\": \"seven\"}",
        "{\"op\": \"optimize\", \"instance\": \"x\", \"id\": 1.5}",
        "{\"op\": \"optimize\", \"instance\": \"x\", \"timeout_ms\": -1}",
        "{\"op\": \"optimize\", \"instance\": \"x\", \"cache\": \"yes\"}",
        "{\"op\": \"optimize\", \"instance\": \"x\", \"problem\": \"sudoku\"}",
        "{\"op\": \"optimize\", \"instance\": \"x\"} trailing garbage",
        "{\"op\": \"optimize\", \"instance\": \"x\", \"method\": \"dp\", \"fallback\": \"dp\"}",
        "{\"op\": \"optimize\", \"instance\": \"x\", \"unterminated\": \"",
    ];
    for line in cases {
        let result =
            parse_contained(line).unwrap_or_else(|| panic!("parse panicked on {line:?}"));
        let err = result.err().unwrap_or_else(|| panic!("{line:?} unexpectedly parsed"));
        assert!(!err.is_empty(), "{line:?} rejection carries a message");
    }
}

/// Tiny deterministic xorshift so the mutation fuzz needs no clock and
/// reproduces bit-for-bit across runs.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn seeded_byte_mutations_never_panic_the_parser() {
    let seed_lines = [
        optimize_line(1, &qon_text(5, 5)),
        Request::new(Op::Status, Problem::Qon).to_json_line(),
        Request::new(Op::Shutdown, Problem::Clique).to_json_line(),
    ];
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    for round in 0..600 {
        let base = &seed_lines[round % seed_lines.len()];
        let mut bytes = base.clone().into_bytes();
        // 1–4 random edits: overwrite, insert, delete, or truncate.
        for _ in 0..(1 + rng.next() as usize % 4) {
            if bytes.is_empty() {
                break;
            }
            let pos = rng.next() as usize % bytes.len();
            match rng.next() % 4 {
                0 => bytes[pos] = (rng.next() % 256) as u8,
                1 => bytes.insert(pos, (rng.next() % 256) as u8),
                2 => {
                    bytes.remove(pos);
                }
                _ => bytes.truncate(pos),
            }
        }
        // The server decodes lossily before parsing; mirror that here.
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let result = parse_contained(&line)
            .unwrap_or_else(|| panic!("parse panicked on mutation round {round}: {line:?}"));
        if let Err(msg) = result {
            assert!(!msg.is_empty(), "round {round}: rejection carries a message");
        }
    }
}

// ---------------------------------------------------------------------------
// Server-level: raw-socket abuse must get structured errors, and the
// server must keep answering afterwards.
// ---------------------------------------------------------------------------

/// Runs `server` on a loopback port and hands the address to the
/// closure, which must end with a shutdown request so `run` returns.
fn with_server<F>(cfg: &ServeConfig, client: F) -> aqo_serve::ServiceReport
where
    F: FnOnce(&str),
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = Server::new(cfg);
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&listener).expect("serve loop"));
        client(&addr);
        handle.join().expect("server thread")
    })
}

/// A raw protocol connection: writes go to the stream, reads through
/// one persistent `BufReader` (a fresh reader per reply would drop
/// bytes it had buffered past the first newline).
struct RawConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn connect(addr: &str) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        RawConn { stream, reader }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write bytes");
    }

    fn send_line(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("write line");
        self.stream.write_all(b"\n").expect("write newline");
    }

    fn read_reply(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply line");
        assert!(!line.is_empty(), "server closed the connection mid-conversation");
        line
    }

    /// Drains to EOF and returns how many further bytes arrived.
    fn drain(&mut self) -> usize {
        let mut rest = Vec::new();
        self.reader.read_to_end(&mut rest).expect("drained to EOF");
        rest.len()
    }
}

fn error_kind(line: &str) -> String {
    let doc = json::parse(line).unwrap_or_else(|e| panic!("reply {line:?} parses: {e}"));
    assert!(
        matches!(doc.get("ok"), Some(JsonValue::Bool(false))),
        "expected an error reply, got {line:?}"
    );
    doc.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("reply {line:?} has no error kind"))
        .to_string()
}

fn shutdown(addr: &str) {
    let mut req = Request::new(Op::Shutdown, Problem::Qon);
    req.id = 999;
    aqo_serve::client::oneshot(addr, &req).expect("shutdown ack");
}

#[test]
fn invalid_utf8_line_gets_structured_parse_error() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    let report = with_server(&ServeConfig::default(), |addr| {
        let mut conn = RawConn::connect(addr);
        // A line that is not UTF-8 at all: lossy decoding turns it into
        // replacement characters, which then fail JSON parsing.
        conn.send_raw(b"\xff\xfe\x80{\"op\"\n");
        let kind = error_kind(&conn.read_reply());
        assert_eq!(kind, "parse");
        // The same connection still serves a well-formed request.
        conn.send_line(&Request::new(Op::Status, Problem::Qon).to_json_line());
        let line = conn.read_reply();
        let doc = json::parse(&line).expect("status parses");
        assert!(matches!(doc.get("ok"), Some(JsonValue::Bool(true))));
        drop(conn);
        shutdown(addr);
    });
    assert_eq!(report.reason, "shutdown");
}

#[test]
fn interleaved_garbage_leaves_valid_requests_unharmed() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    let text = qon_text(5, 23);
    let report = with_server(&ServeConfig::default(), |addr| {
        let mut conn = RawConn::connect(addr);
        let garbage: &[&str] =
            &["this is not json", "{\"op\": \"mine-bitcoin\"}", "[]", "{\"op\": 3}"];
        for (i, junk) in garbage.iter().enumerate() {
            // Garbage line: structured parse error, never a hang.
            conn.send_line(junk);
            let kind = error_kind(&conn.read_reply());
            assert_eq!(kind, "parse", "junk {junk:?} classified");
            // Chased by a valid optimize on the same connection.
            conn.send_line(&optimize_line(100 + i as u64, &text));
            let reply = conn.read_reply();
            let doc = json::parse(&reply).expect("optimize reply parses");
            assert!(
                matches!(doc.get("ok"), Some(JsonValue::Bool(true))),
                "valid request after junk {junk:?} failed: {reply}"
            );
        }
        drop(conn);
        shutdown(addr);
    });
    assert_eq!(report.reason, "shutdown");
    assert_eq!(report.ok as usize, 4);
}

#[test]
fn oversized_line_is_evicted_and_server_stays_up() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    let cfg = ServeConfig { max_line_bytes: 512, ..ServeConfig::default() };
    let report = with_server(&cfg, |addr| {
        let mut conn = RawConn::connect(addr);
        let mut flood = vec![b'x'; 4 * 512];
        flood.push(b'\n');
        conn.send_raw(&flood);
        let kind = error_kind(&conn.read_reply());
        assert_eq!(kind, "evicted");
        // The abusive connection is closed after the error reply…
        assert_eq!(conn.drain(), 0, "no further bytes after eviction");
        // …but a fresh connection is served normally.
        let mut fresh = RawConn::connect(addr);
        fresh.send_line(&Request::new(Op::Status, Problem::Qon).to_json_line());
        let doc = json::parse(&fresh.read_reply()).expect("status parses");
        assert!(matches!(doc.get("accepting"), Some(JsonValue::Bool(true))));
        drop(fresh);
        shutdown(addr);
    });
    assert_eq!(report.reason, "shutdown");
    assert_eq!(report.evicted, 1);
}

#[test]
fn slow_loris_partial_line_is_evicted_within_the_deadline() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    let cfg = ServeConfig {
        conn_timeout: Duration::from_millis(20),
        read_deadline: Some(Duration::from_millis(150)),
        ..ServeConfig::default()
    };
    let report = with_server(&cfg, |addr| {
        let mut conn = RawConn::connect(addr);
        // A partial request line, held open with no newline: the reader
        // must evict rather than pin the connection thread forever.
        conn.send_raw(b"{\"op\": \"status\"");
        let kind = error_kind(&conn.read_reply());
        assert_eq!(kind, "evicted");
        assert_eq!(conn.drain(), 0, "connection closed after slow-loris eviction");
        drop(conn);
        shutdown(addr);
    });
    assert_eq!(report.reason, "shutdown");
    assert_eq!(report.evicted, 1);
}
