//! Property test for request-scoped tracing (ISSUE 8): a request served
//! over real TCP must stamp **every** journal event it causes — intake,
//! admission, worker handling, driver tiers, optimizer spans — with the
//! one trace id minted at intake, regardless of worker-pool size. The
//! traced event profile must also be pool-size-invariant: the pool only
//! decides *where* a request runs, never what it journals.
//!
//! The obs registry and journal are process-global, so the whole property
//! runs as a single test function, sweeping `--threads 1/2/4` in order.

use aqo_core::{textio, workloads};
use aqo_obs::json::{self, JsonValue};
use aqo_serve::{Op, Problem, Request, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpListener;

fn qon_text(n: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    textio::qon_to_text(&workloads::chain(n, &workloads::WorkloadParams::default(), &mut rng))
}

fn optimize_req(id: u64, text: &str) -> Request {
    let mut req = Request::new(Op::Optimize, Problem::Qon);
    req.id = id;
    req.instance = Some(text.to_string());
    // The cache would short-circuit the driver on a hit; the property is
    // about the full path, so every run recomputes.
    req.use_cache = false;
    req
}

/// Serves exactly one optimize request on a `threads`-worker pool and
/// returns the journal produced, as parsed JSON lines.
fn serve_one_request(threads: usize, text: &str) -> Vec<JsonValue> {
    aqo_obs::journal::drain(); // isolate this run's events
    let cfg = ServeConfig {
        threads,
        // No sampler: its ticks are timing-dependent and would make the
        // cross-run event-profile comparison flaky.
        obs_interval: None,
        ..ServeConfig::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = Server::new(&cfg);
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&listener).expect("serve loop"));
        let line =
            aqo_serve::client::oneshot(&addr, &optimize_req(42, text)).expect("optimize reply");
        let doc = json::parse(&line).expect("reply parses");
        assert!(matches!(doc.get("ok"), Some(JsonValue::Bool(true))), "reply not ok: {line}");
        let mut shutdown = Request::new(Op::Shutdown, Problem::Qon);
        shutdown.id = 99;
        aqo_serve::client::oneshot(&addr, &shutdown).expect("shutdown ack");
        handle.join().expect("server thread");
    });
    let events = aqo_obs::journal::drain();
    aqo_obs::journal::to_jsonl(&events)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| json::parse(l).expect("journal line parses"))
        .collect()
}

fn num(doc: &JsonValue, key: &str) -> Option<u64> {
    doc.get(key).and_then(JsonValue::as_num).map(|v| v as u64)
}

fn etype(doc: &JsonValue) -> String {
    doc.get("type").and_then(JsonValue::as_str).unwrap_or("?").to_string()
}

#[test]
fn every_event_of_a_served_request_carries_its_trace_id_at_any_pool_size() {
    aqo_obs::set_enabled(true);
    aqo_obs::journal::set_capture(true);
    let text = qon_text(6, 7);
    let mut profiles: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 2, 4] {
        let docs = serve_one_request(threads, &text);

        // The intake event for our request pins down the minted trace id.
        let intake = docs
            .iter()
            .find(|d| etype(d) == "serve_request" && num(d, "id") == Some(42))
            .unwrap_or_else(|| panic!("no serve_request event at threads={threads}"));
        let trace_id = num(intake, "trace_id")
            .unwrap_or_else(|| panic!("intake event untraced at threads={threads}"));
        assert_ne!(trace_id, 0, "trace id 0 is reserved");

        // Everything the request caused must carry that id: the worker
        // re-installs the intake's context, so driver tiers, optimizer
        // internals, and the reply all land in the same trace. Events of
        // *other* traces here can only be the shutdown request's own.
        let traced: Vec<&JsonValue> =
            docs.iter().filter(|d| num(d, "trace_id") == Some(trace_id)).collect();
        let mut types: Vec<String> = traced.iter().map(|d| etype(d)).collect();
        types.sort();
        for want in ["serve_request", "serve_response", "tier_start", "span_start", "span"] {
            assert!(
                types.iter().any(|t| t == want),
                "threads={threads}: no `{want}` event in the request's trace; got {types:?}"
            );
        }
        let span_names: Vec<&str> = traced
            .iter()
            .filter(|d| etype(d) == "span")
            .filter_map(|d| d.get("name").and_then(JsonValue::as_str))
            .collect();
        assert!(
            span_names.contains(&"serve.request"),
            "threads={threads}: no serve.request root span; spans {span_names:?}"
        );
        assert!(
            span_names.iter().any(|n| n.starts_with("tier.")),
            "threads={threads}: no tier span in the trace; spans {span_names:?}"
        );

        // No half-traced stragglers: every driver/optimizer/span event in
        // the journal belongs to our request (the only optimize served).
        for d in &docs {
            let t = etype(d);
            let request_scoped = t.starts_with("tier_")
                || t.starts_with("span")
                || t.starts_with("dp_")
                || t.starts_with("bnb_")
                || t == "engine_bound"
                || t == "budget"
                || t == "budget_charge"
                || t == "serve_response";
            if request_scoped {
                assert_eq!(
                    num(d, "trace_id"),
                    Some(trace_id),
                    "threads={threads}: `{t}` event escaped the request trace"
                );
            }
        }

        // The journal must also pass the schema-v2 nesting check.
        let jsonl = {
            let mut s = String::new();
            for d in &docs {
                s.push_str(&render_back(d));
                s.push('\n');
            }
            s
        };
        let report = aqo_obs::traceview::check(&jsonl).expect("nesting check");
        assert!(report.traces >= 1, "threads={threads}: no traces found");

        profiles.push(types);
    }

    // Pool-size invariance: the request's traced event profile is
    // identical at 1, 2, and 4 workers.
    assert_eq!(profiles[0], profiles[1], "threads=1 vs threads=2 event profiles differ");
    assert_eq!(profiles[1], profiles[2], "threads=2 vs threads=4 event profiles differ");
}

/// Re-serializes a parsed journal line well enough for
/// [`aqo_obs::traceview::check`] (which only reads numeric/string fields).
fn render_back(doc: &JsonValue) -> String {
    fn val(v: &JsonValue, out: &mut String) {
        use std::fmt::Write as _;
        match v {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Num(n) => {
                if n.fract() == 0.0 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::Str(s) => json::escape_into(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    val(item, out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::escape_into(out, k);
                    out.push(':');
                    val(v, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    val(doc, &mut out);
    out
}
