//! End-to-end tests over real TCP: a [`aqo_serve::Server`] on a loopback
//! port, driven by [`aqo_serve::Client`]. Covers the cache-hit path,
//! `status`, admission-control overload, fault injection producing
//! structured errors, idle shutdown, and the drain on `shutdown`.
//!
//! The fault registry and the obs switch are process-global, so the tests
//! serialize on one mutex.

use aqo_core::{textio, workloads};
use aqo_driver::faults::{self, FaultKind};
use aqo_obs::json::{self, JsonValue};
use aqo_serve::{Client, Op, Problem, Request, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpListener;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn qon_text(n: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    textio::qon_to_text(&workloads::chain(n, &workloads::WorkloadParams::default(), &mut rng))
}

fn optimize_req(id: u64, text: &str) -> Request {
    let mut req = Request::new(Op::Optimize, Problem::Qon);
    req.id = id;
    req.instance = Some(text.to_string());
    req
}

fn shutdown_req(id: u64) -> Request {
    let mut req = Request::new(Op::Shutdown, Problem::Qon);
    req.id = id;
    req
}

/// Binds a loopback listener, runs `server` on it in a scoped thread, and
/// hands `(addr, &server)` to the client closure. The closure must end
/// with a `shutdown` request (or rely on the idle timeout) so `run`
/// returns; its report is handed back.
fn with_server<F>(cfg: &ServeConfig, client: F) -> aqo_serve::ServiceReport
where
    F: FnOnce(&str, &Server),
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = Server::new(cfg);
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&listener).expect("serve loop"));
        client(&addr, &server);
        handle.join().expect("server thread")
    })
}

#[test]
fn second_identical_request_is_served_from_cache() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    let text = qon_text(6, 7);
    let report = with_server(&ServeConfig::default(), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let first = client.roundtrip(&optimize_req(1, &text)).expect("first");
        let second = client.roundtrip(&optimize_req(2, &text)).expect("second");
        let doc1 = json::parse(&first).expect("first parses");
        let doc2 = json::parse(&second).expect("second parses");
        assert!(matches!(doc1.get("cached"), Some(JsonValue::Bool(false))));
        assert!(matches!(doc2.get("cached"), Some(JsonValue::Bool(true))));
        assert_eq!(
            doc1.get("cost").and_then(JsonValue::as_str),
            doc2.get("cost").and_then(JsonValue::as_str),
            "cached plan carries the identical cost"
        );
        assert_eq!(
            doc1.get("fingerprint").and_then(JsonValue::as_str),
            doc2.get("fingerprint").and_then(JsonValue::as_str)
        );

        let status = client.roundtrip(&Request::new(Op::Status, Problem::Qon)).expect("status");
        let sdoc = json::parse(&status).expect("status parses");
        let cache = sdoc.get("cache").expect("cache block");
        assert_eq!(cache.get("hits").and_then(JsonValue::as_num), Some(1.0));
        assert_eq!(cache.get("misses").and_then(JsonValue::as_num), Some(1.0));

        client.roundtrip(&shutdown_req(9)).expect("shutdown ack");
    });
    assert_eq!(report.reason, "shutdown");
    assert_eq!(report.ok, 2);
    assert_eq!(report.errors, 0);
    assert_eq!(report.cache.hits, 1);
}

#[test]
fn overload_produces_structured_rejections_and_in_flight_work_drains() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    // One worker, one admission slot, and every request pinned at 200ms:
    // while the first executes, concurrent arrivals must be rejected with
    // the structured `overloaded` error, not queued without bound.
    faults::arm("serve::request", FaultKind::Delay(Duration::from_millis(200)), 32);
    let cfg = ServeConfig { threads: 1, max_inflight: 1, ..ServeConfig::default() };
    let text = qon_text(5, 11);
    let report = with_server(&cfg, |addr, _| {
        let replies = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let text = &text;
                    scope.spawn(move || {
                        aqo_serve::client::oneshot(addr, &optimize_req(i, text)).expect("reply")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect::<Vec<_>>()
        });
        let mut ok = 0;
        let mut overloaded = 0;
        for line in &replies {
            let doc = json::parse(line).expect("reply parses");
            if matches!(doc.get("ok"), Some(JsonValue::Bool(true))) {
                ok += 1;
            } else {
                let kind = doc
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(JsonValue::as_str)
                    .expect("error kind");
                assert_eq!(kind, "overloaded", "unexpected failure: {line}");
                overloaded += 1;
            }
        }
        assert!(ok >= 1, "the admitted request completes");
        assert!(overloaded >= 1, "at least one concurrent request is shed");
        aqo_serve::client::oneshot(addr, &shutdown_req(99)).expect("shutdown");
    });
    faults::clear();
    assert_eq!(report.reason, "shutdown");
    assert_eq!(report.overloaded as usize + report.ok as usize, 4);
}

#[test]
fn injected_fault_becomes_structured_error_and_worker_survives() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    faults::arm("serve::request", FaultKind::Error, 1);
    let text = qon_text(5, 13);
    let report = with_server(&ServeConfig::default(), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let failed = client.roundtrip(&optimize_req(1, &text)).expect("reply");
        let doc = json::parse(&failed).expect("parses");
        assert!(matches!(doc.get("ok"), Some(JsonValue::Bool(false))));
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")).and_then(JsonValue::as_str),
            Some("injected")
        );
        // The fault is spent; the same worker answers the retry.
        let retried = client.roundtrip(&optimize_req(2, &text)).expect("retry");
        let doc = json::parse(&retried).expect("retry parses");
        assert!(matches!(doc.get("ok"), Some(JsonValue::Bool(true))));
        client.roundtrip(&shutdown_req(3)).expect("shutdown");
    });
    faults::clear();
    assert_eq!(report.errors, 1);
    assert_eq!(report.ok, 1);
}

#[test]
fn injected_panic_is_contained_as_structured_error() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    faults::arm("serve::request", FaultKind::Panic, 1);
    let text = qon_text(5, 17);
    let report = with_server(&ServeConfig::default(), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let failed = client.roundtrip(&optimize_req(1, &text)).expect("reply");
        let doc = json::parse(&failed).expect("parses");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")).and_then(JsonValue::as_str),
            Some("panic")
        );
        let retried = client.roundtrip(&optimize_req(2, &text)).expect("retry");
        assert!(matches!(
            json::parse(&retried).expect("retry parses").get("ok"),
            Some(JsonValue::Bool(true))
        ));
        client.roundtrip(&shutdown_req(3)).expect("shutdown");
    });
    faults::clear();
    assert_eq!(report.errors, 1);
    assert_eq!(report.ok, 1);
}

#[test]
fn degradation_ladder_tags_replies_under_load() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    // One worker, every request pinned at 150ms: enqueueing 6 distinct
    // instances drives the in-flight count through the ladder
    // thresholds, so later arrivals must be answered from a weaker
    // chain and tagged, not shed (the cap is high enough that nothing
    // is rejected).
    faults::arm("serve::request", FaultKind::Delay(Duration::from_millis(150)), 32);
    let cfg = ServeConfig { threads: 1, max_inflight: 8, ..ServeConfig::default() };
    let texts: Vec<String> = (0..6).map(|i| qon_text(5, 100 + i)).collect();
    let report = with_server(&cfg, |addr, _| {
        let replies = std::thread::scope(|scope| {
            let handles: Vec<_> = texts
                .iter()
                .enumerate()
                .map(|(i, text)| {
                    scope.spawn(move || {
                        aqo_serve::client::oneshot(addr, &optimize_req(i as u64, text))
                            .expect("reply")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect::<Vec<_>>()
        });
        let mut degraded = 0;
        for line in &replies {
            let doc = json::parse(line).expect("reply parses");
            assert!(
                matches!(doc.get("ok"), Some(JsonValue::Bool(true))),
                "below the cap nothing is shed: {line}"
            );
            if matches!(doc.get("degraded"), Some(JsonValue::Bool(true))) {
                degraded += 1;
                // A degraded answer is heuristic, and honest about it.
                assert!(
                    matches!(doc.get("exact"), Some(JsonValue::Bool(false))),
                    "degraded replies must not claim exactness: {line}"
                );
            }
        }
        assert!(degraded >= 1, "concurrent arrivals ride the ladder: {replies:?}");
        aqo_serve::client::oneshot(addr, &shutdown_req(99)).expect("shutdown");
    });
    faults::clear();
    assert_eq!(report.reason, "shutdown");
    assert_eq!(report.ok, 6, "every request was answered");
    assert_eq!(report.overloaded, 0);
    assert!(report.degraded >= 1, "report counts the degraded answers");
}

#[test]
fn torn_reply_write_is_retried_transparently() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    // The first reply write is torn mid-line and the connection dropped;
    // the retrying client must classify the EOF as transient, reconnect,
    // and get the full answer on the second attempt.
    faults::arm("serve::net::torn_write", FaultKind::Error, 1);
    let text = qon_text(5, 29);
    let retry = aqo_serve::client::RetryConfig::default();
    let report = with_server(&ServeConfig::default(), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let line = client.roundtrip_retry(&optimize_req(1, &text), &retry).expect("retried reply");
        let doc = json::parse(&line).expect("reply parses");
        assert!(matches!(doc.get("ok"), Some(JsonValue::Bool(true))), "retry succeeded: {line}");
        // The plain, non-retrying path confirms the pool is healthy.
        let again = client.roundtrip(&optimize_req(2, &text)).expect("follow-up");
        assert!(matches!(json::parse(&again).expect("parses").get("ok"), Some(JsonValue::Bool(true))));
        client.roundtrip(&shutdown_req(3)).expect("shutdown");
    });
    faults::clear();
    assert_eq!(report.reason, "shutdown");
    assert!(report.ok >= 2, "both requests were answered (the torn one possibly twice)");
}

#[test]
fn idle_timeout_shuts_the_server_down() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    faults::clear();
    let cfg =
        ServeConfig { idle_timeout: Some(Duration::from_millis(150)), ..ServeConfig::default() };
    let report = with_server(&cfg, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let line = client.roundtrip(&Request::new(Op::Status, Problem::Qon)).expect("status");
        assert!(json::parse(&line).is_ok());
        // No further traffic: the idle clock runs out on its own.
    });
    assert_eq!(report.reason, "idle");
}
