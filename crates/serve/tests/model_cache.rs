//! Model-checks the plan-cache lookup/insert protocol with
//! `aqo_core::interleave`.
//!
//! The property: a cache **hit must return the plan that was inserted for
//! the requested key** — never a plan belonging to a different instance
//! that happened to land in the same slot. `PlanCache::lookup` guarantees
//! this by doing the key comparison and the value copy under one lock
//! acquisition (one atomic step in the model). The second model splits
//! that step the way a lock-free "check, then copy" implementation would,
//! and the checker finds the schedule where a concurrent eviction swaps
//! the slot between the two halves.

use aqo_core::interleave::{explore, StepOutcome};

/// The ground truth the invariant checks hits against.
fn plan_of(key: &'static str) -> &'static str {
    match key {
        "A" => "plan-A",
        "B" => "plan-B",
        other => panic!("no plan for key {other}"),
    }
}

/// One cache slot of a capacity-1 shard: both keys contend for it, which
/// is exactly the regime where eviction races a lookup.
#[derive(Clone)]
struct Slot {
    key: &'static str,
    plan: &'static str,
}

#[derive(Clone)]
struct State {
    slot: Option<Slot>,
    /// Reader program counter (0 = not started, counts steps taken).
    pc: usize,
    /// Split protocol only: the reader observed a key match in step 1.
    matched: bool,
    /// What the reader's lookup("A") returned, once complete.
    got: Option<Option<&'static str>>,
    /// Writer finished its evict+insert.
    writer_done: bool,
}

fn init_with_a() -> State {
    State {
        slot: Some(Slot { key: "A", plan: plan_of("A") }),
        pc: 0,
        matched: false,
        got: None,
        writer_done: false,
    }
}

/// The writer thread: one atomic evict+insert replacing the slot with
/// key "B" (in the real shard the whole clock sweep and write happen
/// under one `Mutex` acquisition).
fn writer(s: &mut State) -> StepOutcome {
    if s.writer_done {
        return StepOutcome::Done;
    }
    s.slot = Some(Slot { key: "B", plan: plan_of("B") });
    s.writer_done = true;
    StepOutcome::Done
}

/// Checks completed lookups: a hit for "A" must have returned plan-A.
fn invariant(s: &State, _done: bool) -> Result<(), String> {
    if let Some(Some(plan)) = s.got {
        if plan != plan_of("A") {
            return Err(format!("lookup(\"A\") returned {plan}"));
        }
    }
    Ok(())
}

#[test]
fn atomic_lookup_never_returns_wrong_plan() {
    // lookup("A") as PlanCache implements it: compare key and copy the
    // value inside one lock acquisition — one atomic step.
    let reader = |s: &mut State| {
        if s.pc > 0 {
            return StepOutcome::Done;
        }
        s.pc = 1;
        s.got = Some(match &s.slot {
            Some(slot) if slot.key == "A" => Some(slot.plan),
            _ => None,
        });
        StepOutcome::Done
    };
    let writer = |s: &mut State| writer(s);
    let schedules = explore(&init_with_a(), &[&reader, &writer], &invariant, 8)
        .expect("atomic protocol admits no bad schedule");
    assert!(schedules >= 2, "both orders of two atomic steps explored");
}

#[test]
fn split_lookup_protocol_returns_wrong_plan() {
    // The broken variant: step 1 checks the key under the lock, step 2
    // copies the value after releasing it. A writer step in between
    // replaces the slot, and the reader hands back plan-B for key "A".
    let reader = |s: &mut State| match s.pc {
        0 => {
            s.pc = 1;
            s.matched = matches!(&s.slot, Some(slot) if slot.key == "A");
            StepOutcome::Ran
        }
        1 => {
            s.pc = 2;
            s.got = Some(if s.matched { s.slot.as_ref().map(|slot| slot.plan) } else { None });
            StepOutcome::Done
        }
        _ => StepOutcome::Done,
    };
    let writer = |s: &mut State| writer(s);
    let violation = explore(&init_with_a(), &[&reader, &writer], &invariant, 8)
        .expect_err("the checker must find the check-then-copy race");
    assert!(
        violation.message.contains("plan-B"),
        "violation is the wrong-plan hit: {}",
        violation.message
    );
}
