//! The load generator behind `aqo loadgen`: fires a deterministic mixed
//! QO_N/QO_H workload at a live server, validates every answer against
//! the sequential driver, and emits `BENCH_serve.json`
//! (schema `aqo-bench-serve/v2`).
//!
//! Every request's expected cost is precomputed *in-process* with the
//! same sequential driver defaults the server uses, so "wrong cost" means
//! exactly that: the concurrent service returned a plan whose cost
//! differs from the single-threaded answer for that instance. The
//! acceptance bar is zero.

use crate::client::{Client, RetryConfig};
use crate::proto::{Op, Problem, Request};
use aqo_bignum::BigUint;
use aqo_core::{parallel, textio, workloads};
use aqo_obs::json::{self, JsonValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Which problem families the workload draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// QO_N only.
    Qon,
    /// QO_H only.
    Qoh,
    /// Two thirds QO_N, one third QO_H.
    Mixed,
}

impl Mix {
    /// Parses the `--mix` flag value.
    pub fn parse(s: &str) -> Option<Mix> {
        match s {
            "qon" => Some(Mix::Qon),
            "qoh" => Some(Mix::Qoh),
            "mixed" => Some(Mix::Mixed),
            _ => None,
        }
    }

    /// Wire/report name.
    pub fn name(self) -> &'static str {
        match self {
            Mix::Qon => "qon",
            Mix::Qoh => "qoh",
            Mix::Mixed => "mixed",
        }
    }
}

/// Load-generator configuration (defaults match the committed
/// `BENCH_serve.json` run).
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Requests per concurrency level.
    pub requests: usize,
    /// Concurrency levels, each run in sequence.
    pub concurrency: Vec<usize>,
    /// Problem-family mix.
    pub mix: Mix,
    /// Distinct QO_N instances in the pool (QO_H uses half, min 2).
    pub pool: usize,
    /// Workload seed.
    pub seed: u64,
    /// Retain per-request detail (tier/cost/plan/latency) from the
    /// *first* concurrency level as [`crate::record::RecordedRequest`]s
    /// on the report — the `--record` path. Only the first level is
    /// captured so every request id appears exactly once in the recorded
    /// workload; later levels re-send the same ids for throughput.
    pub record: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".into(),
            requests: 200,
            concurrency: vec![1, 2, 4],
            mix: Mix::Mixed,
            pool: 6,
            seed: 42,
            record: false,
        }
    }
}

/// One concurrency level's measurements.
#[derive(Clone, Debug)]
pub struct LevelResult {
    /// Client threads.
    pub concurrency: usize,
    /// Requests sent (and answered).
    pub requests: usize,
    /// Responses with `ok: false` or transport failures.
    pub errors: usize,
    /// Responses whose cost differed from the sequential driver's.
    /// Degraded responses are excluded: an overloaded server answering
    /// with a tagged heuristic plan is working as designed, and its cost
    /// is bounded-worse, not wrong.
    pub wrong_cost: usize,
    /// Responses tagged `"degraded": true` (overload ladder).
    pub degraded: usize,
    /// Responses served from the plan cache.
    pub cached: usize,
    /// Wall-clock for the whole level, microseconds.
    pub elapsed_us: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile request latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile request latency, microseconds.
    pub p999_us: u64,
    /// Requests per second over the level.
    pub throughput_rps: f64,
    /// Server-side cache hits during the level (status delta).
    pub cache_hits: u64,
    /// Server-side cache misses during the level (status delta).
    pub cache_misses: u64,
    /// `hits / (hits + misses)` during the level.
    pub cache_hit_rate: f64,
}

/// The full run: every level plus totals.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Echo of the mix.
    pub mix: Mix,
    /// QO_N pool size.
    pub pool_qon: usize,
    /// QO_H pool size.
    pub pool_qoh: usize,
    /// Requests per level.
    pub requests_per_level: usize,
    /// Per-level measurements.
    pub levels: Vec<LevelResult>,
    /// Per-request observations from the first concurrency level, sorted
    /// by request id ([`LoadgenConfig::record`]; empty otherwise). Not
    /// part of the `aqo-bench-serve/v2` JSON — the CLI writes them as an
    /// `aqo-workload/v1` file instead.
    pub recorded: Vec<crate::record::RecordedRequest>,
}

impl LoadgenReport {
    /// Total requests across levels.
    pub fn total_requests(&self) -> usize {
        self.levels.iter().map(|l| l.requests).sum()
    }

    /// Total wrong-cost responses across levels (must be 0).
    pub fn total_wrong_cost(&self) -> usize {
        self.levels.iter().map(|l| l.wrong_cost).sum()
    }

    /// Total error responses across levels.
    pub fn total_errors(&self) -> usize {
        self.levels.iter().map(|l| l.errors).sum()
    }

    /// Total degraded responses across levels.
    pub fn total_degraded(&self) -> usize {
        self.levels.iter().map(|l| l.degraded).sum()
    }

    /// `BENCH_serve.json` rendering, schema `aqo-bench-serve/v2` (v2 adds
    /// `p90_us`/`p999_us` per level, computed from the same log-bucketed
    /// histogram that powers the live `metrics` op).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"aqo-bench-serve/v2\",\n");
        let _ = writeln!(out, "  \"mix\": \"{}\",", self.mix.name());
        let _ = writeln!(out, "  \"pool_qon\": {},", self.pool_qon);
        let _ = writeln!(out, "  \"pool_qoh\": {},", self.pool_qoh);
        let _ = writeln!(out, "  \"requests_per_level\": {},", self.requests_per_level);
        let _ = writeln!(out, "  \"total_requests\": {},", self.total_requests());
        let _ = writeln!(out, "  \"total_errors\": {},", self.total_errors());
        let _ = writeln!(out, "  \"total_wrong_cost\": {},", self.total_wrong_cost());
        let _ = writeln!(out, "  \"total_degraded\": {},", self.total_degraded());
        out.push_str("  \"levels\": [\n");
        for (i, l) in self.levels.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"concurrency\": {}, \"requests\": {}, \"errors\": {}, \
                 \"wrong_cost\": {}, \"degraded\": {}, \"cached\": {}, \"elapsed_us\": {}, \
                 \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
                 \"throughput_rps\": {:.1}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}}}",
                l.concurrency,
                l.requests,
                l.errors,
                l.wrong_cost,
                l.degraded,
                l.cached,
                l.elapsed_us,
                l.p50_us,
                l.p90_us,
                l.p99_us,
                l.p999_us,
                l.throughput_rps,
                l.cache_hits,
                l.cache_misses,
                l.cache_hit_rate,
            );
            out.push_str(if i + 1 < self.levels.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One pre-built request with its expected (sequential-driver) answer.
struct Prepared {
    req: Request,
    expected_cost: String,
}

/// Builds the instance pool and precomputes expected costs with the
/// sequential driver (threads = 1, default chains, no budget).
fn prepare(cfg: &LoadgenConfig) -> Result<(Vec<Prepared>, usize, usize), String> {
    let params = workloads::WorkloadParams::default();
    let mut qon = Vec::new();
    let mut qoh = Vec::new();
    let pool_qon = cfg.pool.max(1);
    let pool_qoh = (cfg.pool / 2).max(2);
    if cfg.mix != Mix::Qoh {
        for i in 0..pool_qon {
            let n = 6 + (i % 4);
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(i as u64));
            let inst = if i % 2 == 0 {
                workloads::chain(n, &params, &mut rng)
            } else {
                workloads::cycle(n, &params, &mut rng)
            };
            let outcome = aqo_driver::optimize_qon(&inst, &aqo_driver::QonDriverConfig::default())
                .map_err(|e| format!("precompute qon[{i}]: {e}"))?;
            qon.push((textio::qon_to_text(&inst), outcome.optimum.cost.to_string()));
        }
    }
    if cfg.mix != Mix::Qon {
        for i in 0..pool_qoh {
            let n = 5 + (i % 2);
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1000 + i as u64));
            let base = workloads::chain(n, &params, &mut rng);
            // Memory = product of all relation sizes: every intermediate
            // is bounded by it and η < 1, so hjmin never exceeds M and
            // the exhaustive tier always finds a feasible plan.
            let memory = base
                .sizes()
                .iter()
                .fold(BigUint::from(1u64), |acc, s| &acc * s);
            let inst = aqo_core::qoh::QoHInstance::new(
                base.graph().clone(),
                base.sizes().to_vec(),
                base.selectivity().clone(),
                memory,
            );
            let outcome = aqo_driver::optimize_qoh(&inst, &aqo_driver::QohDriverConfig::default())
                .map_err(|e| format!("precompute qoh[{i}]: {e}"))?;
            qoh.push((textio::qoh_to_text(&inst), outcome.plan.cost.to_string()));
        }
    }
    let mut prepared = Vec::with_capacity(cfg.requests);
    for j in 0..cfg.requests {
        let use_qoh = match cfg.mix {
            Mix::Qon => false,
            Mix::Qoh => true,
            Mix::Mixed => j % 3 == 2,
        };
        let (pool, problem) = if use_qoh { (&qoh, Problem::Qoh) } else { (&qon, Problem::Qon) };
        let (text, expected) = &pool[j % pool.len()];
        let mut req = Request::new(Op::Optimize, problem);
        req.id = j as u64;
        req.instance = Some(text.clone());
        prepared.push(Prepared { req, expected_cost: expected.clone() });
    }
    Ok((prepared, qon.len(), qoh.len()))
}

/// Server-side cache counters, read via a `status` round trip.
fn cache_counters(addr: &str) -> Result<(u64, u64), String> {
    let mut req = Request::new(Op::Status, Problem::Qon);
    req.id = u64::MAX >> 1;
    let line = crate::client::oneshot(addr, &req).map_err(|e| format!("status: {e}"))?;
    let doc = json::parse(&line).map_err(|e| format!("status response: {e}"))?;
    let cache = doc.get("cache").ok_or("status response has no cache object")?;
    let field = |k: &str| {
        cache
            .get(k)
            .and_then(JsonValue::as_num)
            .map(|n| n as u64)
            .ok_or_else(|| format!("status cache has no `{k}`"))
    };
    Ok((field("hits")?, field("misses")?))
}

/// What one client thread measured.
#[derive(Default)]
struct WorkerTally {
    latencies_us: Vec<u64>,
    errors: usize,
    wrong_cost: usize,
    degraded: usize,
    cached: usize,
    /// Per-request observations (recording levels only) — the detail the
    /// aggregation below used to discard.
    recorded: Vec<crate::record::RecordedRequest>,
}

/// Runs the full loadgen: every concurrency level in sequence against
/// `cfg.addr`. Fails fast on transport errors to the status endpoint;
/// per-request transport errors are counted, not fatal.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let (prepared, pool_qon, pool_qoh) = prepare(cfg)?;
    let mut levels = Vec::new();
    let mut recorded = Vec::new();
    for (level_idx, &c) in cfg.concurrency.iter().enumerate() {
        let c = c.max(1);
        let recording = cfg.record && level_idx == 0;
        let (hits0, misses0) = cache_counters(&cfg.addr)?;
        let t0 = std::time::Instant::now();
        let retry = RetryConfig::default();
        let tallies = parallel::run_workers(c, |w| {
            let mut tally = WorkerTally::default();
            let mut client =
                match Client::connect_with_timeout(&cfg.addr, retry.read_timeout) {
                    Ok(cl) => cl,
                    Err(_) => {
                        // Count every request this worker owned as an error.
                        tally.errors = (w..prepared.len()).step_by(c).count();
                        return tally;
                    }
                };
            for p in prepared.iter().skip(w).step_by(c) {
                let r0 = std::time::Instant::now();
                // Retrying roundtrip: transient faults (overload,
                // injected errors, dropped connections) are absorbed with
                // backoff; only exhausted retries count as errors.
                let line = match client.roundtrip_retry(&p.req, &retry) {
                    Ok(l) => l,
                    Err(_) => {
                        tally.errors += 1;
                        let _ = client.reconnect();
                        continue;
                    }
                };
                let latency_us = r0.elapsed().as_micros() as u64;
                tally.latencies_us.push(latency_us);
                match json::parse(&line) {
                    Ok(doc) => {
                        if !matches!(doc.get("ok"), Some(JsonValue::Bool(true))) {
                            tally.errors += 1;
                            continue;
                        }
                        if recording {
                            if let Some(rec) =
                                crate::record::capture_from_json(&p.req, &doc, latency_us)
                            {
                                tally.recorded.push(rec);
                            }
                        }
                        if matches!(doc.get("cached"), Some(JsonValue::Bool(true))) {
                            tally.cached += 1;
                        }
                        if matches!(doc.get("degraded"), Some(JsonValue::Bool(true))) {
                            // Tagged heuristic answer under overload: the
                            // exact-cost oracle does not apply to it.
                            tally.degraded += 1;
                            continue;
                        }
                        let cost = doc.get("cost").and_then(JsonValue::as_str);
                        if cost != Some(p.expected_cost.as_str()) {
                            tally.wrong_cost += 1;
                        }
                    }
                    Err(_) => tally.errors += 1,
                }
            }
            tally
        });
        let elapsed_us = t0.elapsed().as_micros().max(1) as u64;
        let (hits1, misses1) = cache_counters(&cfg.addr)?;
        if recording {
            for t in &tallies {
                recorded.extend(t.recorded.iter().cloned());
            }
            recorded.sort_by_key(|r| r.id);
        }
        // Quantiles come from the same log-bucketed histogram the live
        // `metrics` op uses, so offline BENCH numbers and online `aqo top`
        // numbers share one definition (half-octave resolution).
        let hist = aqo_obs::Histogram::detached();
        let mut answered = 0usize;
        for t in &tallies {
            for &us in &t.latencies_us {
                hist.record_always(us);
                answered += 1;
            }
        }
        let hits = hits1.saturating_sub(hits0);
        let misses = misses1.saturating_sub(misses0);
        levels.push(LevelResult {
            concurrency: c,
            requests: prepared.len(),
            errors: tallies.iter().map(|t| t.errors).sum(),
            wrong_cost: tallies.iter().map(|t| t.wrong_cost).sum(),
            degraded: tallies.iter().map(|t| t.degraded).sum(),
            cached: tallies.iter().map(|t| t.cached).sum(),
            elapsed_us,
            p50_us: hist.quantile(0.50),
            p90_us: hist.quantile(0.90),
            p99_us: hist.quantile(0.99),
            p999_us: hist.quantile(0.999),
            throughput_rps: answered as f64 / (elapsed_us as f64 / 1e6),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
        });
    }
    Ok(LoadgenReport {
        mix: cfg.mix,
        pool_qon,
        pool_qoh,
        requests_per_level: cfg.requests,
        levels,
        recorded,
    })
}
