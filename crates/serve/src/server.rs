//! The resident service: TCP/stdio intake, admission control, worker
//! pool, graceful shutdown.
//!
//! # Threading model
//!
//! * The **acceptor** (the thread that called [`Server::run`]) polls a
//!   non-blocking listener, spawning one scoped **connection thread** per
//!   client. Connection threads parse request lines, answer `status` and
//!   `shutdown` immediately, and submit optimize/explain work through the
//!   admission controller.
//! * A fixed **worker pool** (built on
//!   [`aqo_core::parallel::run_workers`]) drains the bounded queue and
//!   runs [`Engine::handle`]; replies are written back under the owning
//!   connection's writer lock, so concurrent replies to one client never
//!   interleave bytes.
//! * **Admission control**: `queued + executing` is capped at
//!   `max_inflight`, decided under the queue mutex. Past the cap the
//!   request is answered immediately with a structured `"overloaded"`
//!   error — the queue never grows without bound and a burst cannot wedge
//!   the service.
//! * **Graceful shutdown** (a `shutdown` request, or the idle timeout):
//!   admission closes, queued and executing work drains, workers exit,
//!   connection threads notice via their read timeout and hang up, and
//!   [`Server::run`] returns a [`ServiceReport`] summary. The CLI then
//!   flushes the trace journal exactly as `aqo optimize` does.

use crate::engine::Engine;
use crate::proto::{ErrReply, ErrorKind, Op, Reply, Request, StatusReply};
use aqo_core::parallel;
use std::collections::VecDeque;
use std::fmt;
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker-pool size (0 = one worker per hardware thread).
    pub threads: usize,
    /// Admission cap on `queued + executing` requests.
    pub max_inflight: usize,
    /// Plan-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Shut down after this long with no intake and nothing in flight.
    pub idle_timeout: Option<Duration>,
    /// Deadline applied to requests that carry no `timeout_ms`.
    pub default_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 4,
            max_inflight: 64,
            cache_capacity: 1024,
            idle_timeout: None,
            default_timeout: None,
        }
    }
}

/// The final service summary, in the same spirit as the driver's
/// `DriverReport`: what ran, what was rejected, what the cache did.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Why the server stopped (`"shutdown"` or `"idle"`).
    pub reason: &'static str,
    /// Requests parsed (all ops).
    pub requests: u64,
    /// Optimize/explain replies that succeeded.
    pub ok: u64,
    /// Optimize/explain replies that failed.
    pub errors: u64,
    /// Requests rejected by admission control.
    pub overloaded: u64,
    /// Plan-cache counters at shutdown.
    pub cache: crate::cache::CacheStats,
    /// Wall-clock service lifetime.
    pub elapsed: Duration,
}

impl fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reason={} requests={} ok={} errors={} overloaded={} \
             cache_hits={} cache_misses={} cache_evictions={} elapsed={:.3}s",
            self.reason,
            self.requests,
            self.ok,
            self.errors,
            self.overloaded,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.elapsed.as_secs_f64(),
        )
    }
}

impl ServiceReport {
    /// JSON rendering for `--report-json` (hand-rolled, like
    /// `DriverReport::to_json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"reason\": \"{}\",\n  \"requests\": {},\n  \"ok\": {},\n  \
             \"errors\": {},\n  \"overloaded\": {},\n  \"cache\": {{\"hits\": {}, \
             \"misses\": {}, \"inserts\": {}, \"evictions\": {}, \"len\": {}, \
             \"capacity\": {}}},\n  \"elapsed_ms\": {:.3}\n}}\n",
            self.reason,
            self.requests,
            self.ok,
            self.errors,
            self.overloaded,
            self.cache.hits,
            self.cache.misses,
            self.cache.inserts,
            self.cache.evictions,
            self.cache.len,
            self.cache.capacity,
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// A queued unit of work: the parsed request plus where to write the
/// reply.
struct Job {
    req: Request,
    out: SharedWriter,
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

struct QueueState {
    queue: VecDeque<Job>,
    executing: usize,
}

/// The service. Construct with [`Server::new`], then call [`Server::run`]
/// (TCP) or [`Server::run_stdio`] once; both block until shutdown and
/// return the [`ServiceReport`].
pub struct Server {
    engine: Engine,
    workers: usize,
    max_inflight: usize,
    idle_timeout: Option<Duration>,
    state: Mutex<QueueState>,
    work_cv: Condvar,
    accepting: AtomicBool,
    shutdown: AtomicBool,
    /// `"shutdown"` until the idle path claims it. Guarded by `state`.
    reason: Mutex<&'static str>,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    last_intake: Mutex<Instant>,
    started: Instant,
}

impl Server {
    /// Builds a server; `cfg.threads == 0` resolves to the hardware
    /// thread count.
    pub fn new(cfg: &ServeConfig) -> Self {
        Server {
            engine: Engine::new(cfg.cache_capacity, cfg.default_timeout),
            workers: parallel::resolve_threads(cfg.threads),
            max_inflight: cfg.max_inflight.max(1),
            idle_timeout: cfg.idle_timeout,
            state: Mutex::new(QueueState { queue: VecDeque::new(), executing: 0 }),
            work_cv: Condvar::new(),
            accepting: AtomicBool::new(true),
            shutdown: AtomicBool::new(false),
            reason: Mutex::new("shutdown"),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            last_intake: Mutex::new(Instant::now()),
            started: Instant::now(),
        }
    }

    /// The engine (for tests that want the cache).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Serves `listener` until shutdown; returns the final summary.
    pub fn run(&self, listener: &TcpListener) -> std::io::Result<ServiceReport> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            // The worker pool runs inside one scoped thread; run_workers
            // fans it out to `self.workers` OS threads and joins them.
            let pool = scope.spawn(|| {
                parallel::run_workers(self.workers, |_t| self.worker_loop());
            });
            let mut accept_err = None;
            loop {
                // ordering: Relaxed — monotone stop flag; the acceptor
                // only stops taking new connections, all queue state is
                // synchronized by the state mutex.
                if self.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        self.touch_intake();
                        scope.spawn(move || self.serve_connection(stream));
                    }
                    Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                        self.maybe_idle_shutdown();
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == IoErrorKind::Interrupted => {}
                    Err(e) => {
                        // A fatal listener error still drains in-flight
                        // work before surfacing, so workers and
                        // connection threads can be joined.
                        accept_err = Some(e);
                        self.begin_shutdown("shutdown");
                        break;
                    }
                }
            }
            // Drain: wait until queued and executing work has finished,
            // then the workers (who saw the shutdown flag) exit and the
            // pool thread joins them.
            let mut st = self.lock_state();
            while !st.queue.is_empty() || st.executing > 0 {
                st = self.work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            drop(st);
            self.work_cv.notify_all();
            pool.join().expect("worker pool panicked");
            match accept_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })?;
        Ok(self.report())
    }

    /// Serves newline-delimited requests on stdin/stdout, sequentially
    /// (scripting/debug transport — no pool, no admission, same engine).
    pub fn run_stdio(&self) -> ServiceReport {
        let stdin = std::io::stdin();
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            if line.trim().is_empty() {
                continue;
            }
            if self.intake_line(line.trim_end(), &out, true) {
                break;
            }
        }
        self.begin_shutdown("shutdown");
        self.report()
    }

    fn report(&self) -> ServiceReport {
        ServiceReport {
            reason: *self.reason.lock().unwrap_or_else(PoisonError::into_inner),
            // ordering: Relaxed — statistics snapshot after the pool has
            // been joined; no synchronization is carried by the counters.
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed), // ordering: stats snapshot
            errors: self.errors.load(Ordering::Relaxed), // ordering: stats snapshot
            overloaded: self.overloaded.load(Ordering::Relaxed), // ordering: stats snapshot
            cache: self.engine.cache().stats(),
            elapsed: self.started.elapsed(),
        }
    }

    fn touch_intake(&self) {
        *self.last_intake.lock().unwrap_or_else(PoisonError::into_inner) = Instant::now();
    }

    /// Idle shutdown: no intake for `idle_timeout` and nothing in flight.
    fn maybe_idle_shutdown(&self) {
        let Some(idle) = self.idle_timeout else { return };
        let quiet = self
            .last_intake
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .elapsed()
            >= idle;
        if !quiet {
            return;
        }
        let st = self.lock_state();
        if st.queue.is_empty() && st.executing == 0 {
            drop(st);
            self.begin_shutdown("idle");
        }
    }

    /// Closes admission and wakes everyone. Idempotent; the first caller
    /// decides the recorded reason.
    fn begin_shutdown(&self, reason: &'static str) {
        let _guard = self.lock_state();
        // ordering: Relaxed — the flags are only ever set under the state
        // lock and every reader either holds that lock or re-checks it
        // before acting on queue contents.
        if !self.shutdown.swap(true, Ordering::Relaxed) {
            *self.reason.lock().unwrap_or_else(PoisonError::into_inner) = reason;
            // ordering: Relaxed — see above.
            self.accepting.store(false, Ordering::Relaxed);
            if aqo_obs::enabled() {
                aqo_obs::journal::event("serve_shutdown", vec![("reason", reason.into())]);
            }
        }
        self.work_cv.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = self.lock_state();
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        st.executing += 1;
                        self.publish_gauges(&st);
                        break Some(job);
                    }
                    // ordering: Relaxed — read under the state lock that
                    // `begin_shutdown` holds while setting the flag.
                    if self.shutdown.load(Ordering::Relaxed) {
                        break None;
                    }
                    st = self.work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some(job) = job else { return };
            let reply = self.engine.handle(&job.req);
            // ordering: Relaxed — statistics counters only.
            match reply.is_ok() {
                true => self.ok.fetch_add(1, Ordering::Relaxed), // ordering: stats only
                false => self.errors.fetch_add(1, Ordering::Relaxed), // ordering: stats only
            };
            write_reply(&job.out, &reply);
            let mut st = self.lock_state();
            st.executing -= 1;
            self.publish_gauges(&st);
            drop(st);
            // Wake the drain waiter (and any idle workers).
            self.work_cv.notify_all();
        }
    }

    fn publish_gauges(&self, st: &QueueState) {
        if aqo_obs::enabled() {
            aqo_obs::gauge("serve.queue_depth").set(st.queue.len() as u64);
            aqo_obs::gauge("serve.inflight").set((st.queue.len() + st.executing) as u64);
        }
    }

    /// One client connection: read lines, fast-path control ops, submit
    /// the rest. Returns when the client hangs up or the server stops.
    fn serve_connection(&self, stream: TcpStream) {
        // The read timeout is what lets this thread notice shutdown while
        // blocked on a quiet client. Nagle + delayed ACK adds ~40ms to
        // every one-line round trip, so turn it off.
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(writer)));
        let mut reader = LineReader::new(stream);
        loop {
            // ordering: Relaxed — monotone stop flag; worst case this
            // connection reads one more line before hanging up.
            let stop = || self.shutdown.load(Ordering::Relaxed);
            match reader.next_line(&stop) {
                Ok(Some(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if self.intake_line(line.trim_end(), &out, false) {
                        return;
                    }
                }
                Ok(None) | Err(_) => return,
            }
        }
    }

    /// Parses and routes one request line; returns `true` when the
    /// connection (or stdio loop) should stop reading. `direct` executes
    /// optimize/explain inline instead of queueing (the stdio transport).
    fn intake_line(&self, line: &str, out: &SharedWriter, direct: bool) -> bool {
        self.touch_intake();
        let req = match Request::parse(line) {
            Ok(r) => r,
            Err(message) => {
                write_reply(
                    out,
                    &Reply::Err(ErrReply { id: 0, kind: ErrorKind::Parse, message }),
                );
                return false;
            }
        };
        self.note_request(&req);
        match req.op {
            Op::Status => {
                write_reply(out, &self.status_reply(req.id));
                false
            }
            Op::Shutdown => {
                write_reply(out, &Reply::ShutdownAck { id: req.id });
                self.begin_shutdown("shutdown");
                true
            }
            Op::Optimize | Op::Explain => {
                if direct {
                    let reply = self.engine.handle(&req);
                    // ordering: Relaxed — statistics counters only.
                    match reply.is_ok() {
                        true => self.ok.fetch_add(1, Ordering::Relaxed), // ordering: stats only
                        false => self.errors.fetch_add(1, Ordering::Relaxed), // ordering: stats only
                    };
                    write_reply(out, &reply);
                } else if let Some(rejection) = self.submit(req, out) {
                    write_reply(out, &rejection);
                }
                false
            }
        }
    }

    /// Admission control: enqueue, or return the structured rejection.
    fn submit(&self, req: Request, out: &SharedWriter) -> Option<Reply> {
        let mut st = self.lock_state();
        // ordering: Relaxed — read under the same lock `begin_shutdown`
        // sets it under.
        if !self.accepting.load(Ordering::Relaxed) {
            return Some(Reply::Err(ErrReply {
                id: req.id,
                kind: ErrorKind::Shutdown,
                message: "server is shutting down".into(),
            }));
        }
        let inflight = st.queue.len() + st.executing;
        if inflight >= self.max_inflight {
            // ordering: Relaxed — statistics counter only.
            self.overloaded.fetch_add(1, Ordering::Relaxed);
            if aqo_obs::enabled() {
                aqo_obs::counter_handle!("serve.overloaded").inc();
                aqo_obs::journal::event(
                    "serve_overloaded",
                    vec![("id", req.id.into()), ("inflight", inflight.into())],
                );
            }
            return Some(Reply::Err(ErrReply {
                id: req.id,
                kind: ErrorKind::Overloaded,
                message: format!(
                    "admission control: {inflight} requests in flight (cap {})",
                    self.max_inflight
                ),
            }));
        }
        st.queue.push_back(Job { req, out: Arc::clone(out) });
        self.publish_gauges(&st);
        drop(st);
        self.work_cv.notify_one();
        None
    }

    fn note_request(&self, req: &Request) {
        // ordering: Relaxed — statistics counter only.
        self.requests.fetch_add(1, Ordering::Relaxed);
        if aqo_obs::enabled() {
            aqo_obs::counter(&format!("serve.requests.{}", req.op.name())).inc();
            aqo_obs::journal::event(
                "serve_request",
                vec![
                    ("id", req.id.into()),
                    ("op", req.op.name().into()),
                    ("problem", req.problem.name().into()),
                ],
            );
        }
    }

    fn status_reply(&self, id: u64) -> Reply {
        let (queue_depth, executing) = {
            let st = self.lock_state();
            (st.queue.len(), st.executing)
        };
        let cache = self.engine.cache().stats();
        Reply::Status(Box::new(StatusReply {
            id,
            workers: self.workers,
            queue_depth,
            executing,
            max_inflight: self.max_inflight,
            // ordering: Relaxed — statistics snapshot only.
            accepting: self.accepting.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed), // ordering: stats snapshot
            responses_ok: self.ok.load(Ordering::Relaxed), // ordering: stats snapshot
            responses_error: self.errors.load(Ordering::Relaxed), // ordering: stats snapshot
            overloaded: self.overloaded.load(Ordering::Relaxed), // ordering: stats snapshot
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_inserts: cache.inserts,
            cache_evictions: cache.evictions,
            cache_len: cache.len,
            cache_capacity: cache.capacity,
            uptime_us: self.started.elapsed().as_micros() as u64,
        }))
    }
}

/// Serializes the reply and writes it as one line under the connection's
/// writer lock. Write errors mean the client hung up; the reply is
/// dropped (the *request* was still counted and executed).
fn write_reply(out: &SharedWriter, reply: &Reply) {
    let mut line = reply.to_json_line();
    line.push('\n');
    let mut w = out.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

/// Incremental newline-delimited reader over a socket with a read
/// timeout: timeouts poll the `stop` flag instead of aborting the
/// connection, so a quiet client does not pin the thread past shutdown.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        LineReader { stream, pending: Vec::new() }
    }

    /// The next full line (without the newline), `None` on EOF or stop.
    fn next_line(&mut self, stop: &dyn Fn() -> bool) -> std::io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop();
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            if stop() {
                return Ok(None);
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(None),
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock
                        || e.kind() == IoErrorKind::TimedOut
                        || e.kind() == IoErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}
