//! The resident service: TCP/stdio intake, admission control, worker
//! pool, graceful shutdown.
//!
//! # Threading model
//!
//! * The **acceptor** (the thread that called [`Server::run`]) polls a
//!   non-blocking listener, spawning one scoped **connection thread** per
//!   client. Connection threads parse request lines, answer `status` and
//!   `shutdown` immediately, and submit optimize/explain work through the
//!   admission controller.
//! * A fixed **worker pool** (built on
//!   [`aqo_core::parallel::run_workers`]) drains the bounded queue and
//!   runs [`Engine::handle`]; replies are written back under the owning
//!   connection's writer lock, so concurrent replies to one client never
//!   interleave bytes.
//! * **Admission control**: `queued + executing` is capped at
//!   `max_inflight`, decided under the queue mutex. Past the cap the
//!   request is answered immediately with a structured `"overloaded"`
//!   error — the queue never grows without bound and a burst cannot wedge
//!   the service.
//! * **Graceful shutdown** (a `shutdown` request, or the idle timeout):
//!   admission closes, queued and executing work drains, workers exit,
//!   connection threads notice via their read timeout and hang up, and
//!   [`Server::run`] returns a [`ServiceReport`] summary. The CLI then
//!   flushes the trace journal exactly as `aqo optimize` does.

use crate::engine::{Degrade, Engine};
use crate::proto::{ErrReply, ErrorKind, Op, Reply, Request, StatusReply};
use aqo_core::faults;
use aqo_core::parallel;
use std::collections::VecDeque;
use std::fmt;
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Socket read-timeout tick: how often a blocked connection thread wakes
/// to poll the shutdown flag (and the slow-loris deadline). Overridable
/// with `--conn-timeout-ms`.
pub const DEFAULT_CONN_TIMEOUT: Duration = Duration::from_millis(100);

/// How long a connection may hold a *partial* request line before it is
/// evicted as a slow-loris client. Complete lines reset the clock.
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(10);

/// Longest accepted request line. Instances are inline text, so real
/// requests are a few KiB; a client streaming an unbounded line is
/// evicted at this limit instead of growing the buffer forever.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Socket write timeout: a client that stops draining its receive buffer
/// blocks the writer at most this long before the reply is abandoned.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Retry hint attached to `overloaded` rejections: long enough for a
/// queue of polynomial-tier requests to drain, short enough that clients
/// retry within human patience.
pub const RETRY_AFTER_MS: u64 = 50;

/// Tuning knobs for [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker-pool size (0 = one worker per hardware thread).
    pub threads: usize,
    /// Admission cap on `queued + executing` requests.
    pub max_inflight: usize,
    /// Plan-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Shut down after this long with no intake and nothing in flight.
    pub idle_timeout: Option<Duration>,
    /// Deadline applied to requests that carry no `timeout_ms`.
    pub default_timeout: Option<Duration>,
    /// Socket read-timeout tick (`--conn-timeout-ms`); see
    /// [`DEFAULT_CONN_TIMEOUT`].
    pub conn_timeout: Duration,
    /// Slow-loris deadline on partial lines (`None` disables eviction).
    pub read_deadline: Option<Duration>,
    /// Request-line size limit in bytes.
    pub max_line_bytes: usize,
    /// Whether overload walks the graceful-degradation ladder before
    /// shedding (`false`: shed at the cap exactly as before).
    pub degrade: bool,
    /// Plan-cache snapshot file (`--cache-snapshot`): loaded on startup
    /// for a warm cache, rewritten atomically at shutdown.
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Observability sampling interval (`--obs-interval-ms`): how often
    /// the sampler thread captures counter deltas, gauge levels, and
    /// histogram quantiles into the [`aqo_obs::series`] rings. `None`
    /// disables the sampler (TCP transport only; stdio never samples).
    pub obs_interval: Option<Duration>,
    /// Workload recording sink (`--record`): every successful,
    /// non-degraded optimize reply is captured into it (see
    /// [`crate::record`]); the caller drains it after the server stops
    /// and writes the `aqo-workload/v1` file.
    pub record: Option<crate::record::RecordSink>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 4,
            max_inflight: 64,
            cache_capacity: 1024,
            idle_timeout: None,
            default_timeout: None,
            conn_timeout: DEFAULT_CONN_TIMEOUT,
            read_deadline: Some(DEFAULT_READ_DEADLINE),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            degrade: true,
            snapshot_path: None,
            obs_interval: Some(Duration::from_secs(1)),
            record: None,
        }
    }
}

/// The final service summary, in the same spirit as the driver's
/// `DriverReport`: what ran, what was rejected, what the cache did.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Why the server stopped (`"shutdown"` or `"idle"`).
    pub reason: &'static str,
    /// Requests parsed (all ops).
    pub requests: u64,
    /// Optimize/explain replies that succeeded.
    pub ok: u64,
    /// Optimize/explain replies that failed.
    pub errors: u64,
    /// Requests rejected by admission control.
    pub overloaded: u64,
    /// Requests answered from a degraded (overload-weakened) chain.
    pub degraded: u64,
    /// Connections evicted for protocol abuse (slow-loris, oversized line).
    pub evicted: u64,
    /// Plan-cache counters at shutdown.
    pub cache: crate::cache::CacheStats,
    /// Wall-clock service lifetime.
    pub elapsed: Duration,
}

impl fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reason={} requests={} ok={} errors={} overloaded={} degraded={} evicted={} \
             cache_hits={} cache_misses={} cache_evictions={} elapsed={:.3}s",
            self.reason,
            self.requests,
            self.ok,
            self.errors,
            self.overloaded,
            self.degraded,
            self.evicted,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.elapsed.as_secs_f64(),
        )
    }
}

impl ServiceReport {
    /// JSON rendering for `--report-json` (hand-rolled, like
    /// `DriverReport::to_json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"reason\": \"{}\",\n  \"requests\": {},\n  \"ok\": {},\n  \
             \"errors\": {},\n  \"overloaded\": {},\n  \"degraded\": {},\n  \
             \"evicted\": {},\n  \"cache\": {{\"hits\": {}, \
             \"misses\": {}, \"inserts\": {}, \"evictions\": {}, \"len\": {}, \
             \"capacity\": {}}},\n  \"elapsed_ms\": {:.3}\n}}\n",
            self.reason,
            self.requests,
            self.ok,
            self.errors,
            self.overloaded,
            self.degraded,
            self.evicted,
            self.cache.hits,
            self.cache.misses,
            self.cache.inserts,
            self.cache.evictions,
            self.cache.len,
            self.cache.capacity,
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// A queued unit of work: the parsed request, where to write the reply,
/// and the ladder level admission control chose for it.
struct Job {
    req: Request,
    out: SharedWriter,
    degrade: Degrade,
    /// Trace id minted at intake (0 when collection is disabled); the
    /// worker re-installs it so the handling spans/events join the
    /// request's trace across the queue hop.
    trace_id: u64,
}

/// A connection's reply channel: the writer (locked so concurrent replies
/// to one client never interleave bytes) plus the owning socket, kept so
/// the network fault sites and fatal write errors can drop the connection
/// rather than leave a client blocked on a reply that will never finish.
pub(crate) struct ConnWriter {
    writer: Mutex<Box<dyn Write + Send>>,
    stream: Option<TcpStream>,
}

impl ConnWriter {
    fn tcp(writer: TcpStream, stream: TcpStream) -> Arc<Self> {
        Arc::new(ConnWriter { writer: Mutex::new(Box::new(writer)), stream: Some(stream) })
    }

    fn plain(writer: Box<dyn Write + Send>) -> Arc<Self> {
        Arc::new(ConnWriter { writer: Mutex::new(writer), stream: None })
    }

    /// Hard-drops the underlying socket (no-op on stdio).
    fn drop_connection(&self) {
        if let Some(s) = &self.stream {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

type SharedWriter = Arc<ConnWriter>;

struct QueueState {
    queue: VecDeque<Job>,
    executing: usize,
}

/// The service. Construct with [`Server::new`], then call [`Server::run`]
/// (TCP) or [`Server::run_stdio`] once; both block until shutdown and
/// return the [`ServiceReport`].
pub struct Server {
    engine: Engine,
    workers: usize,
    max_inflight: usize,
    idle_timeout: Option<Duration>,
    conn_timeout: Duration,
    read_deadline: Option<Duration>,
    max_line_bytes: usize,
    degrade: bool,
    snapshot_path: Option<std::path::PathBuf>,
    obs_interval: Option<Duration>,
    record: Option<crate::record::RecordSink>,
    state: Mutex<QueueState>,
    work_cv: Condvar,
    accepting: AtomicBool,
    shutdown: AtomicBool,
    /// `"shutdown"` until the idle path claims it. Guarded by `state`.
    reason: Mutex<&'static str>,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    degraded: AtomicU64,
    evicted: AtomicU64,
    last_intake: Mutex<Instant>,
    started: Instant,
}

impl Server {
    /// Builds a server; `cfg.threads == 0` resolves to the hardware
    /// thread count. When `cfg.snapshot_path` names an existing snapshot
    /// the plan cache is warm-loaded from it (salvaging what survives of
    /// a truncated or corrupt file).
    pub fn new(cfg: &ServeConfig) -> Self {
        let engine = Engine::new(cfg.cache_capacity, cfg.default_timeout);
        if let Some(path) = &cfg.snapshot_path {
            if path.exists() {
                // A snapshot is warm-start data: any failure mode here —
                // including a panic from the storage fault site — means
                // starting cold, never failing to start.
                let result = faults::with_quiet_panics(|| {
                    catch_unwind(AssertUnwindSafe(|| crate::snapshot::load(path, engine.cache())))
                });
                match result {
                    Ok(Ok(loaded)) => {
                        eprintln!("serve: cache snapshot: {loaded} plans from {}", path.display());
                    }
                    Ok(Err(e)) => eprintln!("serve: cache snapshot unusable ({e}); starting cold"),
                    Err(_) => eprintln!("serve: cache snapshot load panicked; starting cold"),
                }
            }
        }
        Server {
            engine,
            workers: parallel::resolve_threads(cfg.threads),
            max_inflight: cfg.max_inflight.max(1),
            idle_timeout: cfg.idle_timeout,
            conn_timeout: cfg.conn_timeout.max(Duration::from_millis(1)),
            read_deadline: cfg.read_deadline,
            max_line_bytes: cfg.max_line_bytes.max(1),
            degrade: cfg.degrade,
            snapshot_path: cfg.snapshot_path.clone(),
            obs_interval: cfg.obs_interval,
            record: cfg.record.clone(),
            state: Mutex::new(QueueState { queue: VecDeque::new(), executing: 0 }),
            work_cv: Condvar::new(),
            accepting: AtomicBool::new(true),
            shutdown: AtomicBool::new(false),
            reason: Mutex::new("shutdown"),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            last_intake: Mutex::new(Instant::now()),
            started: Instant::now(),
        }
    }

    /// The engine (for tests that want the cache).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Serves `listener` until shutdown; returns the final summary.
    pub fn run(&self, listener: &TcpListener) -> std::io::Result<ServiceReport> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            // The worker pool runs inside one scoped thread; run_workers
            // fans it out to `self.workers` OS threads and joins them.
            let pool = scope.spawn(|| {
                parallel::run_workers(self.workers, |_t| self.worker_loop());
            });
            // The sampler is scoped too: it exits on the shutdown flag and
            // the scope joins it after the drain.
            if let Some(interval) = self.obs_interval {
                scope.spawn(move || self.sampler_loop(interval));
            }
            let mut accept_err = None;
            loop {
                // ordering: Relaxed — monotone stop flag; the acceptor
                // only stops taking new connections, all queue state is
                // synchronized by the state mutex.
                if self.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        self.touch_intake();
                        // Connection threads are scoped: an uncaught panic
                        // here would propagate at scope exit and take the
                        // whole server down, so contain it (the network
                        // fault sites can panic by design).
                        scope.spawn(move || {
                            let _ = faults::with_quiet_panics(|| {
                                catch_unwind(AssertUnwindSafe(|| self.serve_connection(stream)))
                            });
                        });
                    }
                    Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                        self.maybe_idle_shutdown();
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == IoErrorKind::Interrupted => {}
                    Err(e) => {
                        // A fatal listener error still drains in-flight
                        // work before surfacing, so workers and
                        // connection threads can be joined.
                        accept_err = Some(e);
                        self.begin_shutdown("shutdown");
                        break;
                    }
                }
            }
            // Drain: wait until queued and executing work has finished,
            // then the workers (who saw the shutdown flag) exit and the
            // pool thread joins them.
            let mut st = self.lock_state();
            while !st.queue.is_empty() || st.executing > 0 {
                st = self.work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            drop(st);
            self.work_cv.notify_all();
            // analyze:allow(panic-path) -- worker panics are contained
            // per-job by catch_unwind inside the pool; a join error here
            // means the pool scaffolding itself broke, which is a bug
            // worth crashing the (already-draining) server on.
            pool.join().expect("worker pool panicked");
            match accept_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })?;
        self.save_snapshot();
        Ok(self.report())
    }

    /// The observability sampler: once per `interval` (while collection
    /// is enabled), captures one [`aqo_obs::series`] tick — counter
    /// deltas, gauge levels, histogram quantiles — and counts it. Sleeps
    /// in short slices so shutdown is noticed within ~50ms regardless of
    /// the interval.
    fn sampler_loop(&self, interval: Duration) {
        let mut next = Instant::now() + interval;
        // ordering: Relaxed — monotone stop flag, same as the acceptor.
        while !self.shutdown.load(Ordering::Relaxed) {
            let now = Instant::now();
            if now >= next {
                next = now + interval;
                if aqo_obs::enabled() {
                    aqo_obs::series::sample_tick();
                    aqo_obs::counter_handle!("serve.sampler.ticks").inc();
                }
            }
            std::thread::sleep(interval.min(Duration::from_millis(50)));
        }
    }

    /// Writes the plan-cache snapshot if one was configured. Failures are
    /// reported and swallowed: losing a warm start must not turn a clean
    /// shutdown into an error.
    fn save_snapshot(&self) {
        if let Some(path) = &self.snapshot_path {
            let result = faults::with_quiet_panics(|| {
                catch_unwind(AssertUnwindSafe(|| crate::snapshot::save(path, self.engine.cache())))
            });
            match result {
                Ok(Ok(saved)) => {
                    eprintln!("serve: cache snapshot: {saved} plans to {}", path.display());
                }
                Ok(Err(e)) => eprintln!("serve: cache snapshot write failed: {e}"),
                Err(_) => eprintln!("serve: cache snapshot write panicked; snapshot skipped"),
            }
        }
    }

    /// Serves newline-delimited requests on stdin/stdout, sequentially
    /// (scripting/debug transport — no pool, no admission, same engine).
    pub fn run_stdio(&self) -> ServiceReport {
        let stdin = std::io::stdin();
        let out: SharedWriter = ConnWriter::plain(Box::new(std::io::stdout()));
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            if line.trim().is_empty() {
                continue;
            }
            if self.intake_line(line.trim_end(), &out, true) {
                break;
            }
        }
        self.begin_shutdown("shutdown");
        self.save_snapshot();
        self.report()
    }

    fn report(&self) -> ServiceReport {
        ServiceReport {
            reason: *self.reason.lock().unwrap_or_else(PoisonError::into_inner),
            // ordering: Relaxed — statistics snapshot after the pool has
            // been joined; no synchronization is carried by the counters.
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed), // ordering: stats snapshot
            errors: self.errors.load(Ordering::Relaxed), // ordering: stats snapshot
            overloaded: self.overloaded.load(Ordering::Relaxed), // ordering: stats snapshot
            degraded: self.degraded.load(Ordering::Relaxed), // ordering: stats snapshot
            evicted: self.evicted.load(Ordering::Relaxed), // ordering: stats snapshot
            cache: self.engine.cache().stats(),
            elapsed: self.started.elapsed(),
        }
    }

    fn touch_intake(&self) {
        *self.last_intake.lock().unwrap_or_else(PoisonError::into_inner) = Instant::now();
    }

    /// Idle shutdown: no intake for `idle_timeout` and nothing in flight.
    fn maybe_idle_shutdown(&self) {
        let Some(idle) = self.idle_timeout else { return };
        let quiet = self
            .last_intake
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .elapsed()
            >= idle;
        if !quiet {
            return;
        }
        let st = self.lock_state();
        if st.queue.is_empty() && st.executing == 0 {
            drop(st);
            self.begin_shutdown("idle");
        }
    }

    /// Closes admission and wakes everyone. Idempotent; the first caller
    /// decides the recorded reason.
    fn begin_shutdown(&self, reason: &'static str) {
        let claimed = {
            let _guard = self.lock_state();
            // ordering: Relaxed — the flags are only ever set under the
            // state lock and every reader either holds that lock or
            // re-checks it before acting on queue contents.
            if self.shutdown.swap(true, Ordering::Relaxed) {
                false
            } else {
                *self.reason.lock().unwrap_or_else(PoisonError::into_inner) = reason;
                // ordering: Relaxed — see above.
                self.accepting.store(false, Ordering::Relaxed);
                true
            }
        };
        // The journal takes the obs events lock; emit only after the
        // state guard is gone so `Server.state` stays a near-leaf lock
        // (its only nesting is the `Server.reason` claim above).
        if claimed && aqo_obs::enabled() {
            aqo_obs::journal::event("serve_shutdown", vec![("reason", reason.into())]);
        }
        self.work_cv.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = self.lock_state();
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        st.executing += 1;
                        break Some((job, st.queue.len(), st.executing));
                    }
                    // ordering: Relaxed — read under the state lock that
                    // `begin_shutdown` holds while setting the flag.
                    if self.shutdown.load(Ordering::Relaxed) {
                        break None;
                    }
                    st = self.work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some((job, queued, executing)) = job else { return };
            self.publish_gauges(queued, executing);
            // Rejoin the request's trace across the queue hop: handling
            // spans and events share the trace id minted at intake.
            let _trace = (job.trace_id != 0).then(|| {
                aqo_obs::trace::install(aqo_obs::trace::TraceHandle::root(job.trace_id))
            });
            let reply = self.engine.handle_degraded(&job.req, job.degrade);
            // ordering: Relaxed — statistics counters only.
            match reply.is_ok() {
                true => self.ok.fetch_add(1, Ordering::Relaxed), // ordering: stats only
                false => self.errors.fetch_add(1, Ordering::Relaxed), // ordering: stats only
            };
            if matches!(&reply, Reply::Ok(r) if r.degraded) {
                // ordering: Relaxed — statistics counter only.
                self.degraded.fetch_add(1, Ordering::Relaxed);
            }
            self.record_reply(&job.req, &reply);
            write_reply(&job.out, &reply);
            let mut st = self.lock_state();
            st.executing -= 1;
            let (queued, executing) = (st.queue.len(), st.executing);
            drop(st);
            self.publish_gauges(queued, executing);
            // Wake the drain waiter (and any idle workers).
            self.work_cv.notify_all();
        }
    }

    /// Publishes queue gauges from values captured under the state lock.
    /// Takes values, not the guard: the registry lookup inside
    /// [`aqo_obs::gauge`] acquires the obs registry lock, and the queue
    /// lock must never nest over obs locks.
    fn publish_gauges(&self, queued: usize, executing: usize) {
        if aqo_obs::enabled() {
            aqo_obs::gauge("serve.queue_depth").set(queued as u64);
            aqo_obs::gauge("serve.inflight").set((queued + executing) as u64);
        }
    }

    /// One client connection: read lines, fast-path control ops, submit
    /// the rest. Returns when the client hangs up, abuses the protocol
    /// (slow-loris, oversized line — evicted with a structured error), or
    /// the server stops.
    fn serve_connection(&self, stream: TcpStream) {
        // Nagle + delayed ACK adds ~40ms to every one-line round trip,
        // so turn it off; if that fails the connection still works.
        let _ = stream.set_nodelay(true);
        // The read timeout is what lets this thread notice shutdown while
        // blocked on a quiet client: without it the thread would pin the
        // scope forever, so failure to set it means the connection cannot
        // be served safely.
        if stream.set_read_timeout(Some(self.conn_timeout)).is_err() {
            return;
        }
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let conn = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let out: SharedWriter = ConnWriter::tcp(writer, conn);
        let mut reader =
            LineReader::new(stream, self.max_line_bytes, self.read_deadline);
        loop {
            // ordering: Relaxed — monotone stop flag; worst case this
            // connection reads one more line before hanging up.
            let stop = || self.shutdown.load(Ordering::Relaxed);
            match reader.next_line(&stop) {
                Ok(LineEvent::Line(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if self.intake_line(line.trim_end(), &out, false) {
                        return;
                    }
                }
                Ok(LineEvent::Evicted(reason)) => {
                    self.evict_connection(&out, reason);
                    return;
                }
                Ok(LineEvent::Closed) | Err(_) => return,
            }
        }
    }

    /// Answers a protocol abuser with a structured `evicted` error, then
    /// drops the socket.
    fn evict_connection(&self, out: &SharedWriter, reason: EvictReason) {
        // ordering: Relaxed — statistics counter only.
        self.evicted.fetch_add(1, Ordering::Relaxed);
        if aqo_obs::enabled() {
            match reason {
                EvictReason::Stalled => {
                    aqo_obs::counter_handle!("serve.evicted_slow").inc();
                }
                EvictReason::Oversized => {
                    aqo_obs::counter_handle!("serve.evicted_oversized").inc();
                }
            }
            aqo_obs::journal::event(
                "serve_evicted",
                vec![("reason", reason.name().into())],
            );
        }
        write_reply(
            out,
            &Reply::Err(ErrReply::new(0, ErrorKind::Evicted, reason.message().into())),
        );
        out.drop_connection();
    }

    /// Parses and routes one request line; returns `true` when the
    /// connection (or stdio loop) should stop reading. `direct` executes
    /// optimize/explain inline instead of queueing (the stdio transport).
    fn intake_line(&self, line: &str, out: &SharedWriter, direct: bool) -> bool {
        self.touch_intake();
        let req = match Request::parse(line) {
            Ok(r) => r,
            Err(message) => {
                write_reply(out, &Reply::Err(ErrReply::new(0, ErrorKind::Parse, message)));
                return false;
            }
        };
        // Mint the request's trace id and bind it to this thread: every
        // event from here to the reply (intake, admission, and — via the
        // Job — worker handling) shares it.
        let trace_id = if aqo_obs::enabled() { aqo_obs::trace::next_trace_id() } else { 0 };
        let _trace = (trace_id != 0)
            .then(|| aqo_obs::trace::install(aqo_obs::trace::TraceHandle::root(trace_id)));
        self.note_request(&req);
        match req.op {
            Op::Status => {
                write_reply(out, &self.status_reply(req.id));
                false
            }
            Op::Metrics => {
                write_reply(out, &self.metrics_reply(req.id));
                false
            }
            Op::Shutdown => {
                write_reply(out, &Reply::ShutdownAck { id: req.id });
                self.begin_shutdown("shutdown");
                true
            }
            Op::Optimize | Op::Explain => {
                if direct {
                    let reply = self.engine.handle(&req);
                    // ordering: Relaxed — statistics counters only.
                    match reply.is_ok() {
                        true => self.ok.fetch_add(1, Ordering::Relaxed), // ordering: stats only
                        false => self.errors.fetch_add(1, Ordering::Relaxed), // ordering: stats only
                    };
                    self.record_reply(&req, &reply);
                    write_reply(out, &reply);
                } else if let Some(rejection) = self.submit(req, out, trace_id) {
                    write_reply(out, &rejection);
                }
                false
            }
        }
    }

    /// Admission control: enqueue (at an overload-chosen ladder level),
    /// or return the structured rejection. The pressure reading and the
    /// enqueue happen under one lock acquisition, so the cap is exact.
    fn submit(&self, req: Request, out: &SharedWriter, trace_id: u64) -> Option<Reply> {
        let mut st = self.lock_state();
        // ordering: Relaxed — read under the same lock `begin_shutdown`
        // sets it under.
        if !self.accepting.load(Ordering::Relaxed) {
            return Some(Reply::Err(ErrReply::new(
                req.id,
                ErrorKind::Shutdown,
                "server is shutting down".into(),
            )));
        }
        let inflight = st.queue.len() + st.executing;
        if inflight >= self.max_inflight {
            // The rejection enqueues nothing, so the exact-cap guarantee
            // does not need the lock past this point; drop it before the
            // obs emission (journal = obs events lock) so the queue lock
            // never nests over obs locks.
            drop(st);
            // ordering: Relaxed — statistics counter only.
            self.overloaded.fetch_add(1, Ordering::Relaxed);
            if aqo_obs::enabled() {
                aqo_obs::counter_handle!("serve.overloaded").inc();
                aqo_obs::journal::event(
                    "serve_overloaded",
                    vec![("id", req.id.into()), ("inflight", inflight.into())],
                );
            }
            return Some(Reply::Err(ErrReply {
                id: req.id,
                kind: ErrorKind::Overloaded,
                message: format!(
                    "admission control: {inflight} requests in flight (cap {})",
                    self.max_inflight
                ),
                retry_after_ms: Some(RETRY_AFTER_MS),
            }));
        }
        let degrade = self.ladder_level(inflight);
        st.queue.push_back(Job { req, out: Arc::clone(out), degrade, trace_id });
        let (queued, executing) = (st.queue.len(), st.executing);
        drop(st);
        self.publish_gauges(queued, executing);
        self.work_cv.notify_one();
        None
    }

    /// The graceful-degradation ladder: queue pressure (inflight as a
    /// fraction of the admission cap) picks how much of the request's
    /// chain survives. Below half pressure nothing changes; from half,
    /// exponential exact tiers are dropped; from three quarters only the
    /// polynomial heuristics run; at the cap `submit` sheds instead.
    fn ladder_level(&self, inflight: usize) -> Degrade {
        if !self.degrade {
            return Degrade::Full;
        }
        if inflight * 4 >= self.max_inflight * 3 {
            Degrade::Heavy
        } else if inflight * 2 >= self.max_inflight {
            Degrade::Light
        } else {
            Degrade::Full
        }
    }

    /// Captures a replayable observation when recording is on. The sink
    /// mutex is a leaf lock: nothing (the obs registry included) is ever
    /// acquired while it is held, so it cannot join a lock cycle.
    fn record_reply(&self, req: &Request, reply: &Reply) {
        if let Some(sink) = &self.record {
            if let Some(entry) = crate::record::capture(req, reply) {
                sink.lock().unwrap_or_else(PoisonError::into_inner).push(entry);
            }
        }
    }

    fn note_request(&self, req: &Request) {
        // ordering: Relaxed — statistics counter only.
        self.requests.fetch_add(1, Ordering::Relaxed);
        if aqo_obs::enabled() {
            aqo_obs::counter(&format!("serve.requests.{}", req.op.name())).inc();
            let mut fields = vec![
                ("id", req.id.into()),
                ("op", req.op.name().into()),
                ("problem", req.problem.name().into()),
            ];
            // Optimize requests journal the instance and any non-default
            // knobs so `aqo replay extract` can rebuild the request side
            // of a workload from the journal alone (the reply side rides
            // on the matching `serve_response` event via the trace id).
            if req.op == Op::Optimize {
                if let Some(inst) = &req.instance {
                    fields.push(("instance", inst.clone().into()));
                }
                if let Some(m) = &req.method {
                    fields.push(("method", m.clone().into()));
                }
                if let Some(f) = &req.fallback {
                    fields.push(("fallback", f.clone().into()));
                }
                if let Some(t) = req.timeout_ms {
                    fields.push(("timeout_ms", t.into()));
                }
                if let Some(e) = req.max_expansions {
                    fields.push(("max_expansions", e.into()));
                }
                if req.threads != 1 {
                    fields.push(("threads", req.threads.into()));
                }
                if !req.allow_cartesian {
                    fields.push(("allow_cartesian", false.into()));
                }
            }
            aqo_obs::journal::event("serve_request", fields);
        }
    }

    fn status_reply(&self, id: u64) -> Reply {
        let (queue_depth, executing) = {
            let st = self.lock_state();
            (st.queue.len(), st.executing)
        };
        let cache = self.engine.cache().stats();
        Reply::Status(Box::new(StatusReply {
            id,
            workers: self.workers,
            queue_depth,
            executing,
            max_inflight: self.max_inflight,
            // ordering: Relaxed — statistics snapshot only.
            accepting: self.accepting.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed), // ordering: stats snapshot
            responses_ok: self.ok.load(Ordering::Relaxed), // ordering: stats snapshot
            responses_error: self.errors.load(Ordering::Relaxed), // ordering: stats snapshot
            overloaded: self.overloaded.load(Ordering::Relaxed), // ordering: stats snapshot
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_inserts: cache.inserts,
            cache_evictions: cache.evictions,
            cache_len: cache.len,
            cache_capacity: cache.capacity,
            uptime_us: self.started.elapsed().as_micros() as u64,
        }))
    }

    /// The `metrics` reply: a full observability snapshot rendered as one
    /// JSON line — nonzero counters, all gauges, live histograms with
    /// quantiles, and the recent time-series rings. Served inline on the
    /// connection thread (registry + series locks only — never the worker
    /// pool), so it stays responsive under full queue pressure.
    fn metrics_reply(&self, id: u64) -> Reply {
        use std::fmt::Write as _;
        let (queue_depth, executing) = {
            let st = self.lock_state();
            (st.queue.len(), st.executing)
        };
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"id\": {id}, \"ok\": true, \"op\": \"metrics\", \
             \"schema\": \"aqo-metrics/v1\", \"enabled\": {}, \"uptime_us\": {}, \
             \"workers\": {}, \"queue_depth\": {queue_depth}, \"executing\": {executing}, \
             \"max_inflight\": {}, \"accepting\": {}",
            aqo_obs::enabled(),
            self.started.elapsed().as_micros() as u64,
            self.workers,
            self.max_inflight,
            // ordering: Relaxed — statistics snapshot only.
            self.accepting.load(Ordering::Relaxed),
        );
        let snap = aqo_obs::snapshot();
        let mut first = true;
        out.push_str(", \"counters\": {");
        for m in &snap {
            if let aqo_obs::SnapshotValue::Counter(v) = m.value {
                if v == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                aqo_obs::json::escape_into(&mut out, &m.name);
                let _ = write!(out, ": {v}");
            }
        }
        out.push_str("}, \"gauges\": {");
        first = true;
        for m in &snap {
            if let aqo_obs::SnapshotValue::Gauge(v) = m.value {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                aqo_obs::json::escape_into(&mut out, &m.name);
                let _ = write!(out, ": {v}");
            }
        }
        out.push_str("}, \"histograms\": {");
        first = true;
        for m in &snap {
            if let aqo_obs::SnapshotValue::Histogram { count, sum, max, p50, p90, p99, p999 } =
                m.value
            {
                if count == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                aqo_obs::json::escape_into(&mut out, &m.name);
                let _ = write!(
                    out,
                    ": {{\"count\": {count}, \"mean_us\": {:.1}, \"max\": {max}, \
                     \"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"p999\": {p999}}}",
                    sum as f64 / count as f64
                );
            }
        }
        out.push_str("}, \"series\": {");
        first = true;
        for (name, points) in aqo_obs::series::series_snapshot() {
            if !first {
                out.push_str(", ");
            }
            first = false;
            aqo_obs::json::escape_into(&mut out, &name);
            out.push_str(": [");
            for (i, p) in points.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                // Points are u64 values or quantiles cast to f64 — always
                // finite, and `{p:?}` is valid JSON for finite floats.
                let _ = write!(out, "{p:?}");
            }
            out.push(']');
        }
        out.push_str("}}");
        Reply::Metrics(out)
    }
}

/// Serializes the reply and writes it as one line under the connection's
/// writer lock. Write errors mean the client hung up or stopped draining
/// (the write timeout fired); the connection is dropped so the client
/// never waits on a reply that will not finish — the *request* was still
/// counted and executed.
///
/// Three network fault sites live here, modelling reply-path failures:
/// `serve::net::conn_drop` kills the connection before any bytes,
/// `serve::net::torn_write` after half the frame, and
/// `serve::net::partial_frame` writes the frame without its newline
/// terminator and leaves the connection open (the client's read deadline
/// is what recovers). Panic-mode faults are contained right here so a
/// writing worker or connection thread never unwinds into its pool.
fn write_reply(out: &SharedWriter, reply: &Reply) {
    let result = faults::with_quiet_panics(|| {
        catch_unwind(AssertUnwindSafe(|| write_reply_inner(out, reply)))
    });
    if result.is_err() {
        out.drop_connection();
    }
}

fn write_reply_inner(out: &SharedWriter, reply: &Reply) {
    let mut line = reply.to_json_line();
    line.push('\n');
    let mut cut = None;
    if faults::fail_point("serve::net::conn_drop").is_err() {
        out.drop_connection();
        return;
    }
    if faults::fail_point("serve::net::torn_write").is_err() {
        cut = Some(line.len() / 2);
    }
    let partial = faults::fail_point("serve::net::partial_frame").is_err();
    if partial {
        cut = Some(line.len() - 1);
    }
    let bytes = &line.as_bytes()[..cut.unwrap_or(line.len())];
    let failed = {
        let mut w = out.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // analyze:allow(blocking-under-lock) -- the writer mutex exists
        // precisely to serialize whole frames onto the socket; the hold
        // is bounded by WRITE_TIMEOUT on the stream and no other lock is
        // ever taken while it is held (leaf lock by canonical order).
        w.write_all(bytes).and_then(|()| w.flush()).is_err()
    };
    // A torn write is a dead connection; a partial frame deliberately
    // stays open (that is the failure mode it models).
    if failed || (cut.is_some() && !partial) {
        out.drop_connection();
    }
}

/// Why a connection was evicted by the read path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EvictReason {
    /// A partial line sat incomplete past the read deadline (slow loris).
    Stalled,
    /// The line grew past the configured size limit.
    Oversized,
}

impl EvictReason {
    fn name(self) -> &'static str {
        match self {
            EvictReason::Stalled => "slow",
            EvictReason::Oversized => "oversized",
        }
    }

    fn message(self) -> &'static str {
        match self {
            EvictReason::Stalled => "request line stalled past the read deadline",
            EvictReason::Oversized => "request line exceeds the size limit",
        }
    }
}

/// What the read loop produced.
enum LineEvent {
    /// A complete request line (without the newline).
    Line(String),
    /// EOF, or the server is stopping.
    Closed,
    /// The client must be evicted.
    Evicted(EvictReason),
}

/// Incremental newline-delimited reader over a socket with a read
/// timeout: timeouts poll the `stop` flag instead of aborting the
/// connection, so a quiet client does not pin the thread past shutdown.
/// Enforces the line-size limit and the slow-loris deadline (a *partial*
/// line older than the deadline evicts; complete lines reset the clock).
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
    max_line: usize,
    deadline: Option<Duration>,
    /// When the currently-pending partial line started accumulating.
    partial_since: Option<Instant>,
}

impl LineReader {
    fn new(stream: TcpStream, max_line: usize, deadline: Option<Duration>) -> Self {
        LineReader { stream, pending: Vec::new(), max_line, deadline, partial_since: None }
    }

    fn next_line(&mut self, stop: &dyn Fn() -> bool) -> std::io::Result<LineEvent> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                // The size limit also applies to a complete line that
                // arrived in one read chunk, not just to partial lines
                // accumulated across reads.
                if pos > self.max_line {
                    return Ok(LineEvent::Evicted(EvictReason::Oversized));
                }
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop();
                self.partial_since =
                    if self.pending.is_empty() { None } else { Some(Instant::now()) };
                return Ok(LineEvent::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            // `serve::net::oversized_line` forces this eviction path as if
            // the limit had been hit, whatever is pending.
            if self.pending.len() > self.max_line
                || faults::fail_point("serve::net::oversized_line").is_err()
            {
                return Ok(LineEvent::Evicted(EvictReason::Oversized));
            }
            if let (Some(deadline), Some(since)) = (self.deadline, self.partial_since) {
                if since.elapsed() >= deadline {
                    return Ok(LineEvent::Evicted(EvictReason::Stalled));
                }
            }
            if stop() {
                return Ok(LineEvent::Closed);
            }
            // `serve::net::stalled_read`: delay stalls the loop one fault
            // budget at a time; err aborts the read as a peer reset would.
            if faults::fail_point("serve::net::stalled_read").is_err() {
                return Ok(LineEvent::Closed);
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(LineEvent::Closed),
                Ok(n) => {
                    // analyze:allow(panic-path) -- n <= buf.len() by the
                    // io::Read contract, so the slice is in range.
                    self.pending.extend_from_slice(&buf[..n]);
                    if self.partial_since.is_none() && !self.pending.is_empty() {
                        self.partial_since = Some(Instant::now());
                    }
                }
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock
                        || e.kind() == IoErrorKind::TimedOut
                        || e.kind() == IoErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}
