//! Sharded, capacity-bounded plan cache with clock (second-chance)
//! eviction.
//!
//! Keys are the *canonical* instance encodings from
//! [`aqo_core::fingerprint`] (plus the request knobs that change the
//! answer, e.g. `allow_cartesian`); the 64-bit FNV-1a fingerprint of the
//! key routes to a shard and serves as a cheap first-level compare. A
//! lookup only hits when the **full key string** matches, so a fingerprint
//! collision can cost a miss but can never return a plan for a different
//! instance — the invariant the interleaving model test
//! (`tests/model_cache.rs`) checks against every 2-thread schedule of the
//! lookup/insert protocol.
//!
//! Both `lookup` and `insert` hold the owning shard's mutex for their
//! whole critical section: the compare *and* the value copy happen under
//! the same lock acquisition. The model test also demonstrates why — a
//! split protocol that matches under the lock but copies the value after
//! releasing it serves the wrong plan once a concurrent insert evicts the
//! matched slot.
//!
//! Only **exact** plans are inserted (the engine enforces this): an exact
//! plan is canonical for its key regardless of which request produced it,
//! so a hit can answer any later request for the same key, whatever that
//! request's budget or chain was.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// A cached, fully materialized plan.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedPlan {
    /// The tier/algorithm that produced the plan.
    pub tier: String,
    /// Whether the plan is exact. The engine only inserts exact plans;
    /// the field is kept so a reply can echo it without re-deriving.
    pub exact: bool,
    /// The join sequence (or clique members).
    pub order: Vec<usize>,
    /// Exact cost rendered as a string.
    pub cost: String,
    /// `log2` of the cost.
    pub cost_log2: f64,
    /// QO_H pipeline fragments, if the problem has a decomposition.
    pub decomposition: Option<Vec<(usize, usize)>>,
}

/// One occupied cache slot.
struct Slot {
    hash: u64,
    key: String,
    value: CachedPlan,
    /// Second-chance bit: set on hit, cleared as the clock hand sweeps by.
    referenced: bool,
}

struct Shard {
    slots: Vec<Slot>,
    /// Clock hand for eviction; always `< slots.len()` when non-empty.
    hand: usize,
    capacity: usize,
}

impl Shard {
    fn lookup(&mut self, hash: u64, key: &str) -> Option<CachedPlan> {
        // Fingerprint first (cheap), full key second (correctness): a
        // colliding fingerprint with a different key falls through to a
        // miss instead of returning a foreign plan.
        let slot = self.slots.iter_mut().find(|s| s.hash == hash && s.key == key)?;
        slot.referenced = true;
        Some(slot.value.clone())
    }

    fn insert(&mut self, hash: u64, key: String, value: CachedPlan) -> bool {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.hash == hash && s.key == key) {
            slot.value = value;
            slot.referenced = true;
            return false;
        }
        let slot = Slot { hash, key, value, referenced: true };
        if self.slots.len() < self.capacity {
            self.slots.push(slot);
            return false;
        }
        // Clock eviction: sweep, clearing second-chance bits, until an
        // unreferenced victim is found. Terminates within two sweeps.
        loop {
            if self.slots[self.hand].referenced {
                self.slots[self.hand].referenced = false;
                self.hand = (self.hand + 1) % self.slots.len();
            } else {
                self.slots[self.hand] = slot;
                self.hand = (self.hand + 1) % self.slots.len();
                return true;
            }
        }
    }
}

/// Live counters of a [`PlanCache`] (also mirrored to `aqo-obs` when
/// collection is enabled).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a plan.
    pub hits: u64,
    /// Lookups that found nothing (or the cache is disabled).
    pub misses: u64,
    /// Plans inserted (including replacements of an existing key).
    pub inserts: u64,
    /// Slots evicted by the clock hand.
    pub evictions: u64,
    /// Plans currently cached, summed over shards.
    pub len: usize,
    /// Total capacity (0 = disabled).
    pub capacity: usize,
}

/// The sharded plan cache. See the module docs for the protocol invariant.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// Shards are a contention knob, not a correctness one; more than 8 buys
/// nothing at CLI-scale concurrency.
const MAX_SHARDS: usize = 8;

impl PlanCache {
    /// A cache holding at most `capacity` plans (0 disables caching:
    /// every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        let shard_count = capacity.clamp(1, MAX_SHARDS);
        let per_shard = capacity.div_ceil(shard_count);
        PlanCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard { slots: Vec::new(), hand: 0, capacity: per_shard }))
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, hash: u64) -> std::sync::MutexGuard<'_, Shard> {
        // A panic cannot occur inside the critical sections below (no
        // user code runs under the lock), but a poisoned lock must not
        // take the whole service down with it.
        self.shards[(hash % self.shards.len() as u64) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key` (pre-hashed as `hash`). The compare-and-copy is one
    /// critical section under the shard lock.
    pub fn lookup(&self, hash: u64, key: &str) -> Option<CachedPlan> {
        let found = if self.capacity == 0 { None } else { self.shard(hash).lookup(hash, key) };
        // ordering: Relaxed — independent statistics counters; no other
        // memory is published through them.
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed), // ordering: stats only
            None => self.misses.fetch_add(1, Ordering::Relaxed), // ordering: stats only
        };
        if aqo_obs::enabled() {
            match &found {
                Some(_) => aqo_obs::counter_handle!("serve.cache.hits").inc(),
                None => aqo_obs::counter_handle!("serve.cache.misses").inc(),
            }
        }
        found
    }

    /// Inserts (or replaces) `key → value`, evicting via the clock hand
    /// when the owning shard is full.
    pub fn insert(&self, hash: u64, key: String, value: CachedPlan) {
        if self.capacity == 0 {
            return;
        }
        let evicted = self.shard(hash).insert(hash, key, value);
        // ordering: Relaxed — independent statistics counters; no other
        // memory is published through them.
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if aqo_obs::enabled() {
            aqo_obs::counter_handle!("serve.cache.inserts").inc();
        }
        if evicted {
            // ordering: Relaxed — statistics counter, as above.
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if aqo_obs::enabled() {
                aqo_obs::counter_handle!("serve.cache.evictions").inc();
            }
        }
    }

    /// Plans currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).slots.len())
            .sum()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies every cached `(key, plan)` pair out, shard by shard (each
    /// shard's lock is held only for its own copy). Used by the snapshot
    /// writer; concurrent inserts during the walk may or may not appear,
    /// which is fine for a best-effort warm-start file.
    pub fn export(&self) -> Vec<(String, CachedPlan)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            out.extend(shard.slots.iter().map(|s| (s.key.clone(), s.value.clone())));
        }
        out
    }

    /// Snapshot of the live counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // ordering: Relaxed — statistics snapshot; tearing between
            // counters is acceptable and no memory is synchronized here.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed), // ordering: stats snapshot
            inserts: self.inserts.load(Ordering::Relaxed), // ordering: stats snapshot
            evictions: self.evictions.load(Ordering::Relaxed), // ordering: stats snapshot
            len: self.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_core::fingerprint::fnv1a;

    fn plan(tag: &str) -> CachedPlan {
        CachedPlan {
            tier: "dp".into(),
            exact: true,
            order: vec![0, 1],
            cost: tag.into(),
            cost_log2: 1.0,
            decomposition: None,
        }
    }

    fn key(i: usize) -> (u64, String) {
        let k = format!("qon key-{i}");
        (fnv1a(k.as_bytes()), k)
    }

    #[test]
    fn lookup_returns_only_exact_key_matches() {
        let cache = PlanCache::new(8);
        let (h, k) = key(1);
        cache.insert(h, k.clone(), plan("a"));
        assert_eq!(cache.lookup(h, &k).unwrap().cost, "a");
        // Same hash, different key: must miss, never return `a`.
        assert!(cache.lookup(h, "qon other-key").is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.len), (1, 1, 1, 1));
    }

    #[test]
    fn replacement_updates_in_place() {
        let cache = PlanCache::new(4);
        let (h, k) = key(1);
        cache.insert(h, k.clone(), plan("old"));
        cache.insert(h, k.clone(), plan("new"));
        assert_eq!(cache.lookup(h, &k).unwrap().cost, "new");
        assert_eq!(cache.stats().len, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn clock_eviction_bounds_capacity_and_favors_referenced_slots() {
        // Single shard of capacity 2 so the clock behavior is forced.
        let cache = PlanCache::new(1);
        assert_eq!(cache.shards.len(), 1);
        // Per-shard capacity is ceil(1/1) = 1: the second insert evicts.
        let (h1, k1) = key(1);
        let (h2, k2) = key(2);
        cache.insert(h1, k1.clone(), plan("a"));
        cache.insert(h2, k2.clone(), plan("b"));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().len, 1);
        assert!(cache.lookup(h1, &k1).is_none());
        assert_eq!(cache.lookup(h2, &k2).unwrap().cost, "b");
    }

    #[test]
    fn second_chance_bit_protects_referenced_plans() {
        // Capacity 16 → 8 shards × 2 slots; steer four keys into one
        // shard so the clock behavior inside a 2-slot shard is forced.
        let cache = PlanCache::new(16);
        let shard_count = cache.shards.len() as u64;
        let mut same_shard = Vec::new();
        for i in 0.. {
            let (h, k) = key(i);
            if h % shard_count == 0 {
                same_shard.push((h, k));
                if same_shard.len() == 4 {
                    break;
                }
            }
        }
        let [(h1, k1), (h2, k2), (h3, k3), (h4, k4)] =
            <[(u64, String); 4]>::try_from(same_shard).unwrap();
        cache.insert(h1, k1.clone(), plan("a"));
        cache.insert(h2, k2.clone(), plan("b"));
        // Overflow: the sweep clears both second-chance bits and evicts
        // the slot the hand settles on (k1); k3 lands referenced.
        cache.insert(h3, k3.clone(), plan("c"));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(h3, &k3).is_some());
        // Shard now holds k3 (referenced) and k2 (bit cleared by the
        // sweep). The next overflow must evict unreferenced k2 and spare
        // referenced k3.
        cache.insert(h4, k4.clone(), plan("d"));
        assert_eq!(cache.stats().evictions, 2);
        assert!(cache.lookup(h3, &k3).is_some(), "referenced plan was evicted");
        assert!(cache.lookup(h2, &k2).is_none(), "unreferenced plan was spared");
        assert!(cache.lookup(h4, &k4).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        let (h, k) = key(1);
        cache.insert(h, k.clone(), plan("a"));
        assert!(cache.lookup(h, &k).is_none());
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.stats().inserts, 0);
        assert_eq!(cache.stats().misses, 1);
    }
}
