//! A minimal blocking client for the JSONL protocol: one line out, one
//! line back. Used by `aqo request`, `aqo loadgen`, and the e2e tests.

use crate::proto::Request;
use std::io::{Read, Write};
use std::net::TcpStream;

/// A persistent connection to a running `aqo serve`.
pub struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One-line request/response round trips suffer ~40ms from Nagle
        // interacting with delayed ACKs; latency matters more than the
        // handful of small packets.
        stream.set_nodelay(true)?;
        Ok(Client { stream, pending: Vec::new() })
    }

    /// Sends one request line and blocks for the matching response line
    /// (the server answers each connection's requests in completion
    /// order; callers that pipeline must correlate by `id`).
    pub fn roundtrip_line(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_line()
    }

    /// As [`Client::roundtrip_line`] for a structured [`Request`].
    pub fn roundtrip(&mut self, req: &Request) -> std::io::Result<String> {
        self.roundtrip_line(&req.to_json_line())
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop();
                return Ok(String::from_utf8_lossy(&line).into_owned());
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    ))
                }
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Connect, send one request, read one response, disconnect.
pub fn oneshot(addr: &str, req: &Request) -> std::io::Result<String> {
    Client::connect(addr)?.roundtrip(req)
}
