//! A minimal blocking client for the JSONL protocol: one line out, one
//! line back — plus retry with exponential backoff + jitter for
//! idempotent requests. Used by `aqo request`, `aqo loadgen`, `aqo
//! chaos`, and the e2e tests.

use crate::proto::{ErrorKind, Op, Request};
use aqo_core::fingerprint::fnv1a;
use aqo_obs::json::{self, JsonValue};
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Whether a failed request is worth retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Transient: a fresh connection and a short wait may succeed
    /// (connection reset, timeout, overload, an injected fault).
    Retriable,
    /// Deterministic: the same request will fail the same way
    /// (malformed request, unsupported option, driver exhaustion,
    /// server shutting down).
    Fatal,
}

/// Classifies a transport-level I/O failure. Connection lifecycle and
/// timing failures are retriable — the server may have restarted, dropped
/// the connection mid-reply, or simply been slow; a fresh connection is a
/// fresh chance. Everything else (permission errors, address errors) is
/// deterministic.
pub fn classify_io(kind: IoErrorKind) -> ErrorClass {
    match kind {
        IoErrorKind::ConnectionRefused
        | IoErrorKind::ConnectionReset
        | IoErrorKind::ConnectionAborted
        | IoErrorKind::NotConnected
        | IoErrorKind::BrokenPipe
        | IoErrorKind::TimedOut
        | IoErrorKind::WouldBlock
        | IoErrorKind::UnexpectedEof
        | IoErrorKind::Interrupted => ErrorClass::Retriable,
        _ => ErrorClass::Fatal,
    }
}

/// Classifies a *structured* error reply by its wire `kind`. Unknown
/// kinds (a newer server) are conservatively fatal.
pub fn classify_reply_kind(kind: &str) -> ErrorClass {
    match ErrorKind::from_wire(kind) {
        Some(k) if k.is_retriable() => ErrorClass::Retriable,
        _ => ErrorClass::Fatal,
    }
}

/// Retry policy for [`Client::roundtrip_retry`].
#[derive(Clone, Debug)]
pub struct RetryConfig {
    /// Retries after the first attempt (0 disables retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling (the doubling saturates here).
    pub max_backoff: Duration,
    /// Socket read timeout per attempt (`None`: block forever — only
    /// sane against a trusted server; the chaos harness always sets it).
    pub read_timeout: Option<Duration>,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl RetryConfig {
    /// Backoff for retry number `attempt` (1-based) of request `id`, with
    /// deterministic jitter: up to half the base backoff, derived by
    /// hashing `(id, attempt)` so concurrent clients desynchronize without
    /// any randomness (same reproducibility contract as the fault layer).
    pub fn backoff(&self, id: u64, attempt: u32) -> Duration {
        let base = self
            .initial_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.max_backoff);
        let jitter_space = (base.as_millis() as u64 / 2).max(1);
        let jitter = fnv1a(&[id.to_le_bytes(), u64::from(attempt).to_le_bytes()].concat())
            % jitter_space;
        base + Duration::from_millis(jitter)
    }
}

/// A persistent connection to a running `aqo serve`.
pub struct Client {
    addr: String,
    stream: TcpStream,
    pending: Vec<u8>,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Connects to `addr` (`host:port`) with no read timeout.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Self::connect_with_timeout(addr, None)
    }

    /// Connects with a socket read timeout: a stalled or torn server
    /// reply surfaces as a `TimedOut`/`WouldBlock` error instead of
    /// hanging the caller forever.
    pub fn connect_with_timeout(
        addr: &str,
        read_timeout: Option<Duration>,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One-line request/response round trips suffer ~40ms from Nagle
        // interacting with delayed ACKs; latency matters more than the
        // handful of small packets.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        Ok(Client { addr: addr.to_string(), stream, pending: Vec::new(), read_timeout })
    }

    /// Drops the current connection and dials again (same timeout).
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        *self = Self::connect_with_timeout(&self.addr, self.read_timeout)?;
        Ok(())
    }

    /// Sends one request line and blocks for the matching response line
    /// (the server answers each connection's requests in completion
    /// order; callers that pipeline must correlate by `id`).
    pub fn roundtrip_line(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_line()
    }

    /// As [`Client::roundtrip_line`] for a structured [`Request`].
    pub fn roundtrip(&mut self, req: &Request) -> std::io::Result<String> {
        self.roundtrip_line(&req.to_json_line())
    }

    /// [`Client::roundtrip`] with retry: transport failures and retriable
    /// structured errors are retried up to `cfg.max_retries` times with
    /// exponential backoff + jitter, reconnecting between attempts and
    /// honouring the server's `retry_after_ms` hint when one is present.
    ///
    /// Only idempotent operations retry (`optimize`/`explain` recompute
    /// the same pure function; `status` is a read). `shutdown` is sent
    /// exactly once — after a transport error the first send may or may
    /// not have landed, and a retry could kill a server that already
    /// restarted.
    pub fn roundtrip_retry(
        &mut self,
        req: &Request,
        cfg: &RetryConfig,
    ) -> std::io::Result<String> {
        let idempotent = req.op != Op::Shutdown;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let outcome = self.roundtrip(req);
            let may_retry = idempotent && attempt <= cfg.max_retries;
            match outcome {
                Ok(line) => {
                    let Some(hint) = retriable_error_hint(&line) else { return Ok(line) };
                    if !may_retry {
                        return Ok(line);
                    }
                    let wait = hint
                        .map(Duration::from_millis)
                        .unwrap_or_else(|| cfg.backoff(req.id, attempt));
                    std::thread::sleep(wait);
                }
                Err(e) => {
                    if !may_retry || classify_io(e.kind()) == ErrorClass::Fatal {
                        return Err(e);
                    }
                    std::thread::sleep(cfg.backoff(req.id, attempt));
                    // The old connection may be torn mid-frame; never
                    // reuse it after a transport error.
                    self.reconnect()?;
                }
            }
        }
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop();
                return Ok(String::from_utf8_lossy(&line).into_owned());
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        IoErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    ))
                }
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == IoErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// If `line` is a structured error reply with a retriable kind, returns
/// `Some(retry_after_ms hint)` (`Some(None)` when the server gave no
/// hint). Successful replies and fatal errors return `None`.
#[allow(clippy::option_option)]
fn retriable_error_hint(line: &str) -> Option<Option<u64>> {
    let doc = json::parse(line).ok()?;
    if !matches!(doc.get("ok"), Some(JsonValue::Bool(false))) {
        return None;
    }
    let error = doc.get("error")?;
    let kind = error.get("kind").and_then(JsonValue::as_str)?;
    if classify_reply_kind(kind) != ErrorClass::Retriable {
        return None;
    }
    Some(
        error
            .get("retry_after_ms")
            .and_then(JsonValue::as_num)
            .filter(|n| *n >= 0.0)
            .map(|n| n as u64),
    )
}

/// Connect, send one request, read one response, disconnect.
pub fn oneshot(addr: &str, req: &Request) -> std::io::Result<String> {
    Client::connect(addr)?.roundtrip(req)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_classification_separates_lifecycle_from_semantic_failures() {
        for k in [
            IoErrorKind::ConnectionRefused,
            IoErrorKind::ConnectionReset,
            IoErrorKind::ConnectionAborted,
            IoErrorKind::BrokenPipe,
            IoErrorKind::TimedOut,
            IoErrorKind::WouldBlock,
            IoErrorKind::UnexpectedEof,
        ] {
            assert_eq!(classify_io(k), ErrorClass::Retriable, "{k:?}");
        }
        for k in [
            IoErrorKind::PermissionDenied,
            IoErrorKind::InvalidInput,
            IoErrorKind::InvalidData,
            IoErrorKind::AddrNotAvailable,
        ] {
            assert_eq!(classify_io(k), ErrorClass::Fatal, "{k:?}");
        }
    }

    #[test]
    fn reply_kind_classification_matches_protocol_semantics() {
        for k in ["overloaded", "injected", "panic", "evicted"] {
            assert_eq!(classify_reply_kind(k), ErrorClass::Retriable, "{k}");
        }
        for k in ["parse", "usage", "driver", "shutdown", "mystery-future-kind"] {
            assert_eq!(classify_reply_kind(k), ErrorClass::Fatal, "{k}");
        }
    }

    #[test]
    fn retriable_hint_extraction() {
        assert_eq!(
            retriable_error_hint(
                "{\"id\": 1, \"ok\": false, \"error\": {\"kind\": \"overloaded\", \
                 \"message\": \"full\", \"retry_after_ms\": 40}}"
            ),
            Some(Some(40))
        );
        assert_eq!(
            retriable_error_hint(
                "{\"id\": 1, \"ok\": false, \"error\": {\"kind\": \"injected\", \
                 \"message\": \"boom\"}}"
            ),
            Some(None)
        );
        assert_eq!(
            retriable_error_hint(
                "{\"id\": 1, \"ok\": false, \"error\": {\"kind\": \"parse\", \
                 \"message\": \"bad\"}}"
            ),
            None
        );
        assert_eq!(retriable_error_hint("{\"id\": 1, \"ok\": true}"), None);
        assert_eq!(retriable_error_hint("not json"), None);
    }

    #[test]
    fn backoff_doubles_saturates_and_jitters_deterministically() {
        let cfg = RetryConfig {
            max_retries: 5,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            read_timeout: None,
        };
        let b1 = cfg.backoff(7, 1);
        let b2 = cfg.backoff(7, 2);
        let b4 = cfg.backoff(7, 4);
        assert!(b1 >= Duration::from_millis(10) && b1 < Duration::from_millis(15));
        assert!(b2 >= Duration::from_millis(20) && b2 < Duration::from_millis(30));
        // Saturation: base caps at max_backoff (+ jitter < half).
        assert!(b4 >= Duration::from_millis(40) && b4 < Duration::from_millis(60));
        // Determinism: same (id, attempt) → same backoff; different id →
        // (almost surely) different jitter.
        assert_eq!(cfg.backoff(7, 1), b1);
    }
}
