//! Crash-safe plan-cache snapshots (`--cache-snapshot`), schema
//! `aqo-cache-snapshot/v1`.
//!
//! # File format
//!
//! One JSON object per line. The first line is the header:
//!
//! ```text
//! {"schema": "aqo-cache-snapshot/v1", "entries": N, "checksum": "0x…"}
//! ```
//!
//! where `checksum` is the FNV-1a hash of every byte after the header
//! line. Each following line is one cache entry, *individually*
//! self-validating:
//!
//! ```text
//! {"check": "0x…", "data": "<entry JSON, embedded as a string>"}
//! ```
//!
//! with `check` the FNV-1a hash of the `data` string. The entry JSON
//! carries `key`, `tier`, `exact`, `order`, `cost`, `cost_log2`, and
//! optionally `decomposition`.
//!
//! # Crash safety
//!
//! [`save`] writes the whole snapshot to `<path>.tmp` and atomically
//! renames it over `path`: a crash mid-write leaves either the previous
//! snapshot intact or a torn `.tmp` that is never read. [`load`] verifies
//! the header checksum; on a match every line is trusted wholesale, on a
//! mismatch (truncated file, bit rot, a concatenated tail) it *salvages* —
//! every line whose own `check` validates is loaded, the rest are counted
//! and skipped. A snapshot is warm-start data, never ground truth: the
//! worst a lost snapshot costs is recomputation.
//!
//! Fault sites: `serve::storage::snapshot_write` tears the `.tmp` file
//! mid-write and fails the save (the previous snapshot survives — that is
//! the crash the atomic rename defends against); `serve::storage::
//! snapshot_load` discredits the header checksum, forcing the salvage
//! path over a good file.

use crate::cache::{CachedPlan, PlanCache};
use aqo_core::faults;
use aqo_core::fingerprint::fnv1a;
use aqo_obs::json::{self, JsonValue};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Schema identifier in the header line.
pub const SCHEMA: &str = "aqo-cache-snapshot/v1";

/// Serializes one cache entry as the inner `data` JSON.
fn entry_json(key: &str, plan: &CachedPlan) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"key\": ");
    json::escape_into(&mut s, key);
    s.push_str(", \"tier\": ");
    json::escape_into(&mut s, &plan.tier);
    let _ = write!(s, ", \"exact\": {}", plan.exact);
    s.push_str(", \"order\": [");
    for (i, v) in plan.order.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push_str("], \"cost\": ");
    json::escape_into(&mut s, &plan.cost);
    let _ = write!(s, ", \"cost_log2\": {}", plan.cost_log2);
    if let Some(frags) = &plan.decomposition {
        s.push_str(", \"decomposition\": [");
        for (i, (lo, hi)) in frags.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "[{lo}, {hi}]");
        }
        s.push(']');
    }
    s.push('}');
    s
}

/// Parses the inner `data` JSON back into a `(key, plan)` pair.
fn entry_parse(data: &str) -> Option<(String, CachedPlan)> {
    let doc = json::parse(data).ok()?;
    let key = doc.get("key")?.as_str()?.to_string();
    let order: Vec<usize> = doc
        .get("order")?
        .as_arr()?
        .iter()
        .map(|v| v.as_num().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as usize))
        .collect::<Option<_>>()?;
    let decomposition = match doc.get("decomposition") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(
            v.as_arr()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr()?;
                    match pair {
                        [lo, hi] => Some((lo.as_num()? as usize, hi.as_num()? as usize)),
                        _ => None,
                    }
                })
                .collect::<Option<Vec<_>>>()?,
        ),
    };
    let plan = CachedPlan {
        tier: doc.get("tier")?.as_str()?.to_string(),
        exact: matches!(doc.get("exact"), Some(JsonValue::Bool(true))),
        order,
        cost: doc.get("cost")?.as_str()?.to_string(),
        cost_log2: doc.get("cost_log2")?.as_num()?,
        decomposition,
    };
    Some((key, plan))
}

/// Renders one self-validating snapshot line for `data`.
fn wrap_line(data: &str) -> String {
    let mut line = String::with_capacity(data.len() + 32);
    let _ = write!(line, "{{\"check\": \"{:#018x}\", \"data\": ", fnv1a(data.as_bytes()));
    json::escape_into(&mut line, data);
    line.push('}');
    line
}

/// Validates and unwraps one snapshot line; `None` if the line is torn,
/// unparseable, or fails its own checksum.
fn unwrap_line(line: &str) -> Option<(String, CachedPlan)> {
    let doc = json::parse(line).ok()?;
    let check = doc.get("check")?.as_str()?;
    let data = doc.get("data")?.as_str()?;
    let expect = format!("{:#018x}", fnv1a(data.as_bytes()));
    if check != expect {
        return None;
    }
    entry_parse(data)
}

/// Writes `cache`'s contents to `path` atomically (tmp + rename); returns
/// the number of plans written. Only exact plans go in (the cache holds
/// nothing else, but the filter makes the invariant local).
pub fn save(path: &Path, cache: &PlanCache) -> Result<usize, String> {
    let entries: Vec<_> =
        cache.export().into_iter().filter(|(_, plan)| plan.exact).collect();
    let mut payload = String::new();
    for (key, plan) in &entries {
        payload.push_str(&wrap_line(&entry_json(key, plan)));
        payload.push('\n');
    }
    let header = format!(
        "{{\"schema\": \"{SCHEMA}\", \"entries\": {}, \"checksum\": \"{:#018x}\"}}\n",
        entries.len(),
        fnv1a(payload.as_bytes()),
    );
    let tmp = path.with_extension("tmp");
    let torn = faults::fail_point("serve::storage::snapshot_write").is_err();
    let write_result = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(header.as_bytes())?;
        if torn {
            // Simulated crash: half the payload lands, no rename — the
            // previous snapshot at `path` is untouched.
            f.write_all(&payload.as_bytes()[..payload.len() / 2])?;
            f.sync_all()?;
            return Ok(());
        }
        f.write_all(payload.as_bytes())?;
        f.sync_all()?;
        Ok(())
    })();
    write_result.map_err(|e| format!("snapshot write {}: {e}", tmp.display()))?;
    if torn {
        return Err(format!("injected fault at `serve::storage::snapshot_write` (torn {})", tmp.display()));
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("snapshot rename to {}: {e}", path.display()))?;
    if aqo_obs::enabled() {
        aqo_obs::counter_handle!("serve.snapshot.saved").inc();
        aqo_obs::journal::event("snapshot_saved", vec![("entries", entries.len().into())]);
    }
    Ok(entries.len())
}

/// Loads a snapshot into `cache`; returns the number of plans loaded.
///
/// A valid header checksum loads the file wholesale; anything else falls
/// back to per-line salvage. `Err` only when the file cannot be read at
/// all or contains no usable entries despite being non-empty — a present
/// but empty (0-entry) snapshot is a successful load of 0.
pub fn load(path: &Path, cache: &PlanCache) -> Result<usize, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("snapshot read {}: {e}", path.display()))?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    let payload_start = header.len() + 1;
    let payload = text.get(payload_start..).unwrap_or_default();
    let header_ok = (|| {
        let doc = json::parse(header).ok()?;
        if doc.get("schema")?.as_str()? != SCHEMA {
            return None;
        }
        let checksum = doc.get("checksum")?.as_str()?.to_string();
        Some(checksum == format!("{:#018x}", fnv1a(payload.as_bytes())))
    })()
    .unwrap_or(false)
        // The load fault site discredits a good checksum, driving the
        // salvage path (which must produce identical results on an
        // uncorrupted file).
        && faults::fail_point("serve::storage::snapshot_load").is_ok();
    let mut loaded = 0usize;
    let mut skipped = 0usize;
    for line in lines.filter(|l| !l.trim().is_empty()) {
        match unwrap_line(line) {
            Some((key, plan)) => {
                let hash = fnv1a(key.as_bytes());
                cache.insert(hash, key, plan);
                loaded += 1;
            }
            None => skipped += 1,
        }
    }
    if aqo_obs::enabled() {
        aqo_obs::counter_handle!("serve.snapshot.loaded").add(loaded as u64);
        aqo_obs::counter_handle!("serve.snapshot.skipped").add(skipped as u64);
        aqo_obs::journal::event(
            "snapshot_loaded",
            vec![
                ("entries", loaded.into()),
                ("skipped", skipped.into()),
                ("salvaged", (!header_ok).into()),
            ],
        );
    }
    if loaded == 0 && (skipped > 0 || !header_ok) && !text.trim().is_empty() {
        return Err(format!(
            "no usable entries in {} ({skipped} lines failed validation)",
            path.display()
        ));
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(tag: &str, frags: Option<Vec<(usize, usize)>>) -> CachedPlan {
        CachedPlan {
            tier: "dp".into(),
            exact: true,
            order: vec![2, 0, 1],
            cost: tag.into(),
            cost_log2: 4.125,
            decomposition: frags,
        }
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("aqo-snapshot-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn populated(n: usize) -> PlanCache {
        let cache = PlanCache::new(64);
        for i in 0..n {
            let key = format!("qon cart=1 test-key-{i}");
            let frags = (i % 2 == 0).then(|| vec![(1, 1), (2, i + 2)]);
            cache.insert(fnv1a(key.as_bytes()), key, plan(&format!("{i}/3"), frags));
        }
        cache
    }

    #[test]
    fn snapshot_round_trips() {
        faults::clear();
        let path = tmpfile("roundtrip.snap");
        let cache = populated(5);
        assert_eq!(save(&path, &cache).expect("save"), 5);
        let restored = PlanCache::new(64);
        assert_eq!(load(&path, &restored).expect("load"), 5);
        for i in 0..5 {
            let key = format!("qon cart=1 test-key-{i}");
            let hit = restored.lookup(fnv1a(key.as_bytes()), &key).expect("restored plan");
            assert_eq!(hit.cost, format!("{i}/3"));
            assert_eq!(hit.order, vec![2, 0, 1]);
            assert_eq!(hit.decomposition.is_some(), i % 2 == 0);
        }
    }

    #[test]
    fn truncated_snapshot_salvages_intact_lines() {
        faults::clear();
        let path = tmpfile("truncated.snap");
        let cache = populated(6);
        save(&path, &cache).expect("save");
        // Chop the file mid-way through the last line: the header checksum
        // no longer matches and the torn line fails its own check.
        let text = std::fs::read_to_string(&path).expect("read back");
        let truncated = &text[..text.len() - 20];
        std::fs::write(&path, truncated).expect("truncate");
        let restored = PlanCache::new(64);
        let loaded = load(&path, &restored).expect("salvage");
        assert_eq!(loaded, 5, "all but the torn final line salvage");
    }

    #[test]
    fn garbage_snapshot_is_an_error_not_a_panic() {
        faults::clear();
        let path = tmpfile("garbage.snap");
        std::fs::write(&path, "!!! not a snapshot\nstill not\n").expect("write garbage");
        let restored = PlanCache::new(64);
        assert!(load(&path, &restored).is_err());
        assert!(restored.is_empty());
    }

    #[test]
    fn interior_corruption_skips_only_the_bad_line() {
        faults::clear();
        let path = tmpfile("interior.snap");
        save(&path, &populated(4)).expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // Flip bytes inside the second entry's embedded data.
        lines[2] = lines[2].replace("test-key", "tampered!"); // breaks the check hash
        std::fs::write(&path, lines.join("\n")).expect("rewrite");
        let restored = PlanCache::new(64);
        assert_eq!(load(&path, &restored).expect("salvage"), 3);
    }

    #[test]
    fn injected_torn_write_leaves_previous_snapshot_intact() {
        faults::clear();
        let path = tmpfile("torn.snap");
        save(&path, &populated(3)).expect("first save");
        faults::arm("serve::storage::snapshot_write", faults::FaultKind::Error, 1);
        let bigger = populated(8);
        assert!(save(&path, &bigger).is_err(), "torn write reports failure");
        faults::clear();
        // The rename never happened: the original 3-entry snapshot loads.
        let restored = PlanCache::new(64);
        assert_eq!(load(&path, &restored).expect("old snapshot"), 3);
    }

    #[test]
    fn injected_load_fault_forces_salvage_with_identical_result() {
        faults::clear();
        let path = tmpfile("salvage-forced.snap");
        save(&path, &populated(4)).expect("save");
        faults::arm("serve::storage::snapshot_load", faults::FaultKind::Error, 1);
        let restored = PlanCache::new(64);
        assert_eq!(load(&path, &restored).expect("salvage path"), 4);
        faults::clear();
    }

    #[test]
    fn empty_cache_snapshot_loads_as_zero() {
        faults::clear();
        let path = tmpfile("empty.snap");
        save(&path, &PlanCache::new(8)).expect("save empty");
        assert_eq!(load(&path, &PlanCache::new(8)).expect("load empty"), 0);
    }
}
