//! The wire protocol: one JSON object per line in each direction.
//!
//! Requests and responses are parsed and emitted with the workspace's
//! hand-rolled [`aqo_obs::json`] codec — no serialization dependency. The
//! grammar is documented operator-facing in `docs/SERVING.md`; this module
//! is the single source of truth for field names and defaults.
//!
//! A request names an operation ([`Op`]), a problem family ([`Problem`]),
//! and carries the instance *inline* as the text formats the CLI already
//! speaks (`aqo_core::textio` for QO_N/QO_H, DIMACS edge format for
//! clique). Budget limits, method/fallback-chain selection, and cache
//! participation ride along per request.

use aqo_obs::json::{self, JsonValue};
use std::fmt::Write as _;

/// The operation a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Optimize the inline instance and return the plan.
    Optimize,
    /// As `optimize`, plus a human-readable cost walkthrough; never served
    /// from or inserted into the plan cache.
    Explain,
    /// Service counters snapshot (answered on the connection thread).
    Status,
    /// Full observability snapshot — counters, gauges, histogram
    /// quantiles, recent time-series — answered on the connection thread
    /// like `status` (never touches the worker pool).
    Metrics,
    /// Drain in-flight work and stop the server.
    Shutdown,
}

impl Op {
    /// Wire name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            Op::Optimize => "optimize",
            Op::Explain => "explain",
            Op::Status => "status",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
        }
    }

    fn parse(s: &str) -> Option<Op> {
        match s {
            "optimize" => Some(Op::Optimize),
            "explain" => Some(Op::Explain),
            "status" => Some(Op::Status),
            "metrics" => Some(Op::Metrics),
            "shutdown" => Some(Op::Shutdown),
            _ => None,
        }
    }
}

/// The problem family the inline instance belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Problem {
    /// QO_N join ordering (`.qon` text; SQO−CP star instances are served
    /// through this family too — they are star-shaped QO_N instances).
    Qon,
    /// QO_H pipelined hash-join planning (`.qoh` text).
    Qoh,
    /// Maximum clique over a DIMACS edge-format graph.
    Clique,
}

impl Problem {
    /// Wire name of the problem family.
    pub fn name(self) -> &'static str {
        match self {
            Problem::Qon => "qon",
            Problem::Qoh => "qoh",
            Problem::Clique => "clique",
        }
    }

    fn parse(s: &str) -> Option<Problem> {
        match s {
            "qon" => Some(Problem::Qon),
            "qoh" => Some(Problem::Qoh),
            "clique" => Some(Problem::Clique),
            _ => None,
        }
    }
}

/// A parsed request line. Constructed by [`Request::parse`] on the server
/// side, or directly (then [`Request::to_json_line`]) on the client side.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Problem family of `instance`.
    pub problem: Problem,
    /// Inline instance text (required for optimize/explain).
    pub instance: Option<String>,
    /// Single-tier method selection (mutually exclusive with `fallback`).
    pub method: Option<String>,
    /// Fallback-chain spec, e.g. `"dp,bnb,greedy"`.
    pub fallback: Option<String>,
    /// Per-request wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-request cap on cooperative expansion ticks.
    pub max_expansions: Option<u64>,
    /// Worker threads for the exact tiers (1 = sequential, 0 = auto).
    pub threads: usize,
    /// Whether cartesian-product sequences are admissible (QO_N only).
    pub allow_cartesian: bool,
    /// Whether this request may read/write the plan cache.
    pub use_cache: bool,
}

impl Request {
    /// A minimal request for `op` on `problem` with all knobs at their
    /// defaults (no budget, default chain, cache on, sequential).
    pub fn new(op: Op, problem: Problem) -> Self {
        Request {
            id: 0,
            op,
            problem,
            instance: None,
            method: None,
            fallback: None,
            timeout_ms: None,
            max_expansions: None,
            threads: 1,
            allow_cartesian: true,
            use_cache: true,
        }
    }

    /// Parses one request line. Errors are protocol-level (malformed JSON,
    /// unknown op, missing instance) and come back as plain messages; the
    /// server wraps them in a structured `"parse"` error response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = json::parse(line)?;
        if !matches!(doc, JsonValue::Obj(_)) {
            return Err("request must be a JSON object".into());
        }
        let op_name = doc
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "request has no `op` field".to_string())?;
        let op = Op::parse(op_name).ok_or_else(|| format!("unknown op `{op_name}`"))?;
        let problem = match doc.get("problem").and_then(JsonValue::as_str) {
            None => Problem::Qon,
            Some(p) => Problem::parse(p).ok_or_else(|| format!("unknown problem `{p}`"))?,
        };
        let u64_field = |key: &str| -> Result<Option<u64>, String> {
            match doc.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(v) => v
                    .as_num()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .map(|n| Some(n as u64))
                    .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
            }
        };
        let bool_field = |key: &str, default: bool| -> Result<bool, String> {
            match doc.get(key) {
                None | Some(JsonValue::Null) => Ok(default),
                Some(JsonValue::Bool(b)) => Ok(*b),
                Some(_) => Err(format!("`{key}` must be a boolean")),
            }
        };
        let str_field = |key: &str| -> Result<Option<String>, String> {
            match doc.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| format!("`{key}` must be a string")),
            }
        };
        let req = Request {
            id: u64_field("id")?.unwrap_or(0),
            op,
            problem,
            instance: str_field("instance")?,
            method: str_field("method")?,
            fallback: str_field("fallback")?,
            timeout_ms: u64_field("timeout_ms")?,
            max_expansions: u64_field("max_expansions")?,
            threads: u64_field("threads")?.unwrap_or(1) as usize,
            allow_cartesian: bool_field("allow_cartesian", true)?,
            use_cache: bool_field("cache", true)?,
        };
        if matches!(req.op, Op::Optimize | Op::Explain) && req.instance.is_none() {
            return Err(format!("op `{}` requires an `instance` field", req.op.name()));
        }
        if req.method.is_some() && req.fallback.is_some() {
            return Err("`method` and `fallback` are mutually exclusive".into());
        }
        Ok(req)
    }

    /// Serializes the request as one JSON line (no trailing newline).
    /// Fields at their defaults are omitted, so round-tripping through
    /// [`Request::parse`] is the identity on the semantic content.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(out, "{{\"op\": \"{}\"", self.op.name());
        let _ = write!(out, ", \"id\": {}", self.id);
        let _ = write!(out, ", \"problem\": \"{}\"", self.problem.name());
        if let Some(inst) = &self.instance {
            out.push_str(", \"instance\": ");
            json::escape_into(&mut out, inst);
        }
        if let Some(m) = &self.method {
            out.push_str(", \"method\": ");
            json::escape_into(&mut out, m);
        }
        if let Some(f) = &self.fallback {
            out.push_str(", \"fallback\": ");
            json::escape_into(&mut out, f);
        }
        if let Some(t) = self.timeout_ms {
            let _ = write!(out, ", \"timeout_ms\": {t}");
        }
        if let Some(e) = self.max_expansions {
            let _ = write!(out, ", \"max_expansions\": {e}");
        }
        if self.threads != 1 {
            let _ = write!(out, ", \"threads\": {}", self.threads);
        }
        if !self.allow_cartesian {
            out.push_str(", \"allow_cartesian\": false");
        }
        if !self.use_cache {
            out.push_str(", \"cache\": false");
        }
        out.push('}');
        out
    }
}

/// Machine-readable discriminant of a structured error response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line did not parse or failed protocol validation.
    Parse,
    /// The request parsed but asked for something unsupported
    /// (bad chain spec, explain on a problem without explain, …).
    Usage,
    /// Every tier of the driver's fallback chain failed.
    Driver,
    /// An armed fault-injection site fired inside request handling.
    Injected,
    /// Request handling panicked; the worker survived.
    Panic,
    /// Admission control rejected the request (queue full).
    Overloaded,
    /// The server is shutting down and no longer admits work.
    Shutdown,
    /// The connection was evicted for protocol abuse (a line over the
    /// size limit, or a partial line held open past the read deadline —
    /// the slow-loris defence).
    Evicted,
}

impl ErrorKind {
    /// Stable wire name of the error kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Usage => "usage",
            ErrorKind::Driver => "driver",
            ErrorKind::Injected => "injected",
            ErrorKind::Panic => "panic",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Evicted => "evicted",
        }
    }

    /// Parses a wire name back to the kind (`None` for kinds this build
    /// does not know — a newer server's response still classifies).
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        match s {
            "parse" => Some(ErrorKind::Parse),
            "usage" => Some(ErrorKind::Usage),
            "driver" => Some(ErrorKind::Driver),
            "injected" => Some(ErrorKind::Injected),
            "panic" => Some(ErrorKind::Panic),
            "overloaded" => Some(ErrorKind::Overloaded),
            "shutdown" => Some(ErrorKind::Shutdown),
            "evicted" => Some(ErrorKind::Evicted),
            _ => None,
        }
    }

    /// Whether a client may meaningfully retry the same request. Transient
    /// server conditions (overload, injected faults, contained panics,
    /// evictions) are retriable on a fresh connection; protocol and
    /// semantic failures (`parse`, `usage`, `driver`) would fail the same
    /// way again, and `shutdown` means the server is going away.
    pub fn is_retriable(self) -> bool {
        matches!(
            self,
            ErrorKind::Overloaded | ErrorKind::Injected | ErrorKind::Panic | ErrorKind::Evicted
        )
    }
}

/// A successful optimize/explain response.
#[derive(Clone, Debug)]
pub struct OkReply {
    /// Echoed request id.
    pub id: u64,
    /// Echoed operation.
    pub op: Op,
    /// Echoed problem family.
    pub problem: Problem,
    /// Canonical instance fingerprint (shard-routing hash; see
    /// `aqo_core::fingerprint`).
    pub fingerprint: u64,
    /// Whether the plan was served from the cache.
    pub cached: bool,
    /// The tier/algorithm that produced the plan.
    pub tier: String,
    /// Whether the plan is exact (optimal) rather than heuristic.
    pub exact: bool,
    /// Whether overload degraded this request down the graceful-
    /// degradation ladder (the answer came from a weaker chain than the
    /// request asked for; `tier` names what actually ran). Serialized
    /// only when `true`.
    pub degraded: bool,
    /// The join sequence (clique members for `problem = clique`).
    pub order: Vec<usize>,
    /// Exact cost as a decimal/rational string (clique size for clique).
    pub cost: String,
    /// `log2` of the cost, for human-scale comparison.
    pub cost_log2: f64,
    /// QO_H pipeline fragments as `[lo, hi]` join-index pairs.
    pub decomposition: Option<Vec<(usize, usize)>>,
    /// Cost walkthrough (`op = explain` only).
    pub explain: Option<String>,
    /// Wall-clock handling time in microseconds.
    pub elapsed_us: u64,
}

/// A structured error response.
#[derive(Clone, Debug)]
pub struct ErrReply {
    /// Echoed request id (0 when the line did not parse far enough).
    pub id: u64,
    /// What class of failure this is.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// Server hint: wait this long before retrying (overload shedding
    /// sets it; other kinds usually leave it unset).
    pub retry_after_ms: Option<u64>,
}

impl ErrReply {
    /// An error reply with no retry hint.
    pub fn new(id: u64, kind: ErrorKind, message: String) -> Self {
        ErrReply { id, kind, message, retry_after_ms: None }
    }
}

/// The `status` response: live service counters.
#[derive(Clone, Debug, Default)]
pub struct StatusReply {
    /// Echoed request id.
    pub id: u64,
    /// Worker-pool size.
    pub workers: usize,
    /// Requests queued but not yet executing.
    pub queue_depth: usize,
    /// Requests currently executing on workers.
    pub executing: usize,
    /// Admission-control bound on `queue_depth + executing`.
    pub max_inflight: usize,
    /// Whether new work is still admitted.
    pub accepting: bool,
    /// Total requests parsed since startup (all ops).
    pub requests: u64,
    /// Optimize/explain responses that succeeded.
    pub responses_ok: u64,
    /// Optimize/explain responses that failed.
    pub responses_error: u64,
    /// Requests rejected by admission control.
    pub overloaded: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache insertions.
    pub cache_inserts: u64,
    /// Plan-cache clock evictions.
    pub cache_evictions: u64,
    /// Plans currently cached.
    pub cache_len: usize,
    /// Plan-cache capacity (0 = disabled).
    pub cache_capacity: usize,
    /// Microseconds since the server started.
    pub uptime_us: u64,
}

/// One response line, ready to serialize.
#[derive(Clone, Debug)]
pub enum Reply {
    /// Successful optimize/explain.
    Ok(Box<OkReply>),
    /// Structured failure.
    Err(ErrReply),
    /// `status` snapshot.
    Status(Box<StatusReply>),
    /// `metrics` snapshot: a prebuilt JSON line (the server renders the
    /// registry directly; clients treat it as an opaque JSON object).
    Metrics(String),
    /// `shutdown` acknowledgement.
    ShutdownAck {
        /// Echoed request id.
        id: u64,
    },
}

impl Reply {
    /// Whether this reply reports success.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Reply::Err(_))
    }

    /// Serializes the reply as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        match self {
            Reply::Ok(r) => {
                let _ = write!(
                    out,
                    "{{\"id\": {}, \"ok\": true, \"op\": \"{}\", \"problem\": \"{}\"",
                    r.id,
                    r.op.name(),
                    r.problem.name()
                );
                let _ = write!(out, ", \"fingerprint\": \"{:#018x}\"", r.fingerprint);
                let _ = write!(out, ", \"cached\": {}", r.cached);
                out.push_str(", \"tier\": ");
                json::escape_into(&mut out, &r.tier);
                let _ = write!(out, ", \"exact\": {}", r.exact);
                if r.degraded {
                    out.push_str(", \"degraded\": true");
                }
                out.push_str(", \"order\": [");
                for (i, v) in r.order.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{v}");
                }
                out.push(']');
                out.push_str(", \"cost\": ");
                json::escape_into(&mut out, &r.cost);
                let _ = write!(out, ", \"cost_log2\": {:.3}", r.cost_log2);
                if let Some(frags) = &r.decomposition {
                    out.push_str(", \"decomposition\": [");
                    for (i, (lo, hi)) in frags.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{lo}, {hi}]");
                    }
                    out.push(']');
                }
                if let Some(text) = &r.explain {
                    out.push_str(", \"explain\": ");
                    json::escape_into(&mut out, text);
                }
                let _ = write!(out, ", \"elapsed_us\": {}}}", r.elapsed_us);
            }
            Reply::Err(e) => {
                let _ = write!(
                    out,
                    "{{\"id\": {}, \"ok\": false, \"error\": {{\"kind\": \"{}\", \"message\": ",
                    e.id,
                    e.kind.as_str()
                );
                json::escape_into(&mut out, &e.message);
                if let Some(ms) = e.retry_after_ms {
                    let _ = write!(out, ", \"retry_after_ms\": {ms}");
                }
                out.push_str("}}");
            }
            Reply::Status(s) => {
                let _ = write!(
                    out,
                    "{{\"id\": {}, \"ok\": true, \"op\": \"status\", \"workers\": {}, \
                     \"queue_depth\": {}, \"executing\": {}, \"max_inflight\": {}, \
                     \"accepting\": {}, \"requests\": {}, \"responses_ok\": {}, \
                     \"responses_error\": {}, \"overloaded\": {}, \"cache\": {{\
                     \"hits\": {}, \"misses\": {}, \"inserts\": {}, \"evictions\": {}, \
                     \"len\": {}, \"capacity\": {}}}, \"uptime_us\": {}}}",
                    s.id,
                    s.workers,
                    s.queue_depth,
                    s.executing,
                    s.max_inflight,
                    s.accepting,
                    s.requests,
                    s.responses_ok,
                    s.responses_error,
                    s.overloaded,
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_inserts,
                    s.cache_evictions,
                    s.cache_len,
                    s.cache_capacity,
                    s.uptime_us,
                );
            }
            Reply::Metrics(line) => out.push_str(line),
            Reply::ShutdownAck { id } => {
                let _ = write!(
                    out,
                    "{{\"id\": {id}, \"ok\": true, \"op\": \"shutdown\", \
                     \"message\": \"draining\"}}"
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let mut req = Request::new(Op::Optimize, Problem::Qoh);
        req.id = 42;
        req.instance = Some("qoh\nvertices 2\nmemory 10\nsize 0 3\nsize 1 4\n".into());
        req.fallback = Some("exhaustive,greedy".into());
        req.timeout_ms = Some(250);
        req.threads = 4;
        req.use_cache = false;
        let back = Request::parse(&req.to_json_line()).expect("round-trips");
        assert_eq!(back.id, 42);
        assert_eq!(back.op, Op::Optimize);
        assert_eq!(back.problem, Problem::Qoh);
        assert_eq!(back.instance, req.instance);
        assert_eq!(back.fallback.as_deref(), Some("exhaustive,greedy"));
        assert_eq!(back.timeout_ms, Some(250));
        assert_eq!(back.threads, 4);
        assert!(back.allow_cartesian);
        assert!(!back.use_cache);
    }

    #[test]
    fn defaults_are_omitted_and_reapplied() {
        let mut req = Request::new(Op::Status, Problem::Qon);
        req.id = 7;
        let line = req.to_json_line();
        assert!(!line.contains("threads"));
        assert!(!line.contains("cache"));
        let back = Request::parse(&line).unwrap();
        assert_eq!(back.threads, 1);
        assert!(back.use_cache);
        assert!(back.allow_cartesian);
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"op\": \"frobnicate\"}").is_err());
        assert!(Request::parse("{\"op\": \"optimize\"}").is_err(), "missing instance");
        assert!(Request::parse(
            "{\"op\": \"optimize\", \"instance\": \"x\", \"method\": \"dp\", \
             \"fallback\": \"dp,greedy\"}"
        )
        .is_err());
        assert!(Request::parse("{\"op\": \"optimize\", \"instance\": \"x\", \"id\": -3}").is_err());
    }

    #[test]
    fn replies_serialize_as_parseable_json() {
        let ok = Reply::Ok(Box::new(OkReply {
            id: 9,
            op: Op::Optimize,
            problem: Problem::Qon,
            fingerprint: 0xdead_beef,
            cached: true,
            tier: "dp".into(),
            exact: true,
            degraded: false,
            order: vec![2, 0, 1],
            cost: "35/2".into(),
            cost_log2: 4.129,
            decomposition: Some(vec![(1, 1), (2, 3)]),
            explain: Some("line one\nline two".into()),
            elapsed_us: 123,
        }));
        let doc = aqo_obs::json::parse(&ok.to_json_line()).expect("ok reply parses");
        assert_eq!(doc.get("id").and_then(JsonValue::as_num), Some(9.0));
        assert!(matches!(doc.get("ok"), Some(JsonValue::Bool(true))));
        assert_eq!(doc.get("cost").and_then(JsonValue::as_str), Some("35/2"));
        assert_eq!(doc.get("order").and_then(JsonValue::as_arr).map(<[_]>::len), Some(3));

        let err = Reply::Err(ErrReply {
            id: 3,
            kind: ErrorKind::Overloaded,
            message: "queue full (8 in flight)".into(),
            retry_after_ms: Some(40),
        });
        let doc = aqo_obs::json::parse(&err.to_json_line()).expect("err reply parses");
        assert!(matches!(doc.get("ok"), Some(JsonValue::Bool(false))));
        let error = doc.get("error").expect("error object");
        assert_eq!(error.get("kind").and_then(JsonValue::as_str), Some("overloaded"));
        assert_eq!(error.get("retry_after_ms").and_then(JsonValue::as_num), Some(40.0));

        let status = Reply::Status(Box::new(StatusReply { workers: 4, ..Default::default() }));
        let doc = aqo_obs::json::parse(&status.to_json_line()).expect("status parses");
        assert_eq!(doc.get("workers").and_then(JsonValue::as_num), Some(4.0));
        assert!(doc.get("cache").is_some());
    }
}
