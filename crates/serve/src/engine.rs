//! The transport-free request handler: parse → fail point → cache →
//! driver → cache insert → reply.
//!
//! [`Engine::handle`] is everything the service does to one
//! optimize/explain request, independent of how the request arrived (TCP,
//! stdio, or a test calling it directly). The server wraps it with
//! admission control and a worker pool; the stress tests call it straight
//! from `aqo_core::parallel::run_workers` threads.
//!
//! Failure containment: the whole of request handling runs under
//! `catch_unwind`, and the `serve::request` fail point
//! ([`aqo_driver::faults`]) fires *inside* that guard — an injected panic
//! or error therefore produces a structured error response instead of a
//! dead worker or a dropped connection.

use crate::cache::{CachedPlan, PlanCache};
use crate::proto::{ErrReply, ErrorKind, OkReply, Op, Problem, Reply, Request};
use aqo_core::fingerprint::{canonical_qoh, canonical_qon, fnv1a};
use aqo_core::{explain, textio, CostScalar};
use aqo_driver::{faults, BudgetSpec, QohDriverConfig, QohTier, QonDriverConfig, QonTier};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// How far overload has pushed a request down the graceful-degradation
/// ladder. Admission control picks the level from queue pressure *before*
/// shedding: a loaded server first answers with cheaper (heuristic) tiers
/// and only rejects outright once the queue is actually full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Degrade {
    /// No pressure: the request's own chain runs unchanged.
    Full,
    /// Moderate pressure: drop the exponential exact tiers
    /// (`ikkbz → greedy` for QO_N, `greedy` for QO_H).
    Light,
    /// High pressure: polynomial heuristics only (`greedy`).
    Heavy,
}

impl Degrade {
    /// Ladder-level name used in replies, events, and `CHAOS.json`.
    pub fn name(self) -> &'static str {
        match self {
            Degrade::Full => "full",
            Degrade::Light => "light",
            Degrade::Heavy => "heavy",
        }
    }

    fn qon_chain(self) -> Option<Vec<QonTier>> {
        match self {
            Degrade::Full => None,
            Degrade::Light => Some(vec![QonTier::Ikkbz, QonTier::Greedy]),
            Degrade::Heavy => Some(vec![QonTier::Greedy]),
        }
    }

    fn qoh_chain(self) -> Option<Vec<QohTier>> {
        match self {
            Degrade::Full => None,
            Degrade::Light | Degrade::Heavy => Some(vec![QohTier::Greedy]),
        }
    }
}

/// The request handler shared by every worker. Owns the plan cache.
pub struct Engine {
    cache: PlanCache,
    /// Applied when a request carries no `timeout_ms` of its own.
    default_timeout: Option<Duration>,
}

impl Engine {
    /// An engine with a plan cache of `cache_capacity` entries (0
    /// disables caching) and an optional server-side default deadline.
    pub fn new(cache_capacity: usize, default_timeout: Option<Duration>) -> Self {
        Engine { cache: PlanCache::new(cache_capacity), default_timeout }
    }

    /// The plan cache (for status snapshots and tests).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Handles one optimize/explain request end to end and returns the
    /// reply. Never panics: injected faults and panics inside handling
    /// come back as structured error responses.
    pub fn handle(&self, req: &Request) -> Reply {
        self.handle_degraded(req, Degrade::Full)
    }

    /// As [`Engine::handle`], at an overload-chosen ladder level: past
    /// [`Degrade::Full`] the request's fallback chain is replaced with a
    /// cheaper one (unless the client pinned `method`/`fallback`, which is
    /// respected) and the reply is tagged `"degraded": true`.
    pub fn handle_degraded(&self, req: &Request, degrade: Degrade) -> Reply {
        let _span = aqo_obs::span("serve.request");
        let t0 = Instant::now();
        let outcome = faults::with_quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                if let Err(f) = faults::fail_point("serve::request") {
                    return Reply::Err(ErrReply::new(
                        req.id,
                        ErrorKind::Injected,
                        f.to_string(),
                    ));
                }
                self.solve(req, degrade)
            }))
        });
        let mut reply = outcome.unwrap_or_else(|payload| {
            Reply::Err(ErrReply::new(req.id, ErrorKind::Panic, panic_message(payload)))
        });
        let us = t0.elapsed().as_micros() as u64;
        if let Reply::Ok(ok) = &mut reply {
            ok.elapsed_us = us;
        }
        if aqo_obs::enabled() {
            aqo_obs::histogram("serve.request_us").record(us);
            if reply.is_ok() {
                aqo_obs::counter_handle!("serve.responses.ok").inc();
            } else {
                aqo_obs::counter_handle!("serve.responses.error").inc();
            }
            // Successful optimize/explain responses journal the full plan
            // observation so `aqo replay extract` can rebuild a workload
            // baseline from the journal alone (`order`/`decomposition` are
            // comma-joined strings — journal values carry no arrays).
            let mut fields = vec![
                ("id", req.id.into()),
                ("op", req.op.name().into()),
                ("problem", req.problem.name().into()),
                ("ok", reply.is_ok().into()),
                ("cached", matches!(&reply, Reply::Ok(r) if r.cached).into()),
                ("us", us.into()),
            ];
            if let Reply::Ok(ok) = &reply {
                fields.push(("fingerprint", format!("{:#018x}", ok.fingerprint).into()));
                fields.push(("tier", ok.tier.clone().into()));
                fields.push(("exact", ok.exact.into()));
                fields.push(("degraded", ok.degraded.into()));
                fields.push(("cost", ok.cost.clone().into()));
                fields.push(("cost_log2", ok.cost_log2.into()));
                fields.push(("order", join_indices(&ok.order).into()));
                if let Some(frags) = &ok.decomposition {
                    fields.push(("decomposition", join_fragments(frags).into()));
                }
            }
            aqo_obs::journal::event("serve_response", fields);
        }
        reply
    }

    fn solve(&self, req: &Request, degrade: Degrade) -> Reply {
        match req.problem {
            Problem::Qon => self.solve_qon(req, degrade),
            Problem::Qoh => self.solve_qoh(req, degrade),
            // Clique is answered by one polynomial-in-practice exact
            // routine with no tier ladder; it does not degrade.
            Problem::Clique => self.solve_clique(req),
        }
    }

    /// Resolves the ladder level against the request: explicit
    /// `method`/`fallback` pins win (the client asked for *that*
    /// algorithm; a silently weaker one would be a lie), everything else
    /// degrades. Emits the `serve.degraded` counter and event when a
    /// request is actually degraded.
    fn effective_degrade(req: &Request, degrade: Degrade) -> Degrade {
        if degrade == Degrade::Full || req.method.is_some() || req.fallback.is_some() {
            return Degrade::Full;
        }
        if aqo_obs::enabled() {
            aqo_obs::counter_handle!("serve.degraded").inc();
            aqo_obs::journal::event(
                "serve_degraded",
                vec![("id", req.id.into()), ("level", degrade.name().into())],
            );
        }
        degrade
    }

    /// Whether this request participates in the plan cache. Explain
    /// requests never do: their value is the walkthrough text, which is
    /// cheap to recompute and expensive to store.
    fn caching(req: &Request) -> bool {
        req.use_cache && req.op == Op::Optimize
    }

    fn budget_spec(&self, req: &Request) -> BudgetSpec {
        BudgetSpec {
            timeout: req.timeout_ms.map(Duration::from_millis).or(self.default_timeout),
            max_expansions: req.max_expansions,
            max_memory_bytes: None,
        }
    }

    fn solve_qon(&self, req: &Request, degrade: Degrade) -> Reply {
        let text = req.instance.as_deref().unwrap_or_default();
        let inst = match textio::qon_from_text(text) {
            Ok(i) => i,
            Err(e) => return err(req, ErrorKind::Parse, format!("instance: {e}")),
        };
        // The canonical key carries every request knob that changes the
        // answer; budget and chain do not (only exact plans are cached).
        let key =
            format!("qon cart={} {}", u8::from(req.allow_cartesian), canonical_qon(&inst));
        let hash = fnv1a(key.as_bytes());
        if Self::caching(req) {
            if let Some(hit) = self.cache.lookup(hash, &key) {
                // A cached exact plan is free: no reason to degrade it.
                return ok_from_cache(req, hash, hit);
            }
        }
        let degrade = Self::effective_degrade(req, degrade);
        let chain = match degrade.qon_chain() {
            Some(c) => c,
            None => match chain_spec(req) {
                Ok(spec) => match spec {
                    Some(s) => match QonTier::parse_chain(s) {
                        Ok(c) => c,
                        Err(e) => return err(req, ErrorKind::Usage, e),
                    },
                    None => QonTier::default_chain(),
                },
                Err(e) => return err(req, ErrorKind::Usage, e),
            },
        };
        let cfg = QonDriverConfig {
            budget: self.budget_spec(req),
            chain,
            allow_cartesian: req.allow_cartesian,
            threads: req.threads,
            ..QonDriverConfig::default()
        };
        let outcome = match aqo_driver::optimize_qon(&inst, &cfg) {
            Ok(o) => o,
            Err(e) => return err(req, ErrorKind::Driver, e.to_string()),
        };
        let order = outcome.optimum.sequence.order().to_vec();
        let cost = outcome.optimum.cost;
        let cost_log2 = CostScalar::log2(&cost);
        let explain_text =
            (req.op == Op::Explain).then(|| explain::explain_qon(&inst, &outcome.optimum.sequence));
        if Self::caching(req) && outcome.report.exact {
            self.cache.insert(
                hash,
                key,
                CachedPlan {
                    tier: outcome.report.tier.to_string(),
                    exact: true,
                    order: order.clone(),
                    cost: cost.to_string(),
                    cost_log2,
                    decomposition: None,
                },
            );
        }
        Reply::Ok(Box::new(OkReply {
            id: req.id,
            op: req.op,
            problem: req.problem,
            fingerprint: hash,
            cached: false,
            tier: outcome.report.tier.to_string(),
            exact: outcome.report.exact,
            degraded: degrade != Degrade::Full,
            order,
            cost: cost.to_string(),
            cost_log2,
            decomposition: None,
            explain: explain_text,
            elapsed_us: 0,
        }))
    }

    fn solve_qoh(&self, req: &Request, degrade: Degrade) -> Reply {
        let text = req.instance.as_deref().unwrap_or_default();
        let inst = match textio::qoh_from_text(text) {
            Ok(i) => i,
            Err(e) => return err(req, ErrorKind::Parse, format!("instance: {e}")),
        };
        let key = format!("qoh {}", canonical_qoh(&inst));
        let hash = fnv1a(key.as_bytes());
        if Self::caching(req) {
            if let Some(hit) = self.cache.lookup(hash, &key) {
                return ok_from_cache(req, hash, hit);
            }
        }
        let degrade = Self::effective_degrade(req, degrade);
        let chain = match degrade.qoh_chain() {
            Some(c) => c,
            None => match chain_spec(req) {
                Ok(spec) => match spec {
                    Some(s) => match QohTier::parse_chain(s) {
                        Ok(c) => c,
                        Err(e) => return err(req, ErrorKind::Usage, e),
                    },
                    None => QohTier::default_chain(),
                },
                Err(e) => return err(req, ErrorKind::Usage, e),
            },
        };
        let cfg = QohDriverConfig {
            budget: self.budget_spec(req),
            chain,
            threads: req.threads,
            ..QohDriverConfig::default()
        };
        let outcome = match aqo_driver::optimize_qoh(&inst, &cfg) {
            Ok(o) => o,
            Err(e) => return err(req, ErrorKind::Driver, e.to_string()),
        };
        let order = outcome.plan.sequence.order().to_vec();
        let fragments: Vec<(usize, usize)> = outcome.plan.decomposition.fragments().to_vec();
        let cost_log2 = outcome.plan.cost.log2();
        let explain_text = (req.op == Op::Explain)
            .then(|| {
                explain::explain_qoh(&inst, &outcome.plan.sequence, &outcome.plan.decomposition)
            })
            .flatten();
        if Self::caching(req) && outcome.report.exact {
            self.cache.insert(
                hash,
                key,
                CachedPlan {
                    tier: outcome.report.tier.to_string(),
                    exact: true,
                    order: order.clone(),
                    cost: outcome.plan.cost.to_string(),
                    cost_log2,
                    decomposition: Some(fragments.clone()),
                },
            );
        }
        Reply::Ok(Box::new(OkReply {
            id: req.id,
            op: req.op,
            problem: req.problem,
            fingerprint: hash,
            cached: false,
            tier: outcome.report.tier.to_string(),
            exact: outcome.report.exact,
            degraded: degrade != Degrade::Full,
            order,
            cost: outcome.plan.cost.to_string(),
            cost_log2,
            decomposition: Some(fragments),
            explain: explain_text,
            elapsed_us: 0,
        }))
    }

    fn solve_clique(&self, req: &Request) -> Reply {
        if req.method.is_some() || req.fallback.is_some() {
            return err(req, ErrorKind::Usage, "clique has no method/fallback selection".into());
        }
        let text = req.instance.as_deref().unwrap_or_default();
        let g = match aqo_graph::io::from_dimacs(text) {
            Ok(g) => g,
            Err(e) => return err(req, ErrorKind::Parse, format!("instance: {e}")),
        };
        // Canonical DIMACS identity: vertex count plus the sorted,
        // endpoint-normalized edge list (same construction as
        // `aqo_core::fingerprint`, specialized to unweighted graphs).
        let mut edges: Vec<(usize, usize)> =
            g.edges().map(|(u, v)| if u < v { (u, v) } else { (v, u) }).collect();
        edges.sort_unstable();
        edges.dedup();
        let mut key = format!("clique {}\n", g.n());
        for (u, v) in &edges {
            key.push_str(&format!("e {u} {v}\n"));
        }
        let hash = fnv1a(key.as_bytes());
        if Self::caching(req) {
            if let Some(hit) = self.cache.lookup(hash, &key) {
                return ok_from_cache(req, hash, hit);
            }
        }
        let clique = aqo_graph::clique::max_clique(&g);
        let omega = clique.len();
        let explain_text = (req.op == Op::Explain).then(|| {
            format!(
                "max clique: {clique:?} (omega = {omega}; colouring/degeneracy \
                 upper bound {})\n",
                aqo_graph::coloring::clique_upper_bound(&g)
            )
        });
        if Self::caching(req) {
            self.cache.insert(
                hash,
                key,
                CachedPlan {
                    tier: "clique".into(),
                    exact: true,
                    order: clique.clone(),
                    cost: omega.to_string(),
                    cost_log2: omega as f64,
                    decomposition: None,
                },
            );
        }
        Reply::Ok(Box::new(OkReply {
            id: req.id,
            op: req.op,
            problem: req.problem,
            fingerprint: hash,
            cached: false,
            tier: "clique".into(),
            exact: true,
            degraded: false,
            order: clique,
            cost: omega.to_string(),
            cost_log2: omega as f64,
            decomposition: None,
            explain: explain_text,
            elapsed_us: 0,
        }))
    }
}

/// `method` routes as a single-tier chain; `fallback` as written. The
/// two are mutually exclusive (already rejected at parse time, but the
/// engine revalidates because tests construct requests directly).
fn chain_spec(req: &Request) -> Result<Option<&str>, String> {
    match (&req.method, &req.fallback) {
        (Some(_), Some(_)) => Err("`method` and `fallback` are mutually exclusive".into()),
        (Some(m), None) => Ok(Some(m.as_str())),
        (None, Some(f)) => Ok(Some(f.as_str())),
        (None, None) => Ok(None),
    }
}

fn err(req: &Request, kind: ErrorKind, message: String) -> Reply {
    Reply::Err(ErrReply::new(req.id, kind, message))
}

/// Builds the reply for a cache hit: copy-only, no recomputation.
fn ok_from_cache(req: &Request, fingerprint: u64, hit: CachedPlan) -> Reply {
    Reply::Ok(Box::new(OkReply {
        id: req.id,
        op: req.op,
        problem: req.problem,
        fingerprint,
        cached: true,
        tier: hit.tier,
        exact: hit.exact,
        degraded: false,
        order: hit.order,
        cost: hit.cost,
        cost_log2: hit.cost_log2,
        decomposition: hit.decomposition,
        explain: None,
        elapsed_us: 0,
    }))
}

/// `[2, 0, 1]` → `"2,0,1"` for journal fields (no array values).
pub(crate) fn join_indices(order: &[usize]) -> String {
    let mut out = String::with_capacity(order.len() * 3);
    for (i, v) in order.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
    }
    out
}

/// `[(1, 1), (2, 3)]` → `"1-1,2-3"` for journal fields.
pub(crate) fn join_fragments(frags: &[(usize, usize)]) -> String {
    let mut out = String::with_capacity(frags.len() * 5);
    for (i, (lo, hi)) in frags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{lo}-{hi}"));
    }
    out
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
