//! The deterministic fault-campaign runner behind `aqo chaos`
//! (`CHAOS.json`, schema `aqo-chaos/v1`).
//!
//! The campaign boots a real in-process server on `127.0.0.1:0` and
//! sweeps the full fail-point catalog ([`aqo_core::faults::CATALOG`])
//! against every fault mode (`err`, `panic`, `delay`): one **cell** per
//! `site × mode` pair. A cell arms the site with a bounded fire count,
//! fires a handful of requests at the live server through the plain
//! (non-retrying) client, and classifies every raw outcome:
//!
//! - **ok, exact** — the reply's cost must equal the sequential driver's
//!   answer for that instance, precomputed with all faults disarmed
//!   (anything else is a correctness violation, the one unforgivable
//!   outcome);
//! - **ok, inexact** — a heuristic tier answered (pinned fallback chains
//!   or degradation); accepted without the cost oracle, which only bounds
//!   exact answers;
//! - **structured error** — `ok: false` with a wire-known `kind`
//!   (`injected`, `panic`, `driver`, `evicted`, …): the failure was
//!   *reported*, which is the contract;
//! - **transport error** — the connection dropped, stalled past the
//!   client deadline, or delivered a torn frame. Legitimate for the
//!   `serve::net::*` sites (that is exactly what they simulate) and a
//!   violation everywhere else.
//!
//! After each cell the faults are disarmed and the server is **probed**:
//! a `status` round trip must report `accepting` and a fresh uncached
//! optimize must produce the exact answer — proof the worker pool
//! survived whatever the cell injected. Storage sites are exercised
//! directly against the snapshot layer (save/load under fault, with the
//! previous-snapshot-intact invariant checked after every torn write).
//!
//! Three scripted scenarios ride along: a **slow-loris** client (partial
//! line held past the read deadline must be evicted with a structured
//! error), an **oversized line** (ditto at the size limit), and
//! **snapshot corruption** (interior bit rot salvages every intact line;
//! garbage is an error, never a panic). A final **warm-restart** check
//! reloads the server's own shutdown snapshot, then truncates and
//! garbage-fills it to prove restart survives both.
//!
//! Everything is countdown-based and seeded — no randomness, no timing
//! dependence in the verdicts — so a red campaign reproduces.

use crate::cache::{CachedPlan, PlanCache};
use crate::client::Client;
use crate::proto::{ErrorKind, Op, Problem, Request};
use crate::server::{ServeConfig, Server};
use crate::snapshot;
use aqo_bignum::BigUint;
use aqo_core::faults::{self, FaultKind, SiteInfo, CATALOG};
use aqo_core::fingerprint::fnv1a;
use aqo_core::{textio, workloads};
use aqo_obs::json::{self, JsonValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Campaign tuning. [`ChaosConfig::quick`] is the CI smoke shape;
/// the default is what produces the committed `CHAOS.json`.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Requests fired per cell (must exceed the fault count so every cell
    /// also observes post-fault recovery).
    pub requests_per_cell: usize,
    /// How many times each armed site fires before passing.
    pub fault_count: u64,
    /// Sleep injected by `delay`-mode faults, milliseconds.
    pub delay_ms: u64,
    /// Client-side read deadline per request (bounds torn-frame cells).
    pub client_timeout: Duration,
    /// Workload seed for the scenario pool.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            requests_per_cell: 4,
            fault_count: 2,
            delay_ms: 25,
            client_timeout: Duration::from_secs(2),
            seed: 42,
        }
    }
}

impl ChaosConfig {
    /// The reduced campaign CI runs on every push: one fire per site, two
    /// requests per cell, tighter client deadline.
    pub fn quick() -> Self {
        ChaosConfig {
            requests_per_cell: 2,
            fault_count: 1,
            delay_ms: 10,
            client_timeout: Duration::from_secs(1),
            seed: 42,
        }
    }
}

/// One `site × mode` cell's outcome tallies and verdict.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The fail-point site swept.
    pub site: &'static str,
    /// The site's owning layer (`driver`, `serve`, `storage`).
    pub layer: &'static str,
    /// Fault mode (`err`, `panic`, `delay`).
    pub mode: &'static str,
    /// Requests (or storage operations) attempted.
    pub requests: usize,
    /// Replies that were exact and cost-verified against the oracle.
    pub ok_exact: usize,
    /// Replies that were heuristic/degraded (no cost oracle applies).
    pub ok_inexact: usize,
    /// Structured error replies with a wire-known kind.
    pub structured_errors: usize,
    /// Transport-level failures (dropped/stalled/torn connections).
    pub transport_errors: usize,
    /// Panics contained by `catch_unwind` in direct storage calls.
    pub contained_panics: usize,
    /// `fail_point` hits observed at the site while armed.
    pub hits: u64,
    /// Whether the disarmed post-cell probe found the server healthy.
    pub probe_ok: bool,
    /// Invariant violations (empty means the cell passed).
    pub violations: Vec<String>,
}

impl CellResult {
    fn new(site: &SiteInfo, mode: &'static str) -> Self {
        CellResult {
            site: site.site,
            layer: site.layer,
            mode,
            requests: 0,
            ok_exact: 0,
            ok_inexact: 0,
            structured_errors: 0,
            transport_errors: 0,
            contained_panics: 0,
            hits: 0,
            probe_ok: false,
            violations: Vec::new(),
        }
    }
}

/// A scripted end-to-end scenario's verdict.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario name (`slow_loris`, `oversized_line`, …).
    pub name: &'static str,
    /// Whether every check in the scenario held.
    pub passed: bool,
    /// Human-readable outcome summary (or the first failure).
    pub detail: String,
}

/// The whole campaign: every cell, every scenario, the server's own
/// shutdown report.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Echo of the workload seed.
    pub seed: u64,
    /// Echo of requests per cell.
    pub requests_per_cell: usize,
    /// Echo of the per-site fire count.
    pub fault_count: u64,
    /// Per-cell results, in catalog × mode sweep order.
    pub cells: Vec<CellResult>,
    /// Scripted scenario results.
    pub scenarios: Vec<ScenarioResult>,
    /// The campaign server's final [`crate::server::ServiceReport`], as
    /// its JSON rendering (`None` if the server failed to shut down).
    pub server_report: Option<String>,
}

impl ChaosReport {
    /// Total invariant violations across cells and scenarios (the
    /// acceptance bar is zero).
    pub fn total_violations(&self) -> usize {
        self.cells.iter().map(|c| c.violations.len()).sum::<usize>()
            + self.scenarios.iter().filter(|s| !s.passed).count()
            + usize::from(self.server_report.is_none())
    }

    /// Whether every disarmed probe found the worker pool healthy.
    pub fn pool_intact(&self) -> bool {
        self.cells.iter().all(|c| c.probe_ok)
    }

    /// `CHAOS.json` rendering, schema `aqo-chaos/v1`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(8192);
        out.push_str("{\n  \"schema\": \"aqo-chaos/v1\",\n");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"requests_per_cell\": {},", self.requests_per_cell);
        let _ = writeln!(out, "  \"fault_count\": {},", self.fault_count);
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"site\": \"{}\", \"layer\": \"{}\", \"mode\": \"{}\", \
                 \"requests\": {}, \"ok_exact\": {}, \"ok_inexact\": {}, \
                 \"structured_errors\": {}, \"transport_errors\": {}, \
                 \"contained_panics\": {}, \"hits\": {}, \"probe_ok\": {}, \
                 \"violations\": [",
                c.site,
                c.layer,
                c.mode,
                c.requests,
                c.ok_exact,
                c.ok_inexact,
                c.structured_errors,
                c.transport_errors,
                c.contained_panics,
                c.hits,
                c.probe_ok,
            );
            for (j, v) in c.violations.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json::escape_into(&mut out, v);
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            let _ = write!(out, "    {{\"name\": \"{}\", \"passed\": {}, \"detail\": ", s.name, s.passed);
            json::escape_into(&mut out, &s.detail);
            out.push('}');
            out.push_str(if i + 1 < self.scenarios.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        if let Some(report) = &self.server_report {
            out.push_str("  \"server\": ");
            // The service report is already JSON; inline it with the
            // surrounding indentation normalized.
            out.push_str(report.trim_end());
            out.push_str(",\n");
        }
        let _ = writeln!(
            out,
            "  \"totals\": {{\"cells\": {}, \"requests\": {}, \"violations\": {}, \
             \"pool_intact\": {}}}",
            self.cells.len(),
            self.cells.iter().map(|c| c.requests).sum::<usize>(),
            self.total_violations(),
            self.pool_intact(),
        );
        out.push('}');
        out.push('\n');
        out
    }
}

/// The disarmed-oracle scenario pool: one QO_N and one QO_H instance with
/// their sequential-driver exact costs.
struct Pool {
    qon_text: String,
    qon_cost: String,
    qoh_text: String,
    qoh_cost: String,
}

impl Pool {
    fn build(seed: u64) -> Result<Pool, String> {
        let params = workloads::WorkloadParams::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let qon = workloads::chain(6, &params, &mut rng);
        let qon_outcome = aqo_driver::optimize_qon(&qon, &aqo_driver::QonDriverConfig::default())
            .map_err(|e| format!("chaos oracle qon: {e}"))?;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1000));
        let base = workloads::chain(5, &params, &mut rng);
        // Memory = product of all relation sizes: every intermediate is
        // bounded by it, so the exhaustive tier always finds a plan.
        let memory = base.sizes().iter().fold(BigUint::from(1u64), |acc, s| &acc * s);
        let qoh = aqo_core::qoh::QoHInstance::new(
            base.graph().clone(),
            base.sizes().to_vec(),
            base.selectivity().clone(),
            memory,
        );
        let qoh_outcome = aqo_driver::optimize_qoh(&qoh, &aqo_driver::QohDriverConfig::default())
            .map_err(|e| format!("chaos oracle qoh: {e}"))?;
        Ok(Pool {
            qon_text: textio::qon_to_text(&qon),
            qon_cost: qon_outcome.optimum.cost.to_string(),
            qoh_text: textio::qoh_to_text(&qoh),
            qoh_cost: qoh_outcome.plan.cost.to_string(),
        })
    }
}

/// How a site's cell shapes its requests: which problem family reaches
/// the site, whether the chain is pinned so the site actually fires, and
/// whether the plan cache may participate (driver-site cells bypass it so
/// repeat requests keep exercising the tiers).
fn template(site: &str) -> (Problem, Option<&'static str>, bool) {
    match site {
        "qon::dp" => (Problem::Qon, Some("dp,greedy"), false),
        "qon::bnb" => (Problem::Qon, Some("bnb,greedy"), false),
        "qon::ikkbz" => (Problem::Qon, Some("ikkbz,greedy"), false),
        "qon::greedy" => (Problem::Qon, Some("greedy"), false),
        "qoh::exhaustive" => (Problem::Qoh, Some("exhaustive,greedy"), false),
        "qoh::greedy" => (Problem::Qoh, Some("greedy"), false),
        _ => (Problem::Qon, None, true),
    }
}

/// Runs `f` with panics contained and silenced; `Err(())` means it
/// panicked (the panic-mode outcome of direct storage calls).
fn contained<T>(f: impl FnOnce() -> T) -> Result<T, ()> {
    faults::with_quiet_panics(|| catch_unwind(AssertUnwindSafe(f))).map_err(|_| ())
}

/// A deterministic synthetic cache for the storage cells.
fn storage_cache(n: usize) -> PlanCache {
    let cache = PlanCache::new(64);
    for i in 0..n {
        let key = format!("qon cart=1 chaos-entry-{i}");
        cache.insert(
            fnv1a(key.as_bytes()),
            key,
            CachedPlan {
                tier: "dp".into(),
                exact: true,
                order: vec![i % 3, (i + 1) % 3, (i + 2) % 3],
                cost: format!("{}/7", i + 9),
                cost_log2: (i + 9) as f64,
                decomposition: None,
            },
        );
    }
    cache
}

/// Classifies one reply line into the cell tallies.
fn classify_reply(cell: &mut CellResult, line: &str, req_id: u64, expected_cost: &str, r: usize) {
    let Ok(doc) = json::parse(line) else {
        cell.violations.push(format!("req {r}: reply is not valid JSON"));
        return;
    };
    if matches!(doc.get("ok"), Some(JsonValue::Bool(true))) {
        if doc.get("id").and_then(JsonValue::as_num) != Some(req_id as f64) {
            cell.violations.push(format!("req {r}: reply id mismatch"));
            return;
        }
        let exact = matches!(doc.get("exact"), Some(JsonValue::Bool(true)));
        let degraded = matches!(doc.get("degraded"), Some(JsonValue::Bool(true)));
        if exact && !degraded {
            if doc.get("cost").and_then(JsonValue::as_str) == Some(expected_cost) {
                cell.ok_exact += 1;
            } else {
                cell.violations.push(format!(
                    "req {r}: exact reply cost {:?} != oracle {expected_cost}",
                    doc.get("cost").and_then(JsonValue::as_str).unwrap_or("<missing>")
                ));
            }
        } else {
            cell.ok_inexact += 1;
        }
    } else {
        let kind = doc
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        if ErrorKind::from_wire(kind).is_some() {
            cell.structured_errors += 1;
        } else {
            cell.violations.push(format!("req {r}: error reply with unknown kind `{kind}`"));
        }
    }
}

/// Disarmed health probe: `status` must report `accepting`, and a fresh
/// uncached optimize must return the oracle's exact cost — both through
/// the real admission path, proving the worker pool survived the cell.
fn probe(addr: &str, pool: &Pool, timeout: Duration) -> Result<(), String> {
    let mut client = Client::connect_with_timeout(addr, Some(timeout))
        .map_err(|e| format!("probe connect: {e}"))?;
    let mut st = Request::new(Op::Status, Problem::Qon);
    st.id = 7_001;
    let line = client.roundtrip(&st).map_err(|e| format!("probe status: {e}"))?;
    let doc = json::parse(&line).map_err(|e| format!("probe status parse: {e}"))?;
    if !matches!(doc.get("ok"), Some(JsonValue::Bool(true)))
        || !matches!(doc.get("accepting"), Some(JsonValue::Bool(true)))
    {
        return Err(format!("probe status unhealthy: {line}"));
    }
    let mut opt = Request::new(Op::Optimize, Problem::Qon);
    opt.id = 7_002;
    opt.instance = Some(pool.qon_text.clone());
    opt.use_cache = false;
    let line = client.roundtrip(&opt).map_err(|e| format!("probe optimize: {e}"))?;
    let doc = json::parse(&line).map_err(|e| format!("probe optimize parse: {e}"))?;
    let cost = doc.get("cost").and_then(JsonValue::as_str);
    if !matches!(doc.get("ok"), Some(JsonValue::Bool(true))) || cost != Some(pool.qon_cost.as_str())
    {
        return Err(format!("probe optimize wrong answer: {line}"));
    }
    Ok(())
}

/// One cell against the live server: arm, fire, classify, disarm, probe.
fn run_server_cell(
    addr: &str,
    site: &SiteInfo,
    mode: &'static str,
    kind: FaultKind,
    cfg: &ChaosConfig,
    pool: &Pool,
    cell_index: usize,
) -> CellResult {
    let mut cell = CellResult::new(site, mode);
    let (problem, fallback, use_cache) = template(site.site);
    let (instance, expected_cost) = match problem {
        Problem::Qoh => (&pool.qoh_text, &pool.qoh_cost),
        _ => (&pool.qon_text, &pool.qon_cost),
    };
    faults::clear();
    faults::arm(site.site, kind, cfg.fault_count);
    let mut client = Client::connect_with_timeout(addr, Some(cfg.client_timeout)).ok();
    for r in 0..cfg.requests_per_cell {
        cell.requests += 1;
        if client.is_none() {
            client = Client::connect_with_timeout(addr, Some(cfg.client_timeout)).ok();
        }
        let Some(cl) = client.as_mut() else {
            cell.transport_errors += 1;
            continue;
        };
        let mut req = Request::new(Op::Optimize, problem);
        req.id = (cell_index * 1000 + r) as u64;
        req.instance = Some(instance.clone());
        req.fallback = fallback.map(String::from);
        req.use_cache = use_cache;
        match cl.roundtrip(&req) {
            Ok(line) => classify_reply(&mut cell, &line, req.id, expected_cost, r),
            Err(_) => {
                // Transport failures are what the net sites simulate; the
                // connection may hold torn bytes, so never reuse it.
                cell.transport_errors += 1;
                client = None;
            }
        }
    }
    cell.hits = faults::hits(site.site);
    faults::clear();
    if !site.site.starts_with("serve::net::") && cell.transport_errors > 0 {
        cell.violations.push(format!(
            "{} transport errors at a non-network site",
            cell.transport_errors
        ));
    }
    match probe(addr, pool, cfg.client_timeout) {
        Ok(()) => cell.probe_ok = true,
        Err(e) => cell.violations.push(format!("post-cell probe failed: {e}")),
    }
    cell
}

/// One storage cell, run directly against the snapshot layer (these sites
/// never fire on the request path). The torn-write invariant — a failed
/// save leaves the previous snapshot loadable — is checked after every
/// operation.
fn run_storage_cell(
    site: &SiteInfo,
    mode: &'static str,
    kind: FaultKind,
    cfg: &ChaosConfig,
    dir: &Path,
    cell_index: usize,
) -> CellResult {
    let mut cell = CellResult::new(site, mode);
    let path = dir.join(format!("storage-cell-{cell_index}.snap"));
    let small = storage_cache(3);
    let big = storage_cache(5);
    faults::clear();
    // A clean baseline snapshot, before arming: the file the torn write
    // must not destroy.
    if let Err(e) = snapshot::save(&path, &small) {
        cell.violations.push(format!("baseline save failed: {e}"));
        return cell;
    }
    let mut expect = 3usize;
    faults::arm(site.site, kind, cfg.fault_count);
    for r in 0..cfg.requests_per_cell {
        cell.requests += 1;
        if site.site == "serve::storage::snapshot_write" {
            match contained(|| snapshot::save(&path, &big)) {
                Ok(Ok(n)) => {
                    cell.ok_exact += 1;
                    expect = n;
                }
                Ok(Err(_)) => cell.structured_errors += 1,
                Err(()) => cell.contained_panics += 1,
            }
        } else {
            let fresh = PlanCache::new(64);
            match contained(|| snapshot::load(&path, &fresh)) {
                Ok(Ok(n)) if n == expect => cell.ok_exact += 1,
                Ok(Ok(n)) => cell
                    .violations
                    .push(format!("req {r}: load returned {n} entries, expected {expect}")),
                Ok(Err(_)) => cell.structured_errors += 1,
                Err(()) => cell.contained_panics += 1,
            }
        }
        // The crash-safety invariant, checked with the *load* side
        // disarmed where possible: whatever just happened, the file at
        // `path` must still hold a loadable snapshot of `expect` entries.
        if site.site == "serve::storage::snapshot_write" {
            let fresh = PlanCache::new(64);
            match contained(|| snapshot::load(&path, &fresh)) {
                Ok(Ok(n)) if n == expect => {}
                Ok(Ok(n)) => cell.violations.push(format!(
                    "req {r}: snapshot holds {n} entries after save, expected {expect}"
                )),
                Ok(Err(e)) => cell
                    .violations
                    .push(format!("req {r}: snapshot unloadable after save: {e}")),
                Err(()) => cell.violations.push(format!("req {r}: post-save load panicked")),
            }
        }
    }
    cell.hits = faults::hits(site.site);
    faults::clear();
    // Disarmed probe: a clean save-then-load round trip must work.
    let fresh = PlanCache::new(64);
    match snapshot::save(&path, &big).and_then(|_| snapshot::load(&path, &fresh)) {
        Ok(5) => cell.probe_ok = true,
        Ok(n) => cell.violations.push(format!("disarmed probe loaded {n} entries, expected 5")),
        Err(e) => cell.violations.push(format!("disarmed probe failed: {e}")),
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("tmp"));
    cell
}

/// Reads one reply line from a raw socket (used by the scripted abuse
/// scenarios, which deliberately bypass the well-behaved client).
fn read_raw_line(stream: &mut TcpStream, timeout: Duration) -> Result<String, String> {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let deadline = Instant::now() + timeout;
    let mut pending = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            pending.truncate(pos);
            return Ok(String::from_utf8_lossy(&pending).into_owned());
        }
        if Instant::now() >= deadline {
            return Err("no reply before deadline".into());
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err("connection closed without a reply".into()),
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}

/// Expects a structured `evicted` error on `stream` within `timeout`.
fn expect_eviction(stream: &mut TcpStream, timeout: Duration) -> Result<String, String> {
    let line = read_raw_line(stream, timeout)?;
    let doc = json::parse(&line).map_err(|e| format!("eviction reply parse: {e}"))?;
    let kind = doc
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(JsonValue::as_str)
        .unwrap_or("");
    if kind != "evicted" {
        return Err(format!("expected an `evicted` error, got: {line}"));
    }
    Ok(line)
}

/// Slow-loris scenario: hold a partial request line open past the read
/// deadline; the server must evict with a structured error, not hang a
/// connection thread.
fn slow_loris_scenario(addr: &str, read_deadline: Duration) -> ScenarioResult {
    let run = || -> Result<String, String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.write_all(b"{\"op\": \"status\"").map_err(|e| format!("write: {e}"))?;
        stream.flush().map_err(|e| format!("flush: {e}"))?;
        let t0 = Instant::now();
        expect_eviction(&mut stream, read_deadline * 4 + Duration::from_secs(1))?;
        Ok(format!("evicted after {:?} (deadline {:?})", t0.elapsed(), read_deadline))
    };
    match run() {
        Ok(detail) => ScenarioResult { name: "slow_loris", passed: true, detail },
        Err(e) => ScenarioResult { name: "slow_loris", passed: false, detail: e },
    }
}

/// Oversized-line scenario: stream a line past the size limit; the server
/// must evict instead of buffering without bound.
fn oversized_scenario(addr: &str, max_line_bytes: usize) -> ScenarioResult {
    let run = || -> Result<String, String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let blob = vec![b'x'; max_line_bytes * 2];
        // The server may evict (and reset) before the whole blob is
        // written; a short write still proves the point.
        let _ = stream.write_all(&blob);
        let _ = stream.flush();
        expect_eviction(&mut stream, Duration::from_secs(5))?;
        Ok(format!("evicted after {} oversized bytes (limit {max_line_bytes})", blob.len()))
    };
    match run() {
        Ok(detail) => ScenarioResult { name: "oversized_line", passed: true, detail },
        Err(e) => ScenarioResult { name: "oversized_line", passed: false, detail: e },
    }
}

/// Snapshot-corruption scenario: interior bit rot salvages every intact
/// line; a garbage file is a structured error, never a panic.
fn snapshot_corruption_scenario(dir: &Path) -> ScenarioResult {
    let run = || -> Result<String, String> {
        faults::clear();
        let path = dir.join("corruption-scenario.snap");
        snapshot::save(&path, &storage_cache(5)).map_err(|e| format!("save: {e}"))?;
        let text = std::fs::read_to_string(&path).map_err(|e| format!("read back: {e}"))?;
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[2] = lines[2].replace("chaos-entry", "rotten-bits");
        std::fs::write(&path, lines.join("\n")).map_err(|e| format!("corrupt: {e}"))?;
        let fresh = PlanCache::new(64);
        let salvaged = match contained(|| snapshot::load(&path, &fresh)) {
            Ok(Ok(n)) => n,
            Ok(Err(e)) => return Err(format!("salvage load failed outright: {e}")),
            Err(()) => return Err("salvage load panicked".into()),
        };
        if salvaged != 4 {
            return Err(format!("salvaged {salvaged} of 5 entries, expected 4"));
        }
        std::fs::write(&path, "!! not a snapshot at all\n").map_err(|e| format!("garbage: {e}"))?;
        match contained(|| snapshot::load(&path, &PlanCache::new(8))) {
            Ok(Err(_)) => {}
            Ok(Ok(n)) => return Err(format!("garbage file loaded {n} entries")),
            Err(()) => return Err("garbage file panicked the loader".into()),
        }
        let _ = std::fs::remove_file(&path);
        Ok("interior corruption salvaged 4/5; garbage file errored cleanly".into())
    };
    match run() {
        Ok(detail) => ScenarioResult { name: "snapshot_corruption", passed: true, detail },
        Err(e) => ScenarioResult { name: "snapshot_corruption", passed: false, detail: e },
    }
}

/// Warm-restart scenario, run after the campaign server shut down and
/// wrote its snapshot: a fresh server warm-loads it; a truncated copy
/// still starts (salvaging); a garbage copy starts cold — none panic.
fn warm_restart_scenario(cfg: &ServeConfig, snap_path: &Path) -> ScenarioResult {
    let run = || -> Result<String, String> {
        faults::clear();
        if !snap_path.exists() {
            return Err(format!("shutdown snapshot missing at {}", snap_path.display()));
        }
        let warm = Server::new(cfg);
        let warm_len = warm.engine().cache().stats().len;
        if warm_len == 0 {
            return Err("warm restart loaded 0 plans from the shutdown snapshot".into());
        }
        let text =
            std::fs::read_to_string(snap_path).map_err(|e| format!("read snapshot: {e}"))?;
        let cut = text.len().saturating_sub(text.len() / 4).max(1);
        std::fs::write(snap_path, &text[..cut]).map_err(|e| format!("truncate: {e}"))?;
        let truncated = match contained(|| Server::new(cfg)) {
            Ok(s) => s.engine().cache().stats().len,
            Err(()) => return Err("truncated snapshot panicked server startup".into()),
        };
        std::fs::write(snap_path, "@@ total garbage @@\n").map_err(|e| format!("garbage: {e}"))?;
        match contained(|| Server::new(cfg)) {
            Ok(s) if s.engine().cache().stats().len == 0 => {}
            Ok(s) => {
                return Err(format!(
                    "garbage snapshot produced {} cached plans",
                    s.engine().cache().stats().len
                ))
            }
            Err(()) => return Err("garbage snapshot panicked server startup".into()),
        }
        Ok(format!(
            "warm restart loaded {warm_len} plans; truncated copy salvaged {truncated}; \
             garbage copy started cold"
        ))
    };
    match run() {
        Ok(detail) => ScenarioResult { name: "warm_restart", passed: true, detail },
        Err(e) => ScenarioResult { name: "warm_restart", passed: false, detail: e },
    }
}

/// Runs the full campaign and returns the report (the CLI writes
/// `CHAOS.json` and sets the exit code from
/// [`ChaosReport::total_violations`]).
pub fn run(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    faults::clear();
    let pool = Pool::build(cfg.seed)?;
    let dir = std::env::temp_dir().join(format!("aqo-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("chaos tmp dir: {e}"))?;
    let snap_path: PathBuf = dir.join("serve-cache.snap");
    let serve_cfg = ServeConfig {
        threads: 2,
        max_inflight: 8,
        cache_capacity: 256,
        idle_timeout: None,
        default_timeout: None,
        conn_timeout: Duration::from_millis(20),
        read_deadline: Some(Duration::from_millis(400)),
        max_line_bytes: 4096,
        degrade: true,
        snapshot_path: Some(snap_path.clone()),
        // Chaos runs sample aggressively so the series rings exercise
        // wraparound under fault churn.
        obs_interval: Some(Duration::from_millis(50)),
        record: None,
    };
    let read_deadline = Duration::from_millis(400);
    let server = Server::new(&serve_cfg);
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("chaos listener: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("chaos listener addr: {e}"))?
        .to_string();
    let modes: [(FaultKind, &'static str); 3] = [
        (FaultKind::Error, "err"),
        (FaultKind::Panic, "panic"),
        (FaultKind::Delay(Duration::from_millis(cfg.delay_ms)), "delay"),
    ];
    let mut cells = Vec::with_capacity(CATALOG.len() * modes.len());
    let mut scenarios = Vec::new();
    let mut server_report = None;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(&listener));
        for site in CATALOG {
            for (kind, mode) in modes {
                let index = cells.len();
                let cell = if site.layer == "storage" {
                    run_storage_cell(site, mode, kind, cfg, &dir, index)
                } else {
                    run_server_cell(&addr, site, mode, kind, cfg, &pool, index)
                };
                cells.push(cell);
            }
        }
        scenarios.push(slow_loris_scenario(&addr, read_deadline));
        scenarios.push(oversized_scenario(&addr, serve_cfg.max_line_bytes));
        scenarios.push(snapshot_corruption_scenario(&dir));
        faults::clear();
        let mut sd = Request::new(Op::Shutdown, Problem::Qon);
        sd.id = 999_999;
        let _ = crate::client::oneshot(&addr, &sd);
        if let Ok(Ok(report)) = handle.join() {
            server_report = Some(report.to_json());
        }
    });
    scenarios.push(warm_restart_scenario(&serve_cfg, &snap_path));
    let _ = std::fs::remove_file(&snap_path);
    let _ = std::fs::remove_dir(&dir);
    let report = ChaosReport {
        seed: cfg.seed,
        requests_per_cell: cfg.requests_per_cell,
        fault_count: cfg.fault_count,
        cells,
        scenarios,
        server_report,
    };
    if aqo_obs::enabled() {
        aqo_obs::counter_handle!("chaos.cells").add(report.cells.len() as u64);
        aqo_obs::counter_handle!("chaos.requests")
            .add(report.cells.iter().map(|c| c.requests).sum::<usize>() as u64);
        aqo_obs::counter_handle!("chaos.violations").add(report.total_violations() as u64);
        aqo_obs::journal::event(
            "chaos_campaign",
            vec![
                ("cells", report.cells.len().into()),
                ("violations", report.total_violations().into()),
                ("pool_intact", report.pool_intact().into()),
            ],
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_site_has_a_template() {
        for site in CATALOG {
            let (problem, fallback, _) = template(site.site);
            // Driver sites pin a chain that starts at the faulted tier so
            // the fault actually fires; everything else rides the default.
            if site.layer == "driver" {
                assert!(fallback.is_some(), "{} should pin its chain", site.site);
            }
            assert!(matches!(problem, Problem::Qon | Problem::Qoh));
        }
    }

    #[test]
    fn report_json_is_parseable_and_counts_violations() {
        let site = &CATALOG[0];
        let mut cell = CellResult::new(site, "err");
        cell.requests = 4;
        cell.ok_exact = 2;
        cell.structured_errors = 2;
        cell.probe_ok = true;
        let mut bad = CellResult::new(&CATALOG[1], "panic");
        bad.requests = 1;
        bad.probe_ok = true;
        bad.violations.push("req 0: exact reply cost \"9\" != oracle 7".into());
        let report = ChaosReport {
            seed: 42,
            requests_per_cell: 4,
            fault_count: 2,
            cells: vec![cell, bad],
            scenarios: vec![ScenarioResult {
                name: "slow_loris",
                passed: true,
                detail: "evicted".into(),
            }],
            server_report: Some("{\"reason\": \"shutdown\"}".into()),
        };
        assert_eq!(report.total_violations(), 1);
        assert!(report.pool_intact());
        let doc = json::parse(&report.to_json()).expect("CHAOS.json parses");
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("aqo-chaos/v1"));
        assert_eq!(doc.get("cells").and_then(JsonValue::as_arr).map(<[_]>::len), Some(2));
        let totals = doc.get("totals").expect("totals");
        assert_eq!(totals.get("violations").and_then(JsonValue::as_num), Some(1.0));
    }

    #[test]
    fn storage_cache_is_deterministic() {
        let a = storage_cache(4);
        let b = storage_cache(4);
        assert_eq!(a.export().len(), 4);
        let mut ka: Vec<String> = a.export().into_iter().map(|(k, _)| k).collect();
        let mut kb: Vec<String> = b.export().into_iter().map(|(k, _)| k).collect();
        ka.sort();
        kb.sort();
        assert_eq!(ka, kb);
    }
}
