//! Request-time workload recording: the serve-side half of the
//! record/replay loop.
//!
//! When a [`RecordSink`](crate::record::RecordSink) is installed in
//! [`ServeConfig`](crate::ServeConfig), every successful, non-degraded
//! `optimize` reply for a QO_N/QO_H instance is captured as a
//! [`RecordedRequest`] — the request knobs plus the observed plan — and
//! buffered in memory. The sink is shared with the caller (the CLI), who
//! drains it after the server stops and writes the `aqo-workload/v1` file
//! through `aqo-replay` (this crate deliberately does not know the file
//! format; the dependency points the other way).
//!
//! The same capture rules serve the loadgen `--record` path, so journaled,
//! served, and load-generated workloads agree on what is replayable:
//! optimize only (explain replies are about the walkthrough text), never
//! degraded (the baseline would reflect overload, not the build), and
//! never clique (there is no execution story for clique plans).

use crate::proto::{Op, Problem, Reply, Request};
use aqo_obs::json::JsonValue;
use std::sync::{Arc, Mutex, PoisonError};

/// One replayable observation: what was asked, and what the build
/// answered. Field names mirror the wire protocol; `latency_us` is the
/// server-side handling time (`elapsed_us`) for serve-recorded entries
/// and the client-observed round trip for loadgen-recorded ones.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedRequest {
    /// Request id as seen on the wire.
    pub id: u64,
    /// Problem family (`Qon` or `Qoh`; clique is never recorded).
    pub problem: Problem,
    /// Inline instance text.
    pub instance: String,
    /// Single-tier method pin, if the request carried one.
    pub method: Option<String>,
    /// Fallback-chain pin, if the request carried one.
    pub fallback: Option<String>,
    /// Per-request wall-clock budget.
    pub timeout_ms: Option<u64>,
    /// Per-request expansion budget.
    pub max_expansions: Option<u64>,
    /// Worker threads for exact tiers.
    pub threads: usize,
    /// Whether cartesian sequences were admissible.
    pub allow_cartesian: bool,
    /// Canonical instance fingerprint from the reply.
    pub fingerprint: u64,
    /// Tier that produced the plan.
    pub tier: String,
    /// Whether the plan is exact.
    pub exact: bool,
    /// Whether the reply came from the plan cache.
    pub cached: bool,
    /// Exact cost as a decimal/rational string.
    pub cost: String,
    /// `log2` of the cost.
    pub cost_log2: f64,
    /// The join sequence.
    pub order: Vec<usize>,
    /// QO_H pipeline fragments.
    pub decomposition: Option<Vec<(usize, usize)>>,
    /// Observed latency in microseconds.
    pub latency_us: u64,
}

/// Shared buffer of recorded observations. A leaf lock: nothing — obs
/// registry included — is ever acquired while it is held.
pub type RecordSink = Arc<Mutex<Vec<RecordedRequest>>>;

/// A fresh, empty sink to hand to [`ServeConfig`](crate::ServeConfig) or
/// the loadgen.
pub fn new_sink() -> RecordSink {
    Arc::new(Mutex::new(Vec::new()))
}

/// Takes everything recorded so far out of the sink.
pub fn drain(sink: &RecordSink) -> Vec<RecordedRequest> {
    std::mem::take(&mut *sink.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Builds the recorded observation for one request/reply pair, or `None`
/// when the pair is not replayable: errors (nothing to diff against),
/// explain/status/control ops, degraded replies (the chain that ran was
/// overload-chosen, not request-chosen), and clique (no execution story).
pub fn capture(req: &Request, reply: &Reply) -> Option<RecordedRequest> {
    let Reply::Ok(ok) = reply else { return None };
    if req.op != Op::Optimize || ok.degraded {
        return None;
    }
    if !matches!(req.problem, Problem::Qon | Problem::Qoh) {
        return None;
    }
    let instance = req.instance.clone()?;
    Some(RecordedRequest {
        id: req.id,
        problem: req.problem,
        instance,
        method: req.method.clone(),
        fallback: req.fallback.clone(),
        timeout_ms: req.timeout_ms,
        max_expansions: req.max_expansions,
        threads: req.threads,
        allow_cartesian: req.allow_cartesian,
        fingerprint: ok.fingerprint,
        tier: ok.tier.clone(),
        exact: ok.exact,
        cached: ok.cached,
        cost: ok.cost.clone(),
        cost_log2: ok.cost_log2,
        order: ok.order.clone(),
        decomposition: ok.decomposition.clone(),
        latency_us: ok.elapsed_us,
    })
}

/// As [`capture`], from a parsed client-side reply document instead of a
/// server-side [`Reply`] — the loadgen path, where `latency_us` is the
/// client-observed round trip. Applies the same skip rules (non-optimize,
/// non-ok, degraded, clique) and additionally skips replies missing any
/// plan field (a newer/older server this build cannot baseline against).
pub fn capture_from_json(
    req: &Request,
    doc: &JsonValue,
    latency_us: u64,
) -> Option<RecordedRequest> {
    if req.op != Op::Optimize || !matches!(req.problem, Problem::Qon | Problem::Qoh) {
        return None;
    }
    if !matches!(doc.get("ok"), Some(JsonValue::Bool(true))) {
        return None;
    }
    if matches!(doc.get("degraded"), Some(JsonValue::Bool(true))) {
        return None;
    }
    let instance = req.instance.clone()?;
    let fingerprint = doc
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .and_then(|s| u64::from_str_radix(s.strip_prefix("0x")?, 16).ok())?;
    let tier = doc.get("tier").and_then(JsonValue::as_str)?.to_string();
    let exact = matches!(doc.get("exact"), Some(JsonValue::Bool(true)));
    let cached = matches!(doc.get("cached"), Some(JsonValue::Bool(true)));
    let cost = doc.get("cost").and_then(JsonValue::as_str)?.to_string();
    let cost_log2 = doc.get("cost_log2").and_then(JsonValue::as_num)?;
    let order = doc
        .get("order")
        .and_then(JsonValue::as_arr)?
        .iter()
        .map(|v| v.as_num().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as usize))
        .collect::<Option<Vec<usize>>>()?;
    let decomposition = match doc.get("decomposition").and_then(JsonValue::as_arr) {
        None => None,
        Some(frags) => Some(
            frags
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().filter(|p| p.len() == 2)?;
                    let lo = pair[0].as_num().filter(|n| n.fract() == 0.0)? as usize;
                    let hi = pair[1].as_num().filter(|n| n.fract() == 0.0)? as usize;
                    Some((lo, hi))
                })
                .collect::<Option<Vec<(usize, usize)>>>()?,
        ),
    };
    Some(RecordedRequest {
        id: req.id,
        problem: req.problem,
        instance,
        method: req.method.clone(),
        fallback: req.fallback.clone(),
        timeout_ms: req.timeout_ms,
        max_expansions: req.max_expansions,
        threads: req.threads,
        allow_cartesian: req.allow_cartesian,
        fingerprint,
        tier,
        exact,
        cached,
        cost,
        cost_log2,
        order,
        decomposition,
        latency_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{ErrReply, ErrorKind, OkReply};

    fn ok_reply(req: &Request) -> Reply {
        Reply::Ok(Box::new(OkReply {
            id: req.id,
            op: req.op,
            problem: req.problem,
            fingerprint: 0xfeed,
            cached: false,
            tier: "dp".into(),
            exact: true,
            degraded: false,
            order: vec![1, 0],
            cost: "42".into(),
            cost_log2: 5.39,
            decomposition: None,
            explain: None,
            elapsed_us: 17,
        }))
    }

    #[test]
    fn captures_successful_optimize() {
        let mut req = Request::new(Op::Optimize, Problem::Qon);
        req.id = 3;
        req.instance = Some("qon\nvertices 1\nsize 0 5\n".into());
        req.method = Some("dp".into());
        let rec = capture(&req, &ok_reply(&req)).expect("captured");
        assert_eq!(rec.id, 3);
        assert_eq!(rec.method.as_deref(), Some("dp"));
        assert_eq!(rec.cost, "42");
        assert_eq!(rec.order, vec![1, 0]);
        assert_eq!(rec.latency_us, 17);
    }

    #[test]
    fn skips_unreplayable_pairs() {
        let mut req = Request::new(Op::Optimize, Problem::Qon);
        req.instance = Some("qon\nvertices 1\nsize 0 5\n".into());

        let err = Reply::Err(ErrReply::new(0, ErrorKind::Driver, "boom".into()));
        assert!(capture(&req, &err).is_none(), "errors are not replayable");

        let mut degraded = ok_reply(&req);
        if let Reply::Ok(ok) = &mut degraded {
            ok.degraded = true;
        }
        assert!(capture(&req, &degraded).is_none(), "degraded replies skipped");

        let mut explain = req.clone();
        explain.op = Op::Explain;
        assert!(capture(&explain, &ok_reply(&explain)).is_none(), "explain skipped");

        let mut clique = req.clone();
        clique.problem = Problem::Clique;
        assert!(capture(&clique, &ok_reply(&clique)).is_none(), "clique skipped");
    }

    #[test]
    fn json_capture_matches_reply_capture() {
        let mut req = Request::new(Op::Optimize, Problem::Qoh);
        req.id = 11;
        req.instance = Some("qoh\nvertices 1\nmemory 9\nsize 0 5\n".into());
        let mut reply = ok_reply(&req);
        if let Reply::Ok(ok) = &mut reply {
            ok.decomposition = Some(vec![(1, 1), (2, 3)]);
        }
        let direct = capture(&req, &reply).expect("direct capture");
        let doc = aqo_obs::json::parse(&reply.to_json_line()).expect("reply parses");
        let via_json = capture_from_json(&req, &doc, direct.latency_us).expect("json capture");
        assert_eq!(via_json, direct);
    }

    #[test]
    fn sink_drains_in_push_order() {
        let sink = new_sink();
        let mut req = Request::new(Op::Optimize, Problem::Qon);
        req.instance = Some("qon\nvertices 1\nsize 0 5\n".into());
        for id in 0..3 {
            req.id = id;
            let rec = capture(&req, &ok_reply(&req)).unwrap();
            sink.lock().unwrap().push(rec);
        }
        let drained = drain(&sink);
        assert_eq!(drained.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(drain(&sink).is_empty(), "drain empties the sink");
    }
}
