//! `aqo-serve`: a concurrent optimization service over the AQO drivers.
//!
//! The crate exposes the paper's optimizers (`QO_N`, `QO_H`, and the
//! clique core of the hardness reductions) as a line-oriented JSONL
//! request/response service with:
//!
//! - a canonical-fingerprint **plan cache** ([`cache::PlanCache`]) —
//!   sharded, capacity-bounded, clock (second-chance) eviction, keyed by
//!   the order-independent canonical instance encoding from
//!   `aqo_core::fingerprint`;
//! - an **admission controller** ([`server::Server`]) — a fixed worker
//!   pool on `aqo_core::parallel::run_workers` behind a bounded queue;
//!   overload yields a structured `"overloaded"` error instead of
//!   unbounded buffering;
//! - **graceful shutdown** — a `shutdown` request or an idle timeout
//!   drains in-flight work, flushes the trace journal, and emits a
//!   [`server::ServiceReport`];
//! - full `aqo-obs` instrumentation (counters, gauges, the
//!   `serve.request_us` histogram, and journal events).
//!
//! Transport is deliberately boring: newline-delimited JSON over
//! `std::net::TcpListener` or stdio, parsed with `aqo_obs::json`. The
//! wire protocol lives in [`proto`], the transport-free request handler
//! in [`engine`], the blocking client in [`client`], and the
//! benchmarking load generator behind `aqo loadgen` in [`loadgen`].
//! See `docs/SERVING.md` for the protocol reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod engine;
pub mod loadgen;
pub mod proto;
pub mod record;
pub mod server;
pub mod snapshot;

pub use cache::PlanCache;
pub use client::Client;
pub use engine::{Degrade, Engine};
pub use proto::{ErrorKind, Op, Problem, Reply, Request};
pub use record::{RecordSink, RecordedRequest};
pub use server::{ServeConfig, Server, ServiceReport};
