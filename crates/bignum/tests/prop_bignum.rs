//! Property-based tests for the bignum substrate: ring axioms, division
//! invariants, radix round-trips, and agreement between the exact types and
//! the log-domain companion.

use aqo_bignum::{BigInt, BigRational, BigUint, LogNum};
use proptest::prelude::*;

fn biguint() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..8).prop_map(BigUint::from_limbs)
}

fn bigint() -> impl Strategy<Value = BigInt> {
    (biguint(), any::<bool>()).prop_map(|(m, neg)| {
        let b = BigInt::from(m);
        if neg {
            -b
        } else {
            b
        }
    })
}

fn bigrational() -> impl Strategy<Value = BigRational> {
    (bigint(), prop::collection::vec(any::<u64>(), 1..4))
        .prop_map(|(n, d)| {
            let den = BigUint::from_limbs(d);
            let den = if den.is_zero() { BigUint::one() } else { den };
            BigRational::new(n, den)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributive(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_add_roundtrip(a in biguint(), b in biguint()) {
        let s = &a + &b;
        prop_assert_eq!(&s - &a, b.clone());
        prop_assert_eq!(&s - &b, a);
    }

    #[test]
    fn div_rem_invariant(a in biguint(), b in biguint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&q * &b + &r, a);
    }

    #[test]
    fn decimal_roundtrip(a in biguint()) {
        let s = a.to_string();
        prop_assert_eq!(BigUint::from_decimal(&s).unwrap(), a);
    }

    #[test]
    fn shift_is_pow2_mul(a in biguint(), k in 0u64..200) {
        prop_assert_eq!(&a << k, &a * &BigUint::from(2u64).pow(k));
    }

    #[test]
    fn gcd_divides_both(a in biguint(), b in biguint()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn isqrt_is_floor_sqrt(a in biguint()) {
        let r = a.isqrt();
        prop_assert!(r.pow(2) <= a);
        prop_assert!((&r + BigUint::one()).pow(2) > a);
    }

    #[test]
    fn log2_vs_bits(a in biguint()) {
        prop_assume!(!a.is_zero());
        let l = a.log2();
        let bits = a.bits() as f64;
        prop_assert!(l <= bits);
        prop_assert!(l >= bits - 1.0 - 1e-9);
    }

    #[test]
    fn bigint_add_neg_cancels(a in bigint()) {
        prop_assert_eq!(&a + &(-&a), BigInt::zero());
    }

    #[test]
    fn bigint_mul_sign(a in bigint(), b in bigint()) {
        let p = &a * &b;
        if a.is_zero() || b.is_zero() {
            prop_assert!(p.is_zero());
        } else {
            prop_assert_eq!(p.is_negative(), a.is_negative() != b.is_negative());
        }
    }

    #[test]
    fn rational_field_axioms(a in bigrational(), b in bigrational(), c in bigrational()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn rational_reduced_invariant(a in bigrational()) {
        prop_assume!(!a.is_zero());
        let g = a.numer().magnitude().gcd(a.denom());
        prop_assert!(g.is_one());
    }

    #[test]
    fn rational_recip_involution(a in bigrational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.recip().recip(), a);
    }

    #[test]
    fn rational_floor_ceil_bracket(a in bigrational()) {
        let f = BigRational::from(a.floor());
        let c = BigRational::from(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(&c - &f <= BigRational::one());
    }

    #[test]
    fn lognum_tracks_rational_products(xs in prop::collection::vec(1u64..1_000_000, 1..12)) {
        let exact: BigRational = xs.iter().map(|&v| BigRational::from(v)).product();
        let log: LogNum = xs.iter().map(|&v| LogNum::from(v)).product();
        prop_assert!((exact.log2() - log.log2()).abs() < 1e-6);
    }

    #[test]
    fn lognum_tracks_rational_sums(xs in prop::collection::vec(1u64..1_000_000, 1..12)) {
        let exact: BigRational = xs.iter().map(|&v| BigRational::from(v)).sum();
        let log: LogNum = xs.iter().map(|&v| LogNum::from(v)).sum();
        prop_assert!((exact.log2() - log.log2()).abs() < 1e-6);
    }

    #[test]
    fn root_pow_ceil_definition(a in biguint(), num in 1u32..4, den in 1u32..5) {
        prop_assume!(!a.is_zero());
        prop_assume!(num <= den);
        let c = a.root_pow_ceil(num, den);
        // c is the least integer with c^den >= a^num.
        prop_assert!(c.pow(den as u64) >= a.pow(num as u64));
        if !c.is_one() {
            let below = &c - &BigUint::one();
            prop_assert!(below.pow(den as u64) < a.pow(num as u64));
        }
    }
}
