//! Unsigned arbitrary-precision integers.
//!
//! Representation: little-endian `Vec<u64>` limbs with no trailing zero limb;
//! the value zero is the empty limb vector. All operations are implemented
//! from first principles: schoolbook and Karatsuba multiplication, Knuth
//! Algorithm D division, binary GCD, square-and-multiply exponentiation.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, BitAnd, Div, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// Number of limbs above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

/// An unsigned arbitrary-precision integer.
///
/// Invariant: `limbs` never has a trailing (most-significant) zero limb, so
/// the representation of every value is unique and `Eq`/`Ord` can compare
/// limb vectors directly.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrows the little-endian limbs (no trailing zero limb).
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Whether this is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the value is even (zero counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits; `0` for zero.
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Base-2 logarithm as `f64`; `-inf` for zero.
    ///
    /// Accurate to roughly one ULP of `f64` for any magnitude: the top 128
    /// bits dominate the mantissa and the rest shifts the exponent.
    // analyze:allow(no-float-in-exact) -- the explicit lossy bridge into
    // the log/float domain; exact arithmetic never consumes the result.
    pub fn log2(&self) -> f64 {
        let n = self.limbs.len();
        match n {
            0 => f64::NEG_INFINITY,
            1 => (self.limbs[0] as f64).log2(),
            _ => {
                let hi = self.limbs[n - 1] as u128;
                let lo = self.limbs[n - 2] as u128;
                let top = (hi << 64) | lo;
                (top as f64).log2() + ((n - 2) as f64) * 64.0
            }
        }
    }

    /// Lossy conversion to `f64` (`inf` on overflow).
    // analyze:allow(no-float-in-exact) -- the explicit lossy bridge into
    // the log/float domain; exact arithmetic never consumes the result.
    pub fn to_f64(&self) -> f64 {
        let n = self.limbs.len();
        match n {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => ((self.limbs[1] as u128) << 64 | self.limbs[0] as u128) as f64,
            _ => {
                let top = ((self.limbs[n - 1] as u128) << 64 | self.limbs[n - 2] as u128) as f64;
                top * ((n - 2) as f64 * 64.0).exp2()
            }
        }
    }

    /// Conversion to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Conversion to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// `self - other`, or `None` if it would underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, &o) in other.limbs.iter().enumerate() {
            let (d1, b1) = out[i].overflowing_sub(o);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 || b2) as u64;
        }
        let mut i = other.limbs.len();
        while borrow != 0 {
            let (d, b) = out[i].overflowing_sub(borrow);
            out[i] = d;
            borrow = b as u64;
            i += 1;
        }
        Some(BigUint::from_limbs(out))
    }

    /// Quotient and remainder; panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Division by a single limb.
    fn div_rem_limb(&self, d: u64) -> (BigUint, u64) {
        debug_assert!(d != 0);
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | l as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// Knuth Algorithm D (TAOCP Vol. 2, 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as u64;
        let u = self << shift; // dividend
        let v = divisor << shift; // divisor
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs now
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_second = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q_hat from the top two limbs of the current remainder.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut q_hat = num / v_top as u128;
            let mut r_hat = num % v_top as u128;
            while q_hat >> 64 != 0
                || q_hat * v_second as u128 > ((r_hat << 64) | un[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v_top as u128;
                if r_hat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract: un[j..j+n+1] -= q_hat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = q_hat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (un[j + i] as i128) - ((p as u64) as i128) - borrow;
                un[j + i] = sub as u64;
                borrow = if sub < 0 { 1 } else { 0 };
            }
            let sub = (un[j + n] as i128) - (carry as i128) - borrow;
            un[j + n] = sub as u64;

            if sub < 0 {
                // q_hat was one too large: add the divisor back.
                q_hat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q[j] = q_hat as u64;
        }
        un.truncate(n);
        let rem = BigUint::from_limbs(un) >> shift;
        (BigUint::from_limbs(q), rem)
    }

    /// `self^exp` by square-and-multiply.
    pub fn pow(&self, mut exp: u64) -> BigUint {
        if exp == 0 {
            return BigUint::one();
        }
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 1 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        &acc * &base
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let common = az.min(bz);
        a = a >> az;
        b = b >> bz;
        loop {
            debug_assert!(!a.is_even() && !b.is_even());
            // Fast path: gcd(1, x) = 1. Crucial for the reduction instances,
            // whose denominators are pure powers of two — without this the
            // subtract-shift loop degenerates to O(bits²).
            if a.is_one() || b.is_one() {
                return BigUint::one() << common;
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).expect("b >= a");
            if b.is_zero() {
                return a << common;
            }
            b = {
                let tz = b.trailing_zeros();
                b >> tz
            };
        }
    }

    /// Number of trailing zero bits; `0` for zero.
    pub fn trailing_zeros(&self) -> u64 {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i as u64 * 64 + l.trailing_zeros() as u64;
            }
        }
        0
    }

    /// Integer square root (floor).
    pub fn isqrt(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        if let Some(v) = self.to_u128() {
            return BigUint::from(u128_isqrt(v));
        }
        // Newton iteration starting above the root.
        let mut x = BigUint::one() << (self.bits().div_ceil(2));
        loop {
            // y = (x + self/x) / 2
            let y = (&x + &(self / &x)) >> 1u64;
            if y >= x {
                return x;
            }
            x = y;
        }
    }

    /// Ceiling of `self^(num/den)` for small rational exponents with
    /// `num <= den` (used for `hjmin(b) = ceil(b^η)`).
    ///
    /// Computed by binary search over candidates `c` with the exact test
    /// `c^den >= self^num`.
    pub fn root_pow_ceil(&self, num: u32, den: u32) -> BigUint {
        assert!(den > 0 && num <= den, "exponent must be in (0, 1]");
        if self.is_zero() {
            return BigUint::zero();
        }
        let target = self.pow(num as u64);
        // c is in [1, 2^(ceil(bits(target)/den))]
        let mut lo = BigUint::one();
        let mut hi = BigUint::one() << target.bits().div_ceil(den as u64);
        // Invariant: lo^den < target <= hi^den or lo == 1.
        if lo.pow(den as u64) >= target {
            return lo;
        }
        while &hi - &lo > BigUint::one() {
            let mid = (&lo + &hi) >> 1u64;
            if mid.pow(den as u64) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Parses a decimal string (no sign, no separators).
    pub fn from_decimal(s: &str) -> Result<BigUint, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError);
        }
        let mut acc = BigUint::zero();
        // Consume 19 digits at a time (10^19 < 2^64).
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(19);
            let chunk = &s[i..i + take];
            let v: u64 = chunk.parse().map_err(|_| ParseBigUintError)?;
            acc = acc * BigUint::from(10u64.pow(take as u32)) + BigUint::from(v);
            i += take;
        }
        Ok(acc)
    }
}

/// Error parsing a [`BigUint`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError;

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal BigUint literal")
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigUint::from_decimal(s)
    }
}

fn u128_isqrt(v: u128) -> u128 {
    if v == 0 {
        return 0;
    }
    let mut x = 1u128 << ((128 - v.leading_zeros()).div_ceil(2));
    loop {
        let y = (x + v / x) >> 1;
        if y >= x {
            return x;
        }
        x = y;
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            o => o,
        }
    }
}

// ---------------------------------------------------------------------------
// Addition / subtraction
// ---------------------------------------------------------------------------

fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u128;
    for (i, &l) in long.iter().enumerate() {
        let s = l as u128 + short.get(i).copied().unwrap_or(0) as u128 + carry;
        out.push(s as u64);
        carry = s >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    out
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(add_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs).expect("BigUint subtraction underflow")
    }
}

// ---------------------------------------------------------------------------
// Multiplication
// ---------------------------------------------------------------------------

fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    // Karatsuba: split at half of the shorter length.
    let split = a.len().min(b.len()) / 2;
    let (a0, a1) = a.split_at(split);
    let (b0, b1) = b.split_at(split);
    let a0 = BigUint::from_limbs(a0.to_vec());
    let a1 = BigUint::from_limbs(a1.to_vec());
    let b0 = BigUint::from_limbs(b0.to_vec());
    let b1 = BigUint::from_limbs(b1.to_vec());

    let z0 = BigUint::from_limbs(mul_limbs(&a0.limbs, &b0.limbs));
    let z2 = BigUint::from_limbs(mul_limbs(&a1.limbs, &b1.limbs));
    let sa = &a0 + &a1;
    let sb = &b0 + &b1;
    let z1 = BigUint::from_limbs(mul_limbs(&sa.limbs, &sb.limbs));
    let z1 = &(&z1 - &z0) - &z2;

    let shift = (split * 64) as u64;
    let r = &(&z2 << (2 * shift)) + &(&z1 << shift);
    (&r + &z0).limbs
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(mul_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl BitAnd<u64> for &BigUint {
    type Output = u64;
    fn bitand(self, rhs: u64) -> u64 {
        self.limbs.first().copied().unwrap_or(0) & rhs
    }
}

// Shifts ---------------------------------------------------------------------

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, rhs: u64) -> BigUint {
        if self.is_zero() || rhs == 0 {
            return self.clone();
        }
        let limb_shift = (rhs / 64) as usize;
        let bit_shift = rhs % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, rhs: u64) -> BigUint {
        if self.is_zero() || rhs == 0 {
            return self.clone();
        }
        let limb_shift = (rhs / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = rhs % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }
}

// Owned-operand forwarding ----------------------------------------------------

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl Shl<u64> for BigUint {
    type Output = BigUint;
    fn shl(self, rhs: u64) -> BigUint {
        (&self) << rhs
    }
}

impl Shr<u64> for BigUint {
    type Output = BigUint;
    fn shr(self, rhs: u64) -> BigUint {
        (&self) >> rhs
    }
}

impl Shr<u32> for BigUint {
    type Output = BigUint;
    fn shr(self, rhs: u32) -> BigUint {
        (&self) >> rhs as u64
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel off 19 decimal digits at a time.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut rest = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !rest.is_zero() {
            let (q, r) = rest.div_rem_limb(CHUNK);
            parts.push(r);
            rest = q;
        }
        let mut s = parts.pop().unwrap().to_string();
        for p in parts.iter().rev() {
            s.push_str(&format!("{p:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits() <= 256 {
            write!(f, "BigUint({self})")
        } else {
            write!(f, "BigUint(~2^{:.2})", self.log2())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from(0u64), BigUint::zero());
    }

    #[test]
    fn add_small() {
        assert_eq!(big(2) + big(3), big(5));
        assert_eq!(big(u64::MAX as u128) + big(1), big(1u128 << 64));
    }

    #[test]
    fn sub_small() {
        assert_eq!(big(5) - big(3), big(2));
        assert_eq!(big(1u128 << 64) - big(1), big(u64::MAX as u128));
        assert_eq!(big(7).checked_sub(&big(8)), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = big(1) - big(2);
    }

    #[test]
    fn mul_small() {
        assert_eq!(big(7) * big(6), big(42));
        assert_eq!(big(u64::MAX as u128) * big(u64::MAX as u128), big(u64::MAX as u128 * u64::MAX as u128));
        assert_eq!(big(123) * BigUint::zero(), BigUint::zero());
    }

    #[test]
    fn div_rem_basics() {
        let (q, r) = big(100).div_rem(&big(7));
        assert_eq!((q, r), (big(14), big(2)));
        let (q, r) = big(5).div_rem(&big(7));
        assert_eq!((q, r), (BigUint::zero(), big(5)));
        let (q, r) = big(7).div_rem(&big(7));
        assert_eq!((q, r), (BigUint::one(), BigUint::zero()));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = BigUint::from(3u64).pow(300);
        let b = BigUint::from(7u64).pow(100);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r < b);
    }

    #[test]
    fn knuth_d_add_back_case() {
        // Exercise a dividend/divisor pair shaped to force q_hat corrections.
        let a = (BigUint::one() << 192) - BigUint::one();
        let b = (BigUint::one() << 128) - (BigUint::one() << 64);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r < b);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let mut acc = BigUint::one();
        let base = big(97);
        for e in 0..20u64 {
            assert_eq!(base.pow(e), acc);
            acc = &acc * &base;
        }
    }

    #[test]
    fn shifts_roundtrip() {
        let v = BigUint::from(0xDEAD_BEEF_u64);
        assert_eq!((&v << 67) >> 67u64, v);
        assert_eq!(&v << 0, v);
        assert_eq!((&v >> 200), BigUint::zero());
    }

    #[test]
    fn gcd_small() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(13)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
        let a = big(2 * 3 * 5 * 7) * big(1_000_003);
        let b = big(3 * 5 * 11) * big(1_000_003);
        assert_eq!(a.gcd(&b), big(15) * big(1_000_003));
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["0", "1", "42", "18446744073709551616", "340282366920938463463374607431768211456"] {
            let v: BigUint = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        let huge = BigUint::from(10u64).pow(100);
        let s = huge.to_string();
        assert_eq!(s.len(), 101);
        assert!(s.starts_with('1') && s[1..].bytes().all(|b| b == b'0'));
        assert_eq!(BigUint::from_decimal(&s).unwrap(), huge);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BigUint::from_decimal("").is_err());
        assert!(BigUint::from_decimal("12a").is_err());
        assert!(BigUint::from_decimal("-5").is_err());
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(BigUint::from(3u64).pow(100) > BigUint::from(2u64).pow(150));
        assert!(BigUint::from(2u64).pow(151) > BigUint::from(2u64).pow(150));
    }

    #[test]
    fn bits_and_log2() {
        assert_eq!(big(1).bits(), 1);
        assert_eq!(big(255).bits(), 8);
        assert_eq!(big(256).bits(), 9);
        let v = BigUint::from(2u64).pow(777);
        assert_eq!(v.bits(), 778);
        assert!((v.log2() - 777.0).abs() < 1e-9);
        let w = BigUint::from(3u64).pow(100);
        assert!((w.log2() - 100.0 * 3f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn to_f64_magnitudes() {
        assert_eq!(big(12345).to_f64(), 12345.0);
        let v = BigUint::from(2u64).pow(200);
        let rel = (v.to_f64() - 2f64.powi(200)).abs() / 2f64.powi(200);
        assert!(rel < 1e-12);
    }

    #[test]
    fn isqrt_exact_and_floor() {
        assert_eq!(big(0).isqrt(), big(0));
        assert_eq!(big(1).isqrt(), big(1));
        assert_eq!(big(15).isqrt(), big(3));
        assert_eq!(big(16).isqrt(), big(4));
        let n = BigUint::from(12345u64).pow(10);
        let r = n.isqrt();
        assert!(r.pow(2) <= n);
        assert!((&r + BigUint::one()).pow(2) > n);
    }

    #[test]
    fn root_pow_ceil_matches_f64_small() {
        for v in [1u64, 2, 3, 10, 100, 1000, 65536] {
            let got = BigUint::from(v).root_pow_ceil(1, 2);
            let want = (v as f64).sqrt().ceil() as u64;
            assert_eq!(got.to_u64().unwrap(), want, "sqrt ceil of {v}");
        }
        // b^(2/3) for perfect cubes is exact.
        assert_eq!(BigUint::from(8u64).root_pow_ceil(2, 3), big(4));
        assert_eq!(BigUint::from(27u64).root_pow_ceil(2, 3), big(9));
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Construct operands big enough to trigger Karatsuba.
        let a = BigUint::from_limbs((0..80u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect());
        let b = BigUint::from_limbs((0..70u64).map(|i| (i + 3).wrapping_mul(0xC2B2AE3D27D4EB4F)).collect());
        let fast = &a * &b;
        let slow = BigUint::from_limbs(mul_schoolbook(a.limbs(), b.limbs()));
        assert_eq!(fast, slow);
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(big(8).trailing_zeros(), 3);
        assert_eq!((BigUint::one() << 130).trailing_zeros(), 130);
    }
}
