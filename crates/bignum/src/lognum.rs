//! `f64` log₂-domain non-negative numbers.
//!
//! [`LogNum`] stores `log₂(x)` for a non-negative real `x`, with
//! `-inf` representing exact zero. Multiplication and division become
//! addition and subtraction; addition uses a stable log-sum-exp. This is the
//! fast companion of [`BigRational`](crate::BigRational): the subset-DP
//! optimizer and the heuristics run in log domain and the winners are
//! re-costed exactly.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, Div, Mul};

/// A non-negative real number stored as its base-2 logarithm.
#[derive(Clone, Copy, PartialEq)]
pub struct LogNum {
    log2: f64,
}

impl LogNum {
    /// Exact zero.
    pub const ZERO: LogNum = LogNum { log2: f64::NEG_INFINITY };
    /// One.
    pub const ONE: LogNum = LogNum { log2: 0.0 };
    /// Positive infinity (useful as an "unreached" optimizer sentinel).
    pub const INFINITY: LogNum = LogNum { log2: f64::INFINITY };

    /// Builds from a base-2 logarithm.
    #[inline]
    pub fn from_log2(log2: f64) -> Self {
        debug_assert!(!log2.is_nan());
        LogNum { log2 }
    }

    /// Builds from a plain value (must be non-negative and not NaN).
    pub fn from_value(v: f64) -> Self {
        assert!(v >= 0.0 && !v.is_nan(), "LogNum requires a non-negative value");
        LogNum { log2: v.log2() }
    }

    /// The stored base-2 logarithm (`-inf` for zero).
    #[inline]
    pub fn log2(self) -> f64 {
        self.log2
    }

    /// Back to a plain `f64` (may overflow to `inf`).
    pub fn to_f64(self) -> f64 {
        self.log2.exp2()
    }

    /// Whether this is exact zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.log2 == f64::NEG_INFINITY
    }

    /// Whether this is finite and nonzero.
    pub fn is_finite_positive(self) -> bool {
        self.log2.is_finite()
    }

    /// `self^k` for an integer power.
    pub fn powi(self, k: i64) -> LogNum {
        if self.is_zero() {
            return if k == 0 { LogNum::ONE } else { LogNum::ZERO };
        }
        LogNum { log2: self.log2 * k as f64 }
    }

    /// The smaller of two values.
    pub fn min(self, other: LogNum) -> LogNum {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two values.
    pub fn max(self, other: LogNum) -> LogNum {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for LogNum {
    fn default() -> Self {
        LogNum::ZERO
    }
}

impl From<u64> for LogNum {
    fn from(v: u64) -> Self {
        LogNum::from_value(v as f64)
    }
}

impl Mul for LogNum {
    type Output = LogNum;
    #[inline]
    fn mul(self, rhs: LogNum) -> LogNum {
        if self.is_zero() || rhs.is_zero() {
            return LogNum::ZERO;
        }
        LogNum { log2: self.log2 + rhs.log2 }
    }
}

impl Div for LogNum {
    type Output = LogNum;
    #[inline]
    fn div(self, rhs: LogNum) -> LogNum {
        assert!(!rhs.is_zero(), "LogNum division by zero");
        if self.is_zero() {
            return LogNum::ZERO;
        }
        LogNum { log2: self.log2 - rhs.log2 }
    }
}

impl Add for LogNum {
    type Output = LogNum;
    /// Stable log-sum-exp: `log₂(2^a + 2^b) = max + log₂(1 + 2^(min−max))`.
    fn add(self, rhs: LogNum) -> LogNum {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        let (hi, lo) = if self.log2 >= rhs.log2 { (self.log2, rhs.log2) } else { (rhs.log2, self.log2) };
        if hi.is_infinite() {
            return LogNum { log2: hi };
        }
        LogNum { log2: hi + (lo - hi).exp2().ln_1p() / std::f64::consts::LN_2 }
    }
}

impl Sum for LogNum {
    fn sum<I: Iterator<Item = LogNum>>(iter: I) -> Self {
        iter.fold(LogNum::ZERO, |a, b| a + b)
    }
}

impl Product for LogNum {
    fn product<I: Iterator<Item = LogNum>>(iter: I) -> Self {
        iter.fold(LogNum::ONE, |a, b| a * b)
    }
}

impl PartialOrd for LogNum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for LogNum {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for LogNum {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: the NaN-free invariant is enforced at construction.
        self.log2.partial_cmp(&other.log2).expect("LogNum is NaN-free")
    }
}

impl fmt::Debug for LogNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogNum(2^{:.4})", self.log2)
    }
}

impl fmt::Display for LogNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "0")
        } else if self.log2.abs() < 40.0 {
            write!(f, "{:.4}", self.to_f64())
        } else {
            write!(f, "2^{:.2}", self.log2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: LogNum, v: f64) {
        assert!((a.to_f64() - v).abs() / v.max(1.0) < 1e-12, "{a:?} != {v}");
    }

    #[test]
    fn semiring_ops() {
        let a = LogNum::from_value(3.0);
        let b = LogNum::from_value(4.0);
        close(a * b, 12.0);
        close(a + b, 7.0);
        close(b / a, 4.0 / 3.0);
        close(a.powi(3), 27.0);
    }

    #[test]
    fn zero_behaviour() {
        let z = LogNum::ZERO;
        let a = LogNum::from_value(5.0);
        assert_eq!(z * a, LogNum::ZERO);
        assert_eq!(z + a, a);
        assert_eq!(a + z, a);
        assert!(z.is_zero());
        assert_eq!(z.powi(3), LogNum::ZERO);
        assert_eq!(z.powi(0), LogNum::ONE);
    }

    #[test]
    fn huge_values_no_overflow() {
        let big = LogNum::from_log2(1.0e6);
        let sum = big + big;
        assert!((sum.log2() - (1.0e6 + 1.0)).abs() < 1e-9);
        let prod = big * big;
        assert!((prod.log2() - 2.0e6).abs() < 1e-9);
    }

    #[test]
    fn ordering_total() {
        let mut v = [LogNum::from_value(2.0), LogNum::ZERO, LogNum::from_value(0.5), LogNum::INFINITY];
        v.sort();
        assert_eq!(v[0], LogNum::ZERO);
        assert_eq!(v[3], LogNum::INFINITY);
        assert!(v[1] < v[2]);
    }

    #[test]
    fn sum_product_iters() {
        let xs = [1.0, 2.0, 3.0, 4.0].map(LogNum::from_value);
        close(xs.iter().copied().sum(), 10.0);
        close(xs.iter().copied().product(), 24.0);
    }

    #[test]
    fn log_sum_exp_precision() {
        // Adding a tiny value to a huge one must not lose the huge one.
        let a = LogNum::from_log2(100.0);
        let b = LogNum::from_log2(-100.0);
        let s = a + b;
        assert!((s.log2() - 100.0).abs() < 1e-12);
    }
}
