//! Signed arbitrary-precision integers: a sign plus a [`BigUint`] magnitude.

use crate::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sign {
    /// Strictly negative.
    Neg,
    /// Zero.
    Zero,
    /// Strictly positive.
    Pos,
}

impl Sign {
    /// Product of two signs.
    fn mul(self, other: Sign) -> Sign {
        use Sign::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (Pos, Pos) | (Neg, Neg) => Pos,
            _ => Neg,
        }
    }

    /// The opposite sign.
    fn neg(self) -> Sign {
        match self {
            Sign::Neg => Sign::Pos,
            Sign::Zero => Sign::Zero,
            Sign::Pos => Sign::Neg,
        }
    }
}

/// A signed arbitrary-precision integer.
///
/// Invariant: `sign == Sign::Zero` iff `mag.is_zero()`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, mag: BigUint::zero() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt { sign: Sign::Pos, mag: BigUint::one() }
    }

    /// Builds from a sign and magnitude, normalizing zero.
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Sign::Zero");
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Neg
    }

    /// Whether this is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Pos
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_mag(if self.is_zero() { Sign::Zero } else { Sign::Pos }, self.mag.clone())
    }

    /// `self^exp`.
    pub fn pow(&self, exp: u64) -> BigInt {
        let mag = self.mag.pow(exp);
        let sign = if self.sign == Sign::Neg && exp % 2 == 1 { Sign::Neg } else if mag.is_zero() { Sign::Zero } else { Sign::Pos };
        BigInt::from_sign_mag(if mag.is_zero() { Sign::Zero } else { sign }, mag)
    }

    /// Lossy conversion to `f64`.
    // analyze:allow(no-float-in-exact) -- the explicit lossy bridge into
    // the log/float domain; exact arithmetic never consumes the result.
    pub fn to_f64(&self) -> f64 {
        match self.sign {
            Sign::Zero => 0.0,
            Sign::Pos => self.mag.to_f64(),
            Sign::Neg => -self.mag.to_f64(),
        }
    }

    /// Conversion to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Pos => (m <= i64::MAX as u64).then_some(m as i64),
            Sign::Neg => {
                if m <= i64::MAX as u64 {
                    Some(-(m as i64))
                } else if m == i64::MAX as u64 + 1 {
                    Some(i64::MIN)
                } else {
                    None
                }
            }
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_mag(Sign::Pos, BigUint::from(v as u64)),
            Ordering::Less => BigInt::from_sign_mag(Sign::Neg, BigUint::from(v.unsigned_abs())),
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt::from_sign_mag(Sign::Pos, BigUint::from(v))
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> Self {
        if v.is_zero() {
            BigInt::zero()
        } else {
            BigInt::from_sign_mag(Sign::Pos, v)
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Neg, Neg) => other.mag.cmp(&self.mag),
            (Neg, _) => Ordering::Less,
            (Zero, Neg) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Pos) => Ordering::Less,
            (Pos, Pos) => self.mag.cmp(&other.mag),
            (Pos, _) => Ordering::Greater,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt { sign: self.sign.neg(), mag: self.mag.clone() }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt { sign: self.sign.neg(), mag: self.mag }
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        use Sign::*;
        match (self.sign, rhs.sign) {
            (Zero, _) => rhs.clone(),
            (_, Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, &self.mag + &rhs.mag),
            _ => match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_mag(self.sign, &self.mag - &rhs.mag),
                Ordering::Less => BigInt::from_sign_mag(rhs.sign, &rhs.mag - &self.mag),
            },
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_sign_mag(self.sign.mul(rhs.sign), &self.mag * &rhs.mag)
    }
}

impl Div<&BigInt> for &BigInt {
    type Output = BigInt;
    /// Truncated division (rounds toward zero), matching Rust's `/` on
    /// primitive integers.
    fn div(self, rhs: &BigInt) -> BigInt {
        let q = &self.mag / &rhs.mag;
        if q.is_zero() {
            BigInt::zero()
        } else {
            BigInt::from_sign_mag(self.sign.mul(rhs.sign), q)
        }
    }
}

impl Rem<&BigInt> for &BigInt {
    type Output = BigInt;
    /// Remainder with the sign of the dividend, matching Rust's `%`.
    fn rem(self, rhs: &BigInt) -> BigInt {
        let r = &self.mag % &rhs.mag;
        if r.is_zero() {
            BigInt::zero()
        } else {
            BigInt::from_sign_mag(self.sign, r)
        }
    }
}

macro_rules! forward_binop_int {
    ($trait:ident, $method:ident) => {
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop_int!(Add, add);
forward_binop_int!(Sub, sub);
forward_binop_int!(Mul, mul);
forward_binop_int!(Div, div);
forward_binop_int!(Rem, rem);

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            Sign::Neg => write!(f, "-{}", self.mag),
            _ => write!(f, "{}", self.mag),
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signed_arith_matches_i64() {
        let vals = [-7i64, -3, -1, 0, 1, 2, 5, 11];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(bi(a) + bi(b), bi(a + b), "{a}+{b}");
                assert_eq!(bi(a) - bi(b), bi(a - b), "{a}-{b}");
                assert_eq!(bi(a) * bi(b), bi(a * b), "{a}*{b}");
                if b != 0 {
                    assert_eq!(bi(a) / bi(b), bi(a / b), "{a}/{b}");
                    assert_eq!(bi(a) % bi(b), bi(a % b), "{a}%{b}");
                }
            }
        }
    }

    #[test]
    fn neg_and_abs() {
        assert_eq!(-bi(5), bi(-5));
        assert_eq!(-bi(0), bi(0));
        assert_eq!(bi(-9).abs(), bi(9));
        assert_eq!(bi(9).abs(), bi(9));
    }

    #[test]
    fn pow_sign() {
        assert_eq!(bi(-2).pow(3), bi(-8));
        assert_eq!(bi(-2).pow(4), bi(16));
        assert_eq!(bi(0).pow(5), bi(0));
        assert_eq!(bi(0).pow(0), bi(1));
    }

    #[test]
    fn ordering() {
        let mut v = vec![bi(3), bi(-10), bi(0), bi(-2), bi(7)];
        v.sort();
        assert_eq!(v, vec![bi(-10), bi(-2), bi(0), bi(3), bi(7)]);
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(bi(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(bi(i64::MIN).to_i64(), Some(i64::MIN));
        let too_big = BigInt::from(BigUint::from(u64::MAX));
        assert_eq!(too_big.to_i64(), None);
    }

    #[test]
    fn display() {
        assert_eq!(bi(-42).to_string(), "-42");
        assert_eq!(bi(0).to_string(), "0");
        assert_eq!(bi(42).to_string(), "42");
    }
}
