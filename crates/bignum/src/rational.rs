//! Always-reduced arbitrary-precision rationals.
//!
//! `BigRational` is the exact number type of the cost models: selectivities
//! in the paper's reductions are reciprocals `1/α`, so intermediate result
//! sizes `N(X) = (∏ tᵢ)·(∏ s_{ij})` and join costs are rationals whose
//! numerator/denominator are astronomically large powers of `α`.

use crate::{BigInt, BigUint, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0` and `gcd(|num|, den) = 1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    num: BigInt,
    den: BigUint,
}

impl BigRational {
    /// The value `0`.
    pub fn zero() -> Self {
        BigRational { num: BigInt::zero(), den: BigUint::one() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigRational { num: BigInt::one(), den: BigUint::one() }
    }

    /// Builds `num / den`, reducing to lowest terms. Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "BigRational with zero denominator");
        if num.is_zero() {
            return BigRational::zero();
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            BigRational { num, den }
        } else {
            BigRational {
                num: BigInt::from_sign_mag(num.sign(), num.magnitude() / &g),
                den: &den / &g,
            }
        }
    }

    /// Builds the integer `v / 1`.
    pub fn from_int(v: impl Into<BigInt>) -> Self {
        BigRational { num: v.into(), den: BigUint::one() }
    }

    /// Builds the unit fraction `1 / d`. Panics if `d` is zero.
    pub fn recip_of(d: impl Into<BigUint>) -> Self {
        let d = d.into();
        assert!(!d.is_zero(), "reciprocal of zero");
        BigRational { num: BigInt::one(), den: d }
    }

    /// Numerator (signed, reduced).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (positive, reduced).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether this is a (reduced) integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Whether this is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        BigRational {
            num: BigInt::from_sign_mag(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// `self^exp` for a signed exponent (negative exponents invert; panics on
    /// `0^negative`).
    pub fn pow(&self, exp: i64) -> BigRational {
        if exp >= 0 {
            BigRational {
                num: self.num.pow(exp as u64),
                den: self.den.pow(exp as u64),
            }
        } else {
            self.recip().pow(-exp)
        }
    }

    /// Floor to a [`BigInt`].
    pub fn floor(&self) -> BigInt {
        if self.is_integer() {
            return self.num.clone();
        }
        let q = self.num.magnitude() / &self.den;
        match self.num.sign() {
            Sign::Pos => BigInt::from(q),
            Sign::Neg => -(BigInt::from(q) + BigInt::one()),
            Sign::Zero => BigInt::zero(),
        }
    }

    /// Ceiling to a [`BigInt`].
    pub fn ceil(&self) -> BigInt {
        -((-self).floor())
    }

    /// Base-2 logarithm as `f64` (requires a positive value).
    // analyze:allow(no-float-in-exact) -- the explicit lossy bridge into
    // the log/float domain; exact arithmetic never consumes the result.
    pub fn log2(&self) -> f64 {
        assert!(self.is_positive(), "log2 of non-positive rational");
        self.num.magnitude().log2() - self.den.log2()
    }

    /// Lossy conversion to `f64`.
    // analyze:allow(no-float-in-exact) -- the explicit lossy bridge into
    // the log/float domain; exact arithmetic never consumes the result.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let sign = if self.is_negative() { -1.0 } else { 1.0 };
        let l = self.log2_signed();
        if l.abs() < 900.0 {
            sign * (self.num.magnitude().to_f64() / self.den.to_f64())
        } else {
            sign * l.exp2()
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRational {
        BigRational { num: self.num.abs(), den: self.den.clone() }
    }

    /// `min` by value.
    pub fn min(self, other: BigRational) -> BigRational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `max` by value.
    pub fn max(self, other: BigRational) -> BigRational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl From<u64> for BigRational {
    fn from(v: u64) -> Self {
        BigRational::from_int(BigInt::from(v))
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> Self {
        BigRational::from_int(BigInt::from(v))
    }
}

impl From<BigUint> for BigRational {
    fn from(v: BigUint) -> Self {
        BigRational::from_int(BigInt::from(v))
    }
}

impl From<BigInt> for BigRational {
    fn from(v: BigInt) -> Self {
        BigRational::from_int(v)
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiply: num1/den1 <=> num2/den2  iff  num1*den2 <=> num2*den1.
        let lhs = &self.num * &BigInt::from(other.den.clone());
        let rhs = &other.num * &BigInt::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl Add<&BigRational> for &BigRational {
    type Output = BigRational;
    fn add(self, rhs: &BigRational) -> BigRational {
        let num = &self.num * &BigInt::from(rhs.den.clone()) + &rhs.num * &BigInt::from(self.den.clone());
        BigRational::new(num, &self.den * &rhs.den)
    }
}

impl Sub<&BigRational> for &BigRational {
    type Output = BigRational;
    fn sub(self, rhs: &BigRational) -> BigRational {
        self + &(-rhs)
    }
}

impl Mul<&BigRational> for &BigRational {
    type Output = BigRational;
    fn mul(self, rhs: &BigRational) -> BigRational {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = self.num.magnitude().gcd(&rhs.den);
        let g2 = rhs.num.magnitude().gcd(&self.den);
        let n1 = if g1.is_one() { self.num.clone() } else { BigInt::from_sign_mag(self.num.sign(), self.num.magnitude() / &g1) };
        let n2 = if g2.is_one() { rhs.num.clone() } else { BigInt::from_sign_mag(rhs.num.sign(), rhs.num.magnitude() / &g2) };
        let d1 = if g2.is_one() { self.den.clone() } else { &self.den / &g2 };
        let d2 = if g1.is_one() { rhs.den.clone() } else { &rhs.den / &g1 };
        let num = &n1 * &n2;
        if num.is_zero() {
            return BigRational::zero();
        }
        BigRational { num, den: &d1 * &d2 }
    }
}

impl Div<&BigRational> for &BigRational {
    type Output = BigRational;
    // Division *is* multiplication by the reciprocal here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &BigRational) -> BigRational {
        self * &rhs.recip()
    }
}

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational { num: -&self.num, den: self.den.clone() }
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational { num: -self.num, den: self.den }
    }
}

macro_rules! forward_binop_rat {
    ($trait:ident, $method:ident) => {
        impl $trait<BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop_rat!(Add, add);
forward_binop_rat!(Sub, sub);
forward_binop_rat!(Mul, mul);
forward_binop_rat!(Div, div);

impl std::iter::Sum for BigRational {
    fn sum<I: Iterator<Item = BigRational>>(iter: I) -> Self {
        iter.fold(BigRational::zero(), |acc, x| acc + x)
    }
}

impl std::iter::Product for BigRational {
    fn product<I: Iterator<Item = BigRational>>(iter: I) -> Self {
        iter.fold(BigRational::one(), |acc, x| acc * x)
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.num.magnitude().bits().max(self.den.bits()) <= 128 {
            write!(f, "BigRational({self})")
        } else {
            write!(f, "BigRational(~2^{:.2})", self.log2_signed())
        }
    }
}

impl BigRational {
    // analyze:allow(no-float-in-exact) -- Debug-formatting helper on the
    // same lossy log-domain bridge; never feeds exact arithmetic.
    fn log2_signed(&self) -> f64 {
        if self.is_zero() {
            f64::NEG_INFINITY
        } else {
            self.num.magnitude().log2() - self.den.log2()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: u64) -> BigRational {
        BigRational::new(BigInt::from(n), BigUint::from(d))
    }

    #[test]
    fn reduction_invariant() {
        let r = rat(6, 8);
        assert_eq!(r.numer(), &BigInt::from(3i64));
        assert_eq!(r.denom(), &BigUint::from(4u64));
        let r = rat(-10, 5);
        assert_eq!(r, BigRational::from(-2i64));
        assert!(r.is_integer());
    }

    #[test]
    fn field_ops_match_f64_exactly_representable() {
        let a = rat(3, 4);
        let b = rat(-5, 6);
        assert_eq!(&a + &b, rat(-1, 12));
        assert_eq!(&a - &b, rat(19, 12));
        assert_eq!(&a * &b, rat(-5, 8));
        assert_eq!(&a / &b, rat(-9, 10));
    }

    #[test]
    fn pow_and_recip() {
        let half = rat(1, 2);
        assert_eq!(half.pow(10), rat(1, 1024));
        assert_eq!(half.pow(-3), rat(8, 1));
        assert_eq!(half.recip(), rat(2, 1));
        assert_eq!(rat(-2, 3).pow(3), rat(-8, 27));
        assert_eq!(rat(5, 7).pow(0), BigRational::one());
    }

    #[test]
    fn floor_ceil_all_sign_cases() {
        assert_eq!(rat(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(rat(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(rat(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(rat(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(rat(4, 2).floor(), BigInt::from(2i64));
        assert_eq!(rat(4, 2).ceil(), BigInt::from(2i64));
        assert_eq!(BigRational::zero().floor(), BigInt::zero());
    }

    #[test]
    fn ordering_cross_mul() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(2, 4) == rat(1, 2));
        let mut v = vec![rat(3, 2), rat(-1, 5), rat(0, 1), rat(7, 3)];
        v.sort();
        assert_eq!(v, vec![rat(-1, 5), rat(0, 1), rat(3, 2), rat(7, 3)]);
    }

    #[test]
    fn log2_of_powers() {
        let v = BigRational::recip_of(BigUint::from(2u64).pow(100));
        assert!((v.log2() + 100.0).abs() < 1e-9);
        let w = BigRational::from(BigUint::from(2u64).pow(64));
        assert!((w.log2() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn to_f64_huge_values_via_log() {
        let huge = BigRational::from(BigUint::from(2u64).pow(2000));
        assert_eq!(huge.to_f64(), f64::INFINITY);
        let tiny = huge.recip();
        assert_eq!(tiny.to_f64(), 0.0);
        let normal = rat(-3, 4);
        assert_eq!(normal.to_f64(), -0.75);
    }

    #[test]
    fn sum_product_iters() {
        let xs = [rat(1, 2), rat(1, 3), rat(1, 6)];
        assert_eq!(xs.iter().cloned().sum::<BigRational>(), BigRational::one());
        assert_eq!(xs.iter().cloned().product::<BigRational>(), rat(1, 36));
    }

    #[test]
    fn min_max() {
        assert_eq!(rat(1, 2).min(rat(1, 3)), rat(1, 3));
        assert_eq!(rat(1, 2).max(rat(1, 3)), rat(1, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = BigRational::new(BigInt::one(), BigUint::zero());
    }
}
