//! Rigorous fixed-point evaluation of `e^x`, as required by the
//! PARTITION → SPPCS reduction of Appendix A.
//!
//! The reduction defines, for `q` fractional bits,
//!
//! * `f_q(x) = ⌈2^q·x⌉ / 2^q` — round *up* to the `q`-bit grid, and
//! * `g_q(x) = 2^q·f_q(e^{x/2K})` — an integer.
//!
//! Computing `g_q` correctly requires `⌈2^q · e^{y}⌉` for rational `y`, which
//! we obtain from a Taylor expansion with an explicit interval enclosure:
//! the series is summed until the lower and upper bounds of `⌈2^q·e^y⌉`
//! agree. Since `e^y` is irrational for rational `y ≠ 0`, the true value
//! never sits exactly on the grid and the loop terminates.

use crate::{BigInt, BigRational, BigUint};

/// An interval `[lo, hi]` enclosing a real value.
#[derive(Clone, Debug)]
pub struct Enclosure {
    /// Lower bound (inclusive).
    pub lo: BigRational,
    /// Upper bound (inclusive).
    pub hi: BigRational,
}

impl Enclosure {
    /// Width `hi - lo` of the interval.
    pub fn width(&self) -> BigRational {
        &self.hi - &self.lo
    }
}

/// Encloses `e^x` for rational `x ≥ 0` with interval width at most `2^-prec_bits`.
///
/// Uses the Taylor series at 0 with the standard remainder bound: once the
/// next term `t` satisfies `t · x/(k+1) < 1/2 · t` (i.e. `x < (k+1)/2`), the
/// tail is at most `2t`, giving the enclosure `[S, S + 2t]`.
pub fn exp_enclosure(x: &BigRational, prec_bits: u32) -> Enclosure {
    assert!(!x.is_negative(), "exp_enclosure requires x >= 0");
    if x.is_zero() {
        return Enclosure { lo: BigRational::one(), hi: BigRational::one() };
    }
    let eps = BigRational::recip_of(BigUint::one() << prec_bits as u64);
    let mut sum = BigRational::one();
    let mut term = x.clone(); // x^k / k!
    let mut k: u64 = 1;
    loop {
        sum = &sum + &term;
        k += 1;
        term = &term * x / &BigRational::from(k);
        // Tail bound: once x/(k+1) <= 1/2 the tail is < 2*term.
        let ratio_ok = x * &BigRational::from(2u64) < BigRational::from(k + 1);
        if ratio_ok {
            let tail = &term * &BigRational::from(2u64);
            if tail < eps {
                return Enclosure { lo: sum.clone(), hi: &sum + &tail };
            }
        }
    }
}

/// `f_q(x) = ⌈2^q·x⌉ / 2^q` from the SPPCS reduction: round up to `q`
/// fractional bits.
pub fn f_q(x: &BigRational, q: u32) -> BigRational {
    let scale = BigRational::from(BigUint::one() << q as u64);
    let scaled = x * &scale;
    BigRational::new(scaled.ceil(), BigUint::one() << q as u64)
}

/// `2^q · f_q(e^{x}) = ⌈2^q·e^x⌉` as an exact integer, for rational `x ≥ 0`.
///
/// Adaptively increases the working precision until the ceiling is
/// unambiguous.
pub fn ceil_pow2q_exp(x: &BigRational, q: u32) -> BigUint {
    let scale = BigUint::one() << q as u64;
    let scale_rat = BigRational::from(scale);
    let mut prec = q + 16;
    loop {
        let enc = exp_enclosure(x, prec);
        let lo = (&enc.lo * &scale_rat).ceil();
        let hi = (&enc.hi * &scale_rat).ceil();
        if lo == hi {
            let v = lo;
            assert!(!v.is_negative());
            return v.magnitude().clone();
        }
        prec += 32;
    }
}

/// `g_q` from the SPPCS reduction: `g_q(b) = 2^q·f_q(e^{b/2K})` where `K` is
/// the instance total. Returns the exact integer value.
pub fn g_q(b: u64, total_2k: u64, q: u32) -> BigUint {
    assert!(total_2k > 0, "2K must be positive");
    let x = BigRational::new(BigInt::from(b), BigUint::from(total_2k));
    ceil_pow2q_exp(&x, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_zero_is_one() {
        let e = exp_enclosure(&BigRational::zero(), 64);
        assert_eq!(e.lo, BigRational::one());
        assert_eq!(e.hi, BigRational::one());
    }

    #[test]
    fn exp_one_matches_f64() {
        let e = exp_enclosure(&BigRational::one(), 80);
        let lo = e.lo.to_f64();
        let hi = e.hi.to_f64();
        assert!(lo <= std::f64::consts::E && std::f64::consts::E <= hi + 1e-15);
        assert!(e.width().log2() < -79.0);
    }

    #[test]
    fn exp_half_bounds() {
        let half = BigRational::new(BigInt::one(), BigUint::from(2u64));
        let e = exp_enclosure(&half, 64);
        let v = 0.5f64.exp();
        assert!(e.lo.to_f64() <= v && v <= e.hi.to_f64() + 1e-15);
    }

    #[test]
    fn f_q_rounds_up() {
        // f_2(0.3) = ceil(1.2)/4 = 2/4 = 1/2.
        let x = BigRational::new(BigInt::from(3i64), BigUint::from(10u64));
        assert_eq!(f_q(&x, 2), BigRational::new(BigInt::from(1i64), BigUint::from(2u64)));
        // Exact grid points stay put.
        let y = BigRational::new(BigInt::from(3i64), BigUint::from(4u64));
        assert_eq!(f_q(&y, 2), y);
    }

    #[test]
    fn ceil_pow2q_exp_small_cases() {
        // ceil(2^4 * e^0) = 16.
        assert_eq!(ceil_pow2q_exp(&BigRational::zero(), 4), BigUint::from(16u64));
        // ceil(2^4 * e) = ceil(43.49) = 44.
        assert_eq!(ceil_pow2q_exp(&BigRational::one(), 4), BigUint::from(44u64));
        // ceil(2^10 * e^(1/2)) = ceil(1688.36...) = 1689.
        let half = BigRational::new(BigInt::one(), BigUint::from(2u64));
        assert_eq!(ceil_pow2q_exp(&half, 10), BigUint::from(1689u64));
    }

    #[test]
    fn g_q_monotone_in_b() {
        // g_q must be strictly increasing for b in [1, K] at reasonable q.
        let q = 20;
        let two_k = 40;
        let mut prev = g_q(0, two_k, q);
        for b in 1..=20 {
            let cur = g_q(b, two_k, q);
            assert!(cur > prev, "g_q not increasing at b={b}");
            prev = cur;
        }
    }

    #[test]
    fn g_q_matches_f64_at_moderate_precision() {
        let q = 30;
        let two_k = 24;
        for b in [1u64, 5, 12] {
            let exact = g_q(b, two_k, q);
            let approx = ((b as f64 / two_k as f64).exp() * (1u64 << q) as f64).ceil();
            let diff = (exact.to_f64() - approx).abs();
            assert!(diff <= 1.0, "b={b}: exact={exact} approx={approx}");
        }
    }
}
