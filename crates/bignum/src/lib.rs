//! Arbitrary-precision arithmetic for the `aqo` workspace.
//!
//! The reductions of *On the Complexity of Approximate Query Optimization*
//! (PODS 2002) manufacture query-optimization instances whose costs are of
//! the order `α^{Θ(n²)}` with `α = 4^{n^{1/δ}}` — far beyond any machine
//! numeric type. Every certified inequality reported by the experiment
//! harness is therefore evaluated in exact arithmetic.
//!
//! This crate provides, from scratch (no external bignum dependency):
//!
//! * [`BigUint`] — unsigned arbitrary-precision integers (Knuth-D division,
//!   Karatsuba multiplication above a threshold, exponentiation, radix I/O);
//! * [`BigInt`] — signed integers on top of [`BigUint`];
//! * [`BigRational`] — always-reduced rationals, the workhorse of the exact
//!   cost models (selectivities are reciprocals, so intermediate sizes are
//!   rationals);
//! * [`LogNum`] — a fast `f64` log₂-domain companion used by heuristics and
//!   by figures; cross-validated against the exact types in tests;
//! * [`fixed`] — rigorous fixed-point evaluation of `e^x` needed by the
//!   PARTITION → SPPCS reduction of Appendix A (`g_q(x) = 2^q·f_q(e^{x/2K})`).
//!
//! ```
//! use aqo_bignum::{BigUint, BigRational};
//!
//! // Numbers far beyond machine range, exactly.
//! let a = BigUint::from(4u64).pow(1000);
//! assert_eq!(a.bits(), 2001);
//!
//! // Selectivities are reciprocals; intermediate sizes are rationals.
//! let sel = BigRational::recip_of(BigUint::from(10u64));
//! let size = BigRational::from(1_000_000u64) * &sel * &sel;
//! assert_eq!(size, BigRational::from(10_000u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod int;
mod lognum;
mod rational;
mod uint;

pub mod fixed;

pub use int::{BigInt, Sign};
pub use lognum::LogNum;
pub use rational::BigRational;
pub use uint::BigUint;

/// Convenience: `2^k` as a [`BigUint`].
pub fn pow2(k: u64) -> BigUint {
    BigUint::one() << k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_matches_shift() {
        assert_eq!(pow2(0), BigUint::one());
        assert_eq!(pow2(1), BigUint::from(2u64));
        assert_eq!(pow2(130), BigUint::from(1u64) << 130);
    }
}
