//! The rule catalog. Every rule is a pure function from scanned sources
//! to [`Finding`]s; `docs/ANALYSIS.md` is the human-facing catalog with
//! rationale and examples, this module is the executable one.

use crate::scanner::SourceModel;

/// How bad a finding is. The baseline gate treats both identically (any
/// new finding is a regression); severity is for human triage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A violated invariant (panic path, float in exact code, …).
    Error,
    /// A smell worth a look (SeqCst in a hot path, missing budget hook).
    Warning,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// One rule violation, anchored to a file and line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`no-unwrap-in-lib`, …).
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What tripped, with enough context to act on.
    pub message: String,
    /// Witness call chain for graph rules (`panic-path`,
    /// `blocking-under-lock`): entry → … → offending item.
    pub chain: Vec<String>,
    /// Witness lock cycle for `lock-order`: the lock labels in
    /// acquisition order, with the first repeated implicitly.
    pub cycle: Vec<String>,
}

impl Finding {
    /// A plain finding with empty witnesses.
    pub fn new(
        rule: &'static str,
        severity: Severity,
        path: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            rule,
            severity,
            path: path.into(),
            line,
            message: message.into(),
            chain: Vec::new(),
            cycle: Vec::new(),
        }
    }
}

/// Rule ids in catalog order.
pub const RULE_IDS: [&str; 9] = [
    "no-unwrap-in-lib",
    "ordering-audit",
    "no-float-in-exact",
    "counter-catalog-sync",
    "budget-hook-coverage",
    "panic-path",
    "lock-order",
    "blocking-under-lock",
    "error-kind-sync",
];

/// One row of the rule catalog: the same table renders
/// `aqo analyze --explain <rule>` and anchors docs/ANALYSIS.md.
pub struct RuleDoc {
    /// Rule id.
    pub id: &'static str,
    /// Severity the rule's findings carry.
    pub severity: Severity,
    /// One-line summary (shown in `--explain` and the doc catalog).
    pub summary: &'static str,
    /// Paragraph-length rationale + how to fix or allow.
    pub detail: &'static str,
}

/// The rule catalog, one entry per id in [`RULE_IDS`] order.
pub const RULE_DOCS: [RuleDoc; 9] = [
    RuleDoc {
        id: "no-unwrap-in-lib",
        severity: Severity::Error,
        summary: "no unwrap/expect/panic!/todo! in non-test code of the panic-free crates",
        detail: "The driver's catch_unwind tier isolation and the paper's cost-semantics \
                 claims both assume library code reports failure as values, not unwinds. \
                 Return a Result, or add `// analyze:allow(no-unwrap-in-lib) -- <why>` \
                 when the panic is provably unreachable.",
    },
    RuleDoc {
        id: "ordering-audit",
        severity: Severity::Error,
        summary: "every Ordering::Relaxed needs an `// ordering: <why>` justification; \
                  SeqCst is flagged as a perf smell",
        detail: "Relaxed atomics are correct only under an argument about independence or \
                 external synchronization; the rule makes that argument part of the code. \
                 SeqCst is a full fence nothing in this workspace needs — use \
                 Acquire/Release or a justified Relaxed.",
    },
    RuleDoc {
        id: "no-float-in-exact",
        severity: Severity::Error,
        summary: "no f64/f32 tokens in the exact-cost modules (qon.rs, qoh.rs, bignum)",
        detail: "The paper's certified inequalities are only meaningful under exact \
                 arithmetic. The one sanctioned float domain is LogNum pruning, which \
                 lives in lognum.rs and is excluded from the rule's scope.",
    },
    RuleDoc {
        id: "counter-catalog-sync",
        severity: Severity::Error,
        summary: "every metric/span/event registered in code appears in \
                  docs/OBSERVABILITY.md and vice versa",
        detail: "An undocumented counter is invisible operationally; a stale catalog row \
                 is a lie. Registration sites are matched against the catalog tables with \
                 `{placeholder}` / `<placeholder>` wildcards normalized.",
    },
    RuleDoc {
        id: "budget-hook-coverage",
        severity: Severity::Warning,
        summary: "every public optimize* entry point is cancellable (takes a Budget or \
                  has a _with_budget sibling)",
        detail: "The driver's tiered fallback can only isolate what it can cancel; an \
                 unbudgeted entry point is a tier that can wedge the ladder.",
    },
    RuleDoc {
        id: "panic-path",
        severity: Severity::Error,
        summary: "no panic token (unwrap/expect/panic!/indexing) reachable from a serve \
                  entry point through the call graph",
        detail: "A panic mid-request voids the approximation-ratio contract the response \
                 claims and can poison locks. The pass walks the workspace call graph \
                 from the serve entry points (request/connection/worker/writer fns), \
                 stops at catch_unwind containment, and prints the full offending call \
                 chain. Fix by returning an error, containing the unwind, or \
                 `// analyze:allow(panic-path) -- <why>` at the panic site (an existing \
                 no-unwrap-in-lib allow carries over).",
    },
    RuleDoc {
        id: "lock-order",
        severity: Severity::Error,
        summary: "the nested lock-acquisition graph (propagated through calls) must be \
                  acyclic, and every nesting lock must appear in the canonical order in \
                  docs/ANALYSIS.md",
        detail: "Two threads taking the same locks in different orders is a deadlock \
                 waiting for load. The pass extracts every Mutex/RwLock field and \
                 static, tracks guard liveness per function (let-bound guards live to \
                 end of block or drop(); temporaries to end of statement), propagates \
                 acquisitions through the call graph, and fails on any cycle with a \
                 witness. Never baseline a cycle — fix the order or restructure.",
    },
    RuleDoc {
        id: "blocking-under-lock",
        severity: Severity::Error,
        summary: "no blocking call (write/flush/read/sleep/recv/…) while a lock guard is \
                  live, directly or one call deep",
        detail: "A blocking syscall under a lock turns one slow peer into a stalled \
                 server. Condvar::wait is exempt (it releases the lock). Where the block \
                 is intentional and bounded (e.g. socket writes under the per-connection \
                 writer lock with a write timeout), allow it with the justification \
                 spelled out: `// analyze:allow(blocking-under-lock) -- <why>`.",
    },
    RuleDoc {
        id: "error-kind-sync",
        severity: Severity::Error,
        summary: "every wire error kind emitted by crates/serve is classified by the \
                  client and documented in docs/SERVING.md",
        detail: "The retry loop is only as complete as its classification table: an \
                 unclassified kind falls into a default arm that may retry a fatal error \
                 or give up on a retriable one. Wire kinds are read from \
                 ErrorKind::name(); each must appear in ErrorKind::from_wire, in \
                 crates/serve/src/client.rs, and backticked in docs/SERVING.md.",
    },
];

/// Crates whose `src/` trees must stay panic-free (`no-unwrap-in-lib`).
const PANIC_FREE_CRATES: [&str; 5] = ["core", "bignum", "optimizer", "obs", "driver"];

/// Exact-cost modules for `no-float-in-exact`: QO_N/QO_H cost semantics
/// and the exact big-number backends. `lognum.rs` is the log-domain prune
/// representation — floats are its whole point — so it is out of scope.
const EXACT_MODULES: [&str; 2] = ["crates/core/src/qon.rs", "crates/core/src/qoh.rs"];

/// Docs the doc-sync rules check against. A `None` skips that rule's
/// doc-side checks (e.g. in fixture workspaces without the doc).
#[derive(Default)]
pub struct RuleContext {
    /// `docs/OBSERVABILITY.md` for `counter-catalog-sync`.
    pub observability_doc: Option<String>,
    /// `docs/SERVING.md` for `error-kind-sync`.
    pub serving_doc: Option<String>,
    /// `docs/ANALYSIS.md` for `lock-order`'s canonical-order check.
    pub analysis_doc: Option<String>,
}

/// Runs every rule — the five lexical ones and the four graph passes —
/// over the scanned workspace.
pub fn run_all(models: &[SourceModel], ctx: &RuleContext) -> Vec<Finding> {
    let mut findings = Vec::new();
    for m in models {
        findings.extend(no_unwrap_in_lib(m));
        findings.extend(ordering_audit(m));
        findings.extend(no_float_in_exact(m));
        findings.extend(budget_hook_coverage(m));
    }
    if let Some(doc) = ctx.observability_doc.as_deref() {
        findings.extend(counter_catalog_sync(models, doc));
    }
    let ws = crate::symbols::extract(models);
    let graph = crate::callgraph::CallGraph::build(&ws);
    findings.extend(crate::callgraph::panic_path(&graph));
    findings.extend(crate::locks::lock_rules(
        &graph,
        models,
        ctx.analysis_doc.as_deref(),
    ));
    findings.extend(crate::error_kinds::error_kind_sync(
        &ws,
        models,
        ctx.serving_doc.as_deref(),
    ));
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// Whether `rel_path` is non-test library code of a panic-free crate.
fn in_panic_free_scope(rel_path: &str) -> bool {
    PANIC_FREE_CRATES
        .iter()
        .any(|c| rel_path.starts_with(&format!("crates/{c}/src/")))
}

/// True when `code[idx..]` matches `pat` at an identifier boundary (the
/// char before is not part of an identifier).
fn token_at(code: &str, idx: usize) -> bool {
    idx == 0
        || !code[..idx]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Every identifier-boundary occurrence of `pat` in `code`.
pub(crate) fn token_matches<'a>(code: &'a str, pat: &str) -> impl Iterator<Item = usize> + 'a {
    let pat = pat.to_string();
    let mut from = 0usize;
    std::iter::from_fn(move || loop {
        let rel = code[from..].find(&pat)?;
        let idx = from + rel;
        from = idx + pat.len();
        if token_at(code, idx) {
            return Some(idx);
        }
    })
}

/// **no-unwrap-in-lib** — `unwrap()` / `expect(` / `panic!` /
/// `unreachable!` in non-test code of the panic-free crates. The driver's
/// `catch_unwind` tier isolation and the paper's cost-semantics claims
/// both assume library code reports failure as values, not unwinds.
pub fn no_unwrap_in_lib(m: &SourceModel) -> Vec<Finding> {
    const RULE: &str = "no-unwrap-in-lib";
    if !in_panic_free_scope(&m.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in m.lines.iter().enumerate() {
        if line.in_test || m.is_allowed(RULE, idx + 1) {
            continue;
        }
        for (needle, label) in [
            (".unwrap()", "`unwrap()`"),
            (".expect(", "`expect()`"),
            (".expect_err(", "`expect_err()`"),
            ("panic!", "`panic!`"),
            ("unreachable!", "`unreachable!`"),
            ("todo!", "`todo!`"),
            ("unimplemented!", "`unimplemented!`"),
        ] {
            // The `.…(` anchor keeps `unwrap_or_else` / `unwrap_or` out;
            // token_matches guards the macro names against suffix hits.
            let hit = if needle.starts_with('.') {
                line.code.contains(needle)
            } else {
                token_matches(&line.code, needle).next().is_some()
            };
            if hit {
                out.push(Finding::new(
                    RULE,
                    Severity::Error,
                    m.rel_path.clone(),
                    idx + 1,
                    format!(
                        "{label} in library code can unwind across the driver's \
                         isolation boundary; return a Result or add \
                         `// analyze:allow({RULE}) -- <why>`"
                    ),
                ));
                break; // one finding per line is enough
            }
        }
    }
    out
}

/// **ordering-audit** — every `Ordering::Relaxed` in a file that uses
/// `std::sync::atomic` must carry an `ordering:` justification in the
/// same-line or immediately preceding comment; `Ordering::SeqCst` is
/// flagged as a perf smell (nothing in this workspace needs total order).
pub fn ordering_audit(m: &SourceModel) -> Vec<Finding> {
    const RULE: &str = "ordering-audit";
    // Scope: files that import the atomic Ordering (this is what keeps
    // `std::cmp::Ordering` matches in bignum out).
    let uses_atomics = m.lines.iter().any(|l| {
        l.code.contains("sync::atomic") || l.code.contains("atomic::Ordering")
    });
    if !uses_atomics || !m.rel_path.ends_with(".rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in m.lines.iter().enumerate() {
        if line.in_test || m.is_allowed(RULE, idx + 1) {
            continue;
        }
        if line.code.contains("Ordering::Relaxed")
            && !line.code.contains("use ")
            && !m.comment_context(idx + 1).contains("ordering:")
        {
            out.push(Finding::new(
                RULE,
                Severity::Error,
                m.rel_path.clone(),
                idx + 1,
                "`Ordering::Relaxed` without an `// ordering: <why>` \
                 justification in the same-line or preceding comment",
            ));
        }
        if line.code.contains("Ordering::SeqCst") && !line.code.contains("use ") {
            out.push(Finding::new(
                RULE,
                Severity::Warning,
                m.rel_path.clone(),
                idx + 1,
                "`Ordering::SeqCst` is a full-fence perf smell on hot \
                 paths; Acquire/Release (or justified Relaxed) is \
                 almost always what is meant",
            ));
        }
    }
    out
}

/// **no-float-in-exact** — no `f64`/`f32` tokens in the exact-cost
/// modules (`qon.rs`, `qoh.rs`, the exact `bignum` backends). The paper's
/// certified inequalities are only meaningful under exact arithmetic; the
/// one sanctioned float domain is `LogNum` pruning, which lives in
/// `lognum.rs` and is excluded.
pub fn no_float_in_exact(m: &SourceModel) -> Vec<Finding> {
    const RULE: &str = "no-float-in-exact";
    let in_scope = EXACT_MODULES.contains(&m.rel_path.as_str())
        || (m.rel_path.starts_with("crates/bignum/src/")
            && !m.rel_path.ends_with("lognum.rs"));
    if !in_scope {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in m.lines.iter().enumerate() {
        if line.in_test || m.is_allowed(RULE, idx + 1) {
            continue;
        }
        for ty in ["f64", "f32"] {
            if token_matches(&line.code, ty).next().is_some() {
                out.push(Finding::new(
                    RULE,
                    Severity::Error,
                    m.rel_path.clone(),
                    idx + 1,
                    format!(
                        "`{ty}` in an exact-cost module; exact paths must stay \
                         in integer/rational arithmetic (LogNum bridging \
                         belongs in lognum.rs or behind an allow)"
                    ),
                ));
                break;
            }
        }
    }
    out
}

/// A metric name with format placeholders / doc placeholders normalized
/// (`{site}` and `<site>` both become `*`).
fn normalize_metric(name: &str) -> String {
    let mut out = String::new();
    let mut chars = name.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' => {
                for n in chars.by_ref() {
                    if n == '}' {
                        break;
                    }
                }
                out.push('*');
            }
            '<' => {
                for n in chars.by_ref() {
                    if n == '>' {
                        break;
                    }
                }
                out.push('*');
            }
            c => out.push(c),
        }
    }
    out
}

/// What kind of observability name a use site or catalog row declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    /// Counter/gauge/histogram registration.
    Metric,
    /// `span(…)` name (cataloged in the span-names paragraph).
    Span,
    /// `journal::event("type", …)` event type (Journal events table).
    Event,
}

/// A metric-name use site found in code.
#[derive(Debug)]
struct MetricUse {
    name: String,
    path: String,
    line: usize,
    kind: MetricKind,
}

/// Extracts metric registrations (`counter(…)`, `counter_handle!(…)`,
/// `gauge(…)`, `histogram(…)`, `span(…)`) from the scanned sources,
/// skipping `aqo-obs` itself (the registry's internals and its unit tests
/// use throwaway names).
fn collect_metric_uses(models: &[SourceModel]) -> Vec<MetricUse> {
    let mut out = Vec::new();
    for m in models {
        if !m.rel_path.ends_with(".rs") || m.rel_path.starts_with("crates/obs/src/") {
            continue;
        }
        for (idx, line) in m.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let triggers = [
                ("counter_handle!", MetricKind::Metric),
                ("counter(", MetricKind::Metric),
                ("gauge(", MetricKind::Metric),
                ("histogram(", MetricKind::Metric),
                ("span(", MetricKind::Span),
                ("event(", MetricKind::Event),
            ];
            for (trigger, kind) in triggers {
                let bare = trigger.trim_end_matches(['!', '(']);
                if token_matches(&line.code, bare)
                    .any(|i| line.code[i + bare.len()..].starts_with(['!', '(']))
                {
                    // The name is the first string literal at or shortly
                    // after the call (rustfmt may wrap the argument list).
                    let Some(name) = m.lines[idx..m.lines.len().min(idx + 3)]
                        .iter()
                        .flat_map(|l| l.strings.first())
                        .next()
                        .cloned()
                    else {
                        break;
                    };
                    // Only catalog dotted metric names; spans and event
                    // types are bare words by design.
                    if name.contains('.') || kind != MetricKind::Metric {
                        out.push(MetricUse {
                            name,
                            path: m.rel_path.clone(),
                            line: idx + 1,
                            kind,
                        });
                    }
                    break;
                }
            }
        }
    }
    out
}

/// Names declared in `docs/OBSERVABILITY.md`, with 1-based doc lines:
/// metric names from the table rows of the `## Counters` and `## Gauges
/// and histograms` sections, span names from the backticked "Span names
/// in the tree" paragraph, and event types from the `## Journal events`
/// table. Table header rows (the row directly above a `|---|` separator)
/// are skipped.
fn collect_doc_metrics(doc: &str) -> Vec<(String, usize, MetricKind)> {
    let mut out = Vec::new();
    let lines: Vec<&str> = doc.lines().collect();
    let mut section = "";
    let mut in_span_para = false;
    for (idx, raw) in lines.iter().enumerate() {
        let line = raw.trim();
        if let Some(h) = line.strip_prefix("## ") {
            section = match h {
                "Counters" => "metrics",
                "Gauges and histograms" => "metrics",
                "Journal events" => "events",
                _ => "",
            };
        }
        if line.starts_with("Span names in the tree") {
            in_span_para = true;
        } else if line.is_empty() {
            in_span_para = false;
        }
        if in_span_para {
            for name in backticked(line) {
                out.push((name, idx + 1, MetricKind::Span));
            }
            continue;
        }
        let kind = match section {
            "metrics" => MetricKind::Metric,
            "events" => MetricKind::Event,
            _ => continue,
        };
        // Skip the header row (the one right above the `|---|` rule).
        if lines.get(idx + 1).is_some_and(|n| n.trim_start().starts_with("|--")) {
            continue;
        }
        if let Some(cell) = line.strip_prefix("| `") {
            if let Some(end) = cell.find('`') {
                out.push((cell[..end].to_string(), idx + 1, kind));
            }
        }
    }
    out
}

/// Every `` `…` `` span in a line.
fn backticked(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let Some(close) = rest[open + 1..].find('`') else { break };
        out.push(rest[open + 1..open + 1 + close].to_string());
        rest = &rest[open + 1 + close + 1..];
    }
    out
}

/// Whether normalized names `a` and `b` denote the same metric: exact
/// match, or equal up to a `*` placeholder tail on either side.
fn metric_matches(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    let prefix = |s: &str| s.split('*').next().unwrap_or(s).to_string();
    (a.contains('*') && b.starts_with(&prefix(a)))
        || (b.contains('*') && a.starts_with(&prefix(b)))
}

/// **counter-catalog-sync** — every metric registered in code must appear
/// in `docs/OBSERVABILITY.md`, and every cataloged name must still have a
/// registration site. An undocumented counter is invisible operationally;
/// a stale catalog row is a lie.
pub fn counter_catalog_sync(models: &[SourceModel], doc: &str) -> Vec<Finding> {
    const RULE: &str = "counter-catalog-sync";
    const DOC_PATH: &str = "docs/OBSERVABILITY.md";
    let uses = collect_metric_uses(models);
    let doc_names = collect_doc_metrics(doc);
    let mut out = Vec::new();

    for u in &uses {
        let n = normalize_metric(&u.name);
        let documented = doc_names
            .iter()
            .any(|(d, _, k)| *k == u.kind && metric_matches(&n, &normalize_metric(d)));
        if !documented {
            let model = models.iter().find(|m| m.rel_path == u.path);
            if model.is_some_and(|m| m.is_allowed(RULE, u.line)) {
                continue;
            }
            out.push(Finding::new(
                RULE,
                Severity::Error,
                u.path.clone(),
                u.line,
                format!("metric `{}` is registered here but missing from {DOC_PATH}", u.name),
            ));
        }
    }

    for (d, line, kind) in &doc_names {
        let n = normalize_metric(d);
        // `span.<name>` histograms are a derived family, and the `span` /
        // `span_start` journal events are emitted inside `aqo-obs` itself
        // (out of the code-side scan's scope); none has a registration
        // site here.
        if n == "span.*" || ((n == "span" || n == "span_start") && *kind == MetricKind::Event) {
            continue;
        }
        let registered = uses
            .iter()
            .any(|u| u.kind == *kind && metric_matches(&n, &normalize_metric(&u.name)));
        if !registered {
            out.push(Finding::new(
                RULE,
                Severity::Error,
                DOC_PATH,
                *line,
                format!(
                    "catalog lists `{d}` but no registration site in the \
                     workspace emits it"
                ),
            ));
        }
    }
    out
}

/// **budget-hook-coverage** — every public `optimize*` entry point in
/// `crates/optimizer/src` must be cancellable: either a sibling
/// `<name>_with_budget` exists in the same module, or the function itself
/// takes a `Budget`. The driver's tiered fallback can only isolate what
/// it can cancel.
pub fn budget_hook_coverage(m: &SourceModel) -> Vec<Finding> {
    const RULE: &str = "budget-hook-coverage";
    if !m.rel_path.starts_with("crates/optimizer/src/") {
        return Vec::new();
    }
    // Collect (name, line, signature) of top-level pub fns.
    let mut fns: Vec<(String, usize, String)> = Vec::new();
    let mut depth = 0i64;
    for (idx, line) in m.lines.iter().enumerate() {
        if depth == 0 && !line.in_test {
            if let Some(pos) = line.code.find("pub fn ") {
                let rest = &line.code[pos + "pub fn ".len()..];
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    // Signature: this line through the opening brace or `;`.
                    let mut sig = String::new();
                    for l in &m.lines[idx..m.lines.len().min(idx + 12)] {
                        sig.push_str(&l.code);
                        sig.push(' ');
                        if l.code.contains('{') || l.code.contains(';') {
                            break;
                        }
                    }
                    fns.push((name, idx + 1, sig));
                }
            }
        }
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    for (name, line, sig) in &fns {
        if !name.starts_with("optimize") || name.ends_with("_with_budget") {
            continue;
        }
        if m.is_allowed(RULE, *line) {
            continue;
        }
        let has_variant = fns.iter().any(|(n, _, _)| n == &format!("{name}_with_budget"));
        let takes_budget = sig.contains("Budget");
        if !has_variant && !takes_budget {
            out.push(Finding::new(
                RULE,
                Severity::Warning,
                m.rel_path.clone(),
                *line,
                format!(
                    "public entry point `{name}` has no `{name}_with_budget` \
                     sibling and takes no `Budget`; the driver cannot cancel it"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert!(token_matches("panic!(\"x\")", "panic").next().is_some());
        assert!(token_matches("no_panic!(...)", "panic").next().is_none());
        assert!(token_matches("a f64 b", "f64").next().is_some());
        assert!(token_matches("xf64", "f64").next().is_none());
    }

    #[test]
    fn metric_normalization_and_matching() {
        assert_eq!(normalize_metric("faults.hit.{site}"), "faults.hit.*");
        assert_eq!(normalize_metric("faults.hit.<site>"), "faults.hit.*");
        assert!(metric_matches("faults.hit.*", "faults.hit.*"));
        assert!(metric_matches("budget.exceeded.*", "budget.exceeded.deadline"));
        assert!(!metric_matches("a.b", "a.c"));
    }

    #[test]
    fn unwrap_rule_respects_scope_tests_and_allows() {
        let src = "fn f() {\n    x.unwrap();\n    y.unwrap_or_else(|e| e.into_inner());\n    z.unwrap(); // analyze:allow(no-unwrap-in-lib) -- invariant: nonempty\n}\n#[cfg(test)]\nmod tests {\n    fn t() { q.unwrap(); }\n}\n";
        let in_scope = SourceModel::scan("crates/core/src/x.rs", src);
        let hits = no_unwrap_in_lib(&in_scope);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
        let out_of_scope = SourceModel::scan("crates/bench/src/x.rs", src);
        assert!(no_unwrap_in_lib(&out_of_scope).is_empty());
    }

    #[test]
    fn ordering_rule_wants_justification() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n    // ordering: independent counter, readers join first\n    a.fetch_add(1, Ordering::Relaxed);\n    a.store(0, Ordering::SeqCst);\n}\n";
        let m = SourceModel::scan("crates/core/src/x.rs", src);
        let hits = ordering_audit(&m);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].line, 3);
        assert_eq!(hits[0].severity, Severity::Error);
        assert_eq!(hits[1].line, 6);
        assert_eq!(hits[1].severity, Severity::Warning);
    }

    #[test]
    fn cmp_ordering_is_out_of_scope() {
        let src = "use std::cmp::Ordering;\nfn f() -> Ordering { Ordering::Less }\n";
        let m = SourceModel::scan("crates/bignum/src/int.rs", src);
        assert!(ordering_audit(&m).is_empty());
    }
}
