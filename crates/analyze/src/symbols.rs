//! Symbol layer: functions, impl blocks, struct fields, and statics
//! extracted from the scanned token stream — the input the call-graph
//! passes ([`crate::callgraph`], [`crate::locks`]) resolve against.
//!
//! This is still not a parser: items are recovered by brace matching on
//! the code view, and call sites by identifier-adjacent-`(` scanning.
//! The known approximations are documented in docs/ANALYSIS.md; the
//! guiding rule is to over-approximate reachability (extra edges are
//! noise a human can allow away; missing edges are unsound silence).

use crate::scanner::{self, ScanLine, SourceModel};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `self.foo(…)` — method on the caller's own impl type.
    SelfMethod,
    /// `recv.foo(…)` — method on some receiver; `receiver` holds the
    /// last field segment of the receiver chain (`self.cache.insert(`
    /// → `cache`) for field-type-directed resolution.
    Method {
        /// Last receiver-chain segment before the method name.
        receiver: Option<String>,
    },
    /// `Qual::foo(…)` — associated function or module-qualified free fn.
    Path {
        /// The path segment before the `::`.
        qualifier: String,
    },
    /// `foo(…)` — unqualified free function.
    Free,
}

/// One call site inside an item body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line.
    pub line: usize,
    /// How the callee is named.
    pub kind: CallKind,
    /// The callee identifier.
    pub name: String,
    /// Inside a `catch_unwind(…)` statement extent: the unwind cannot
    /// escape, so panic-path reachability stops here (lock analysis
    /// still traverses — catching a panic does not release a deadlock).
    pub contained: bool,
}

/// A potential panic site (unwrap/expect/panic!/indexing/…).
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// Human label, e.g. `` `unwrap()` ``.
    pub label: String,
    /// Suppressed by `analyze:allow(panic-path)` — or by an existing
    /// `analyze:allow(no-unwrap-in-lib)`, so a justification written for
    /// the lexical rule carries over to the reachability rule.
    pub allowed: bool,
}

/// A function item (free fn or method).
#[derive(Debug)]
pub struct Item {
    /// Function name.
    pub name: String,
    /// `Some(type)` when declared inside `impl Type { … }` /
    /// `impl Trait for Type { … }`.
    pub self_type: Option<String>,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
    /// 1-based inclusive body extent (lines of `{` … `}`); `(0, 0)` for
    /// bodyless trait-method declarations.
    pub body: (usize, usize),
    /// Declared inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// Declaration through the opening brace, concatenated.
    pub signature: String,
    /// Call sites in the body (innermost-item attribution).
    pub calls: Vec<CallSite>,
    /// Potential panic sites in the body.
    pub panics: Vec<PanicSite>,
}

/// A struct field (for receiver-type-directed call resolution and lock
/// discovery).
#[derive(Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Full type text after the `:`, e.g. `Mutex<QueueState>`.
    pub ty: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// A struct definition with its fields.
#[derive(Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// Brace-body fields in declaration order.
    pub fields: Vec<Field>,
}

/// A `static NAME: Type = …;` item (module- or function-scoped).
#[derive(Debug)]
pub struct StaticDef {
    /// Static name.
    pub name: String,
    /// Full type text after the `:`.
    pub ty: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// Everything the graph passes need, extracted in one pass.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every function item.
    pub items: Vec<Item>,
    /// Every brace-bodied struct.
    pub structs: Vec<StructDef>,
    /// Every `static NAME: Type` item.
    pub statics: Vec<StaticDef>,
}

/// Extracts the symbol layer from every scanned `.rs` source.
pub fn extract(models: &[SourceModel]) -> Workspace {
    let mut ws = Workspace::default();
    for m in models {
        if !m.rel_path.ends_with(".rs") {
            continue;
        }
        extract_file(m, &mut ws);
    }
    ws
}

/// Rust keywords that look like `ident(` call sites but are not.
const KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "loop", "return", "fn", "move", "unsafe", "as", "in",
    "else", "let", "ref",
];

fn extract_file(m: &SourceModel, ws: &mut Workspace) {
    let lines = &m.lines;
    // Cumulative brace depth *before* each line (index 0 = line 1).
    let mut depth_before: Vec<i64> = Vec::with_capacity(lines.len() + 1);
    let mut d = 0i64;
    for line in lines {
        depth_before.push(d);
        for c in line.code.chars() {
            match c {
                '{' => d += 1,
                '}' => d -= 1,
                _ => {}
            }
        }
    }
    depth_before.push(d);

    // `catch_unwind` containment ranges (1-based inclusive).
    let contained_ranges: Vec<(usize, usize)> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.code.contains("catch_unwind"))
        .map(|(idx, _)| scanner::statement_extent(lines, idx + 1))
        .collect();
    let is_contained =
        |line: usize| contained_ranges.iter().any(|&(s, e)| line >= s && line <= e);

    // Impl contexts: (type, start line, end line), found by brace
    // matching from each `impl` header.
    let mut impls: Vec<(String, usize, usize)> = Vec::new();
    // Struct defs likewise.
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if let Some(ty) = impl_type(code) {
            if let Some(end) = block_end(lines, idx, code.find('{')) {
                impls.push((ty, idx + 1, end));
            }
        }
        if let Some(name) = header_name(code, "struct ") {
            // Only brace-bodied structs have fields worth collecting.
            if code.contains('{') || lines.get(idx + 1).is_some_and(|l| l.code.contains('{')) {
                let open = if code.contains('{') { idx } else { idx + 1 };
                if let Some(end) = block_end(lines, open, lines[open].code.find('{')) {
                    let fields = collect_fields(lines, open, end);
                    ws.structs.push(StructDef { name, file: m.rel_path.clone(), fields });
                }
            }
        }
        if let Some(rest) = after_token(code, "static ") {
            // `static NAME: Type = …` (skip `ref` from lazy_static-style
            // macros; none in this workspace, but cheap to guard).
            let rest = rest.trim_start_matches("mut ").trim_start();
            let name: String = rest.chars().take_while(|c| ident_char(*c)).collect();
            let after = &rest[name.len()..];
            if !name.is_empty() && after.trim_start().starts_with(':') {
                let ty = after.trim_start()[1..]
                    .split(['=', ';'])
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                ws.statics.push(StaticDef {
                    name,
                    ty,
                    file: m.rel_path.clone(),
                    line: idx + 1,
                });
            }
        }
    }

    // Function items.
    let mut file_items: Vec<Item> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(rest) = after_token(&line.code, "fn ") else { continue };
        let name: String = rest.chars().take_while(|c| ident_char(*c)).collect();
        if name.is_empty() {
            continue; // `fn(` pointer type
        }
        // Signature: decl line through the opening brace or `;`.
        let mut sig = String::new();
        let mut open_line: Option<usize> = None;
        let mut bodyless = false;
        for (off, l) in lines[idx..lines.len().min(idx + 16)].iter().enumerate() {
            sig.push_str(&l.code);
            sig.push(' ');
            if let Some(brace) = l.code.find('{') {
                // A `;` before the `{` on the same line means a bodyless
                // declaration followed by something else.
                if l.code[..brace].contains(';') && off == 0 {
                    bodyless = true;
                }
                open_line = Some(idx + off);
                break;
            }
            if l.code.contains(';') {
                bodyless = true;
                break;
            }
        }
        let body = match (bodyless, open_line) {
            (false, Some(open)) => {
                let end = block_end(lines, open, lines[open].code.find('{'));
                (open + 1, end.unwrap_or(lines.len()))
            }
            _ => (0, 0),
        };
        let self_type = impls
            .iter()
            .find(|(_, s, e)| idx >= *s && idx < *e)
            .map(|(t, _, _)| t.clone());
        file_items.push(Item {
            name,
            self_type,
            file: m.rel_path.clone(),
            line: idx + 1,
            body,
            is_test: line.in_test,
            signature: sig,
            calls: Vec::new(),
            panics: Vec::new(),
        });
    }

    // Attribute each body line to the *innermost* enclosing item, so a
    // nested fn's calls are not double-counted against its parent.
    for line_no in 1..=lines.len() {
        let owner = file_items
            .iter_mut()
            .filter(|it| it.body.0 != 0 && line_no >= it.body.0 && line_no <= it.body.1)
            .min_by_key(|it| it.body.1 - it.body.0);
        let Some(item) = owner else { continue };
        let l = &lines[line_no - 1];
        collect_calls(&l.code, line_no, is_contained(line_no), &mut item.calls);
        collect_panics(m, line_no, &mut item.panics);
    }

    // A free call whose name is `let`-bound in the same body is a closure
    // invocation, not a free-fn call — and since a local shadows any fn
    // of the same name in Rust, dropping the edge cannot hide a real one.
    for it in &mut file_items {
        if it.body.0 == 0 {
            continue;
        }
        let mut locals: Vec<String> = Vec::new();
        for ln in it.body.0..=it.body.1 {
            let_bound_names(&lines[ln - 1].code, &mut locals);
        }
        it.calls.retain(|c| !(c.kind == CallKind::Free && locals.contains(&c.name)));
    }

    ws.items.extend(file_items);
}

/// `impl Type {` / `impl Trait for Type {` → the implementing type's
/// last path segment (generics stripped).
fn impl_type(code: &str) -> Option<String> {
    let rest = after_token(code, "impl")?;
    // Skip generic params: `impl<T: Ord> Foo<T>`.
    let rest = if let Some(r) = rest.strip_prefix('<') {
        let mut depth = 1;
        let mut cut = r.len();
        for (i, c) in r.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &r[cut..]
    } else {
        rest
    };
    let rest = rest.trim_start();
    let target = match rest.find(" for ") {
        Some(pos) => rest[pos + 5..].trim_start(),
        None => rest,
    };
    let ty: String = target
        .chars()
        .take_while(|c| ident_char(*c) || *c == ':')
        .collect();
    let ty = ty.rsplit("::").next().unwrap_or(&ty).to_string();
    if ty.is_empty() { None } else { Some(ty) }
}

/// The identifier following `pat` when `pat` occurs at a token boundary.
fn after_token<'a>(code: &'a str, pat: &str) -> Option<&'a str> {
    let bare = pat.trim_end();
    let mut from = 0;
    while let Some(rel) = code[from..].find(pat) {
        let idx = from + rel;
        let boundary = idx == 0
            || !code[..idx].chars().next_back().is_some_and(ident_char);
        if boundary {
            return Some(code[idx + pat.len()..].trim_start());
        }
        from = idx + bare.len();
    }
    None
}

/// `struct Name` header → `Name`.
fn header_name(code: &str, kw: &str) -> Option<String> {
    let rest = after_token(code, kw)?;
    let name: String = rest.chars().take_while(|c| ident_char(*c)).collect();
    if name.is_empty() { None } else { Some(name) }
}

/// The 1-based line on which the block opened at `open_idx` (0-based
/// line, char offset of its `{`) closes.
fn block_end(lines: &[ScanLine], open_idx: usize, open_col: Option<usize>) -> Option<usize> {
    let col = open_col?;
    let mut depth = 0i64;
    for (off, line) in lines[open_idx..].iter().enumerate() {
        let code = if off == 0 { &line.code[col..] } else { &line.code[..] };
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(open_idx + off + 1);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Fields of a struct body: `name: Type,` lines between `open` and `end`.
fn collect_fields(lines: &[ScanLine], open: usize, end: usize) -> Vec<Field> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate().take(end).skip(open) {
        let code = line.code.trim();
        let code = code.strip_prefix("pub ").unwrap_or(code);
        let code = code.strip_prefix("pub(crate) ").unwrap_or(code);
        let Some(colon) = code.find(':') else { continue };
        let name = code[..colon].trim();
        if name.is_empty() || !name.chars().all(ident_char) {
            continue; // not a plain field line (method sig, match arm, …)
        }
        let ty = code[colon + 1..].trim_end_matches(',').trim().to_string();
        if ty.is_empty() {
            continue;
        }
        out.push(Field { name: name.to_string(), ty, line: idx + 1 });
    }
    out
}

pub(crate) fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Appends every `let [mut] <ident>` binding name on this code line.
fn let_bound_names(code: &str, out: &mut Vec<String>) {
    let mut rest = code;
    while let Some(pos) = rest.find("let ") {
        let boundary = pos == 0
            || !ident_char(rest[..pos].chars().next_back().unwrap_or(' '));
        let after = rest[pos + 4..].trim_start().trim_start_matches("mut ").trim_start();
        if boundary {
            let name: String = after.chars().take_while(|c| ident_char(*c)).collect();
            if !name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                out.push(name);
            }
        }
        rest = &rest[pos + 4..];
    }
}

/// Call sites on one code line: every identifier directly followed by
/// `(`, classified by what precedes it.
fn collect_calls(code: &str, line: usize, contained: bool, out: &mut Vec<CallSite>) {
    let bytes: Vec<char> = code.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        if !ident_char(bytes[i]) || bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && ident_char(bytes[i]) {
            i += 1;
        }
        if bytes.get(i) != Some(&'(') {
            continue;
        }
        let name: String = bytes[start..i].iter().collect();
        if KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // `fn name(` is a declaration, not a call (a body that opens on
        // its declaration line would otherwise call itself).
        let before: String = bytes[..start].iter().collect();
        if before.trim_end().ends_with("fn") {
            continue;
        }
        let kind = match (start.checked_sub(1).map(|p| bytes[p]), start.checked_sub(2)) {
            (Some('.'), _) => {
                let recv = receiver_chain(&bytes, start - 1);
                if recv.first().map(String::as_str) == Some("self") && recv.len() == 1 {
                    CallKind::SelfMethod
                } else {
                    CallKind::Method { receiver: recv.last().cloned() }
                }
            }
            (Some(':'), Some(p2)) if bytes[p2] == ':' => {
                // Qualifier: the identifier before the `::`.
                let q_end = start - 2;
                let mut q_start = q_end;
                while q_start > 0 && ident_char(bytes[q_start - 1]) {
                    q_start -= 1;
                }
                let qualifier: String = bytes[q_start..q_end].iter().collect();
                CallKind::Path { qualifier }
            }
            _ => CallKind::Free,
        };
        out.push(CallSite { line, kind, name, contained });
    }
}

/// Walks a receiver chain backwards from the `.` at `dot` (exclusive),
/// returning the dot-separated identifier segments in source order.
/// Balanced `(…)` / `[…]` groups are skipped, so
/// `EVENTS.get_or_init(init).lock()` yields `[EVENTS, get_or_init]` and
/// `self.shards[i].lock()` yields `[self, shards]`. Shared with the lock
/// pass, which matches every segment against the lock registry.
pub(crate) fn receiver_chain(bytes: &[char], dot: usize) -> Vec<String> {
    let mut segments: Vec<String> = Vec::new();
    let mut i = dot; // index of the `.`
    loop {
        // Before the dot: optional balanced group(s), then an identifier.
        let mut j = i;
        while let Some(prev) = j.checked_sub(1).map(|p| bytes[p]) {
            match prev {
                ')' | ']' => {
                    let open = if prev == ')' { '(' } else { '[' };
                    let mut depth = 0i64;
                    let mut k = j;
                    while k > 0 {
                        k -= 1;
                        if bytes[k] == prev {
                            depth += 1;
                        } else if bytes[k] == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    j = k;
                }
                c if ident_char(c) => break,
                _ => return finish(segments),
            }
        }
        let end = j;
        let mut s = end;
        while s > 0 && ident_char(bytes[s - 1]) {
            s -= 1;
        }
        if s == end {
            return finish(segments);
        }
        segments.push(bytes[s..end].iter().collect());
        if s == 0 || bytes[s - 1] != '.' {
            return finish(segments);
        }
        i = s - 1;
    }

    fn finish(mut segments: Vec<String>) -> Vec<String> {
        segments.reverse();
        segments
    }
}

/// Panic tokens: the lexical `no-unwrap-in-lib` set plus indexing.
const PANIC_NEEDLES: [(&str, &str); 7] = [
    (".unwrap()", "`unwrap()`"),
    (".expect(", "`expect()`"),
    (".expect_err(", "`expect_err()`"),
    ("panic!", "`panic!`"),
    ("unreachable!", "`unreachable!`"),
    ("todo!", "`todo!`"),
    ("unimplemented!", "`unimplemented!`"),
];

fn collect_panics(m: &SourceModel, line_no: usize, out: &mut Vec<PanicSite>) {
    let line = &m.lines[line_no - 1];
    if line.in_test {
        return;
    }
    let allowed =
        m.is_allowed("panic-path", line_no) || m.is_allowed("no-unwrap-in-lib", line_no);
    for (needle, label) in PANIC_NEEDLES {
        let hit = if needle.starts_with('.') {
            line.code.contains(needle)
        } else {
            crate::rules::token_matches(&line.code, needle).next().is_some()
        };
        if hit {
            out.push(PanicSite { line: line_no, label: label.to_string(), allowed });
        }
    }
    // Indexing: `x[…]` — `[` directly after an identifier char or a
    // closing bracket. Attribute syntax (`#[…]`), slice types (`[u8; 4]`)
    // and literals (`[a, b]`) all fail the prefix test.
    let chars: Vec<char> = line.code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '['
            && i > 0
            && (ident_char(chars[i - 1]) || chars[i - 1] == ')' || chars[i - 1] == ']')
        {
            out.push(PanicSite {
                line: line_no,
                label: "indexing `[…]`".to_string(),
                allowed,
            });
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_of(path: &str, src: &str) -> Workspace {
        extract(&[SourceModel::scan(path, src)])
    }

    #[test]
    fn items_and_impl_types_are_extracted() {
        let src = "impl Server {\n    pub fn handle(&self) {\n        self.submit();\n    }\n}\nfn free_helper() -> u32 {\n    1\n}\n";
        let ws = ws_of("crates/serve/src/server.rs", src);
        assert_eq!(ws.items.len(), 2);
        assert_eq!(ws.items[0].name, "handle");
        assert_eq!(ws.items[0].self_type.as_deref(), Some("Server"));
        assert_eq!(ws.items[0].body, (2, 4));
        assert_eq!(ws.items[1].name, "free_helper");
        assert_eq!(ws.items[1].self_type, None);
    }

    #[test]
    fn call_sites_are_classified() {
        let src = "fn f(s: &Server) {\n    s.go();\n    self.own();\n    Request::parse(x);\n    helper(1);\n    mac!(arg);\n    self.cache.insert(k, v);\n}\n";
        let ws = ws_of("x.rs", src);
        let calls = &ws.items[0].calls;
        let kinds: Vec<(&str, &CallKind)> =
            calls.iter().map(|c| (c.name.as_str(), &c.kind)).collect();
        assert!(kinds.iter().any(|(n, k)| *n == "go"
            && matches!(k, CallKind::Method { receiver: Some(r) } if r == "s")));
        assert!(kinds.iter().any(|(n, k)| *n == "own" && **k == CallKind::SelfMethod));
        assert!(kinds.iter().any(|(n, k)| *n == "parse"
            && matches!(k, CallKind::Path { qualifier } if qualifier == "Request")));
        assert!(kinds.iter().any(|(n, k)| *n == "helper" && **k == CallKind::Free));
        assert!(!kinds.iter().any(|(n, _)| *n == "mac"));
        assert!(kinds.iter().any(|(n, k)| *n == "insert"
            && matches!(k, CallKind::Method { receiver: Some(r) } if r == "cache")));
    }

    #[test]
    fn catch_unwind_marks_calls_contained() {
        let src = "fn f() {\n    let r = std::panic::catch_unwind(|| {\n        danger();\n    });\n    after();\n}\n";
        let ws = ws_of("x.rs", src);
        let calls = &ws.items[0].calls;
        let danger = calls.iter().find(|c| c.name == "danger").unwrap();
        assert!(danger.contained);
        let after = calls.iter().find(|c| c.name == "after").unwrap();
        assert!(!after.contained);
    }

    #[test]
    fn panic_sites_and_indexing() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n    let x = v[i];\n    let y: [u8; 4] = [0; 4];\n    #[allow(dead_code)]\n    foo.unwrap();\n    x\n}\n";
        let ws = ws_of("x.rs", src);
        let p = &ws.items[0].panics;
        assert!(p.iter().any(|s| s.line == 2 && s.label.contains("indexing")));
        assert!(!p.iter().any(|s| s.line == 3 || s.line == 4));
        assert!(p.iter().any(|s| s.line == 5 && s.label.contains("unwrap")));
    }

    #[test]
    fn struct_fields_and_statics() {
        let src = "pub struct Server {\n    state: Mutex<QueueState>,\n    pub cache: PlanCache,\n}\nstatic EVENTS: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();\n";
        let ws = ws_of("x.rs", src);
        assert_eq!(ws.structs.len(), 1);
        let s = &ws.structs[0];
        assert_eq!(s.name, "Server");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "state");
        assert_eq!(s.fields[0].ty, "Mutex<QueueState>");
        assert_eq!(ws.statics.len(), 1);
        assert_eq!(ws.statics[0].name, "EVENTS");
        assert!(ws.statics[0].ty.starts_with("OnceLock<Mutex<"));
    }

    #[test]
    fn receiver_chains_skip_balanced_groups() {
        let src = "fn f() {\n    EVENTS.get_or_init(Vec::new).lock();\n    self.shards[i].lock();\n}\n";
        let ws = ws_of("x.rs", src);
        let calls = &ws.items[0].calls;
        let l1 = calls.iter().find(|c| c.name == "lock" && c.line == 2).unwrap();
        assert!(matches!(&l1.kind, CallKind::Method { receiver: Some(r) } if r == "get_or_init"));
        let l2 = calls.iter().find(|c| c.name == "lock" && c.line == 3).unwrap();
        assert!(matches!(&l2.kind, CallKind::Method { receiver: Some(r) } if r == "shards"));
    }
}
