//! Hand-rolled Rust token scanner — the front end every rule shares.
//!
//! The scanner makes one pass over a source file and produces, per line,
//! three parallel views plus two bits of derived structure:
//!
//! * **code** — the line with comments stripped and string/char literal
//!   *contents* blanked (the delimiting quotes survive, so `foo("bar")`
//!   scans as `foo("")`). Rules pattern-match on this view only, which is
//!   what keeps `panic!` inside a doc comment or a format string from
//!   tripping `no-unwrap-in-lib`.
//! * **comment** — the comment text of the line (`//`, `///`, `/* */`,
//!   nested block comments included). Allow directives and ordering
//!   justifications are read from here.
//! * **strings** — the contents of every string literal that *closes* on
//!   the line, in order. `counter-catalog-sync` reads metric names from
//!   this view.
//!
//! On top of the lexed views the scanner marks **test regions** (the body
//! of any item annotated `#[cfg(test)]` or `#[test]`, found by brace
//! matching on the code view) and resolves **allow directives**:
//!
//! ```text
//! // analyze:allow(rule-id) -- why this is sound
//! // analyze:allow(rule-a, rule-b)
//! // analyze:allow-file(rule-id) -- whole-file suppression
//! ```
//!
//! A directive on a code line suppresses that line; a directive on its own
//! line suppresses the next statement — including the whole body when the
//! next statement opens a block (`fn`, `impl`, `mod`), which is how a
//! documented-panic constructor is waived once instead of per line.
//!
//! This is a *scanner*, not a parser: it does not build an AST, and the
//! test-region heuristic keys on the literal attribute text. That trade
//! keeps it dependency-free and fast (the whole workspace scans in
//! milliseconds), in the same spirit as `aqo_obs::json`.

/// One scanned source line: the three lexed views plus the test marker.
#[derive(Debug, Default, Clone)]
pub struct ScanLine {
    /// Code view: comments stripped, literal contents blanked.
    pub code: String,
    /// Comment text (line and block comments, concatenated).
    pub comment: String,
    /// Contents of string literals closing on this line.
    pub strings: Vec<String>,
    /// Inside (or opening/closing) a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
}

/// A suppression range produced by an allow directive.
#[derive(Debug, Clone)]
struct AllowRange {
    rule: String,
    /// 1-based inclusive line range.
    start: usize,
    end: usize,
}

/// A scanned source file: per-line views plus resolved allow ranges.
#[derive(Debug)]
pub struct SourceModel {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<ScanLine>,
    allows: Vec<AllowRange>,
}

/// Lexer state across lines.
enum Mode {
    Code,
    LineComment,
    /// Nested depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"` (escapes honoured).
    Str,
    /// Inside `r"…"` / `r#"…"#` with this many hashes.
    RawStr(u32),
}

impl SourceModel {
    /// Scans `text` into a model. `rel_path` is kept verbatim; rules use
    /// it for scoping, so tests can direct a fixture at any rule's scope
    /// by picking the path.
    pub fn scan(rel_path: &str, text: &str) -> SourceModel {
        let mut lines = lex(text);
        mark_test_regions(&mut lines);
        let allows = resolve_allows(&lines);
        SourceModel { rel_path: rel_path.to_string(), lines, allows }
    }

    /// Whether `rule` is suppressed at 1-based `line` by an allow range.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| line >= a.start && line <= a.end && (a.rule == rule || a.rule == "*"))
    }

    /// The justification context for 1-based `line`: its own comment plus
    /// the contiguous comment-only block immediately above it.
    pub fn comment_context(&self, line: usize) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let idx = line - 1;
        let mut up = idx;
        while up > 0 {
            let prev = &self.lines[up - 1];
            if prev.code.trim().is_empty() && !prev.comment.trim().is_empty() {
                parts.push(prev.comment.as_str());
                up -= 1;
            } else {
                break;
            }
        }
        parts.reverse();
        if let Some(own) = self.lines.get(idx) {
            parts.push(own.comment.as_str());
        }
        parts.join("\n")
    }
}

/// First pass: split the raw text into per-line code/comment/string views.
fn lex(text: &str) -> Vec<ScanLine> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<ScanLine> = Vec::new();
    let mut cur = ScanLine::default();
    let mut cur_string = String::new();
    let mut mode = Mode::Code;
    let mut i = 0usize;

    macro_rules! newline {
        () => {{
            lines.push(std::mem::take(&mut cur));
            if let Mode::LineComment = mode {
                mode = Mode::Code;
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::Str | Mode::RawStr(_)) {
                cur_string.push('\n');
            }
            newline!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                // A string/byte/raw prefix is only a prefix at a token
                // boundary: in `var"s"` rustc lexes the identifier `var`
                // and then a *normal* string — the trailing `r` must not
                // open raw-string mode (same for `abr"…"` and `b"…"`).
                let at_boundary = i == 0 || !is_ident_char(chars[i - 1]);
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if let Some(consumed) =
                    raw_string_prefix(&chars[i..]).filter(|_| at_boundary)
                {
                    // r"…", r#"…"#, br"…" — enter raw-string mode.
                    let hashes = consumed - 1 - usize::from(chars[i] == 'b') - 1;
                    cur.code.push('"');
                    cur_string.clear();
                    mode = Mode::RawStr(hashes as u32);
                    i += consumed;
                } else if c == '"' || (c == 'b' && next == Some('"') && at_boundary) {
                    if c == 'b' {
                        i += 1;
                    }
                    cur.code.push('"');
                    cur_string.clear();
                    mode = Mode::Str;
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime: a backslash or a
                    // single-char-then-quote pattern means literal.
                    let is_char_lit = matches!(
                        (next, chars.get(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char_lit {
                        cur.code.push('\'');
                        i += 1;
                        // Skip contents up to the closing quote. Char
                        // literals never span lines; stopping at `\n`
                        // keeps line counting aligned on malformed input.
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            if chars[i] == '\\' && chars.get(i + 1).is_some_and(|&n| n != '\n') {
                                i += 1;
                            }
                            i += 1;
                        }
                        if chars.get(i) == Some(&'\'') {
                            cur.code.push('\'');
                            i += 1;
                        }
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    mode = if depth == 1 { Mode::Code } else { Mode::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    cur_string.push(c);
                    match chars.get(i + 1) {
                        // `\` + newline is a continuation: let the newline
                        // go through the normal handler so line counting
                        // stays aligned.
                        Some('\n') | None => i += 1,
                        Some(&esc) => {
                            cur_string.push(esc);
                            i += 2;
                        }
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    cur.strings.push(std::mem::take(&mut cur_string));
                    mode = Mode::Code;
                    i += 1;
                } else {
                    cur_string.push(c);
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars[i + 1..], hashes) {
                    cur.code.push('"');
                    cur.strings.push(std::mem::take(&mut cur_string));
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur_string.push(c);
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// Whether `c` can appear inside an identifier (used for token-boundary
/// checks when deciding if `r"`/`b"` opens a prefixed string literal).
fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// If `rest` starts a raw string (`r"`, `r#"`, `br##"` …), the number of
/// chars in the opening delimiter; `None` otherwise.
fn raw_string_prefix(rest: &[char]) -> Option<usize> {
    let mut i = 0usize;
    if rest.first() == Some(&'b') {
        i += 1;
    }
    if rest.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    while rest.get(i) == Some(&'#') {
        i += 1;
    }
    if rest.get(i) == Some(&'"') {
        Some(i + 1)
    } else {
        None
    }
}

/// Whether the chars after a `"` close a raw string with `hashes` hashes.
fn closes_raw(rest: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| rest.get(k) == Some(&'#'))
}

/// Second pass: mark the body of `#[cfg(test)]` / `#[test]` items by brace
/// matching on the code view.
fn mark_test_regions(lines: &mut [ScanLine]) {
    let mut depth = 0usize;
    let mut pending: Option<usize> = None; // depth at the attribute
    let mut test_stack: Vec<usize> = Vec::new();

    for line in lines.iter_mut() {
        let started_in_test = !test_stack.is_empty();
        let compact: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        let has_attr = compact.contains("#[test]") || compact.contains("#[cfg(test)]");
        if has_attr {
            pending = Some(depth);
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending.is_some() {
                        test_stack.push(depth);
                        pending = None;
                    }
                }
                '}' => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // `#[cfg(test)] use …;` — attribute spent on a
                // braceless item.
                ';' if pending == Some(depth) => pending = None,
                _ => {}
            }
        }
        line.in_test = started_in_test || !test_stack.is_empty() || has_attr;
    }
}

/// Third pass: resolve `analyze:allow(…)` directives into line ranges.
fn resolve_allows(lines: &[ScanLine]) -> Vec<AllowRange> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        for (rules, file_scope) in parse_directives(&line.comment) {
            for rule in rules {
                if file_scope {
                    out.push(AllowRange { rule, start: 1, end: lines.len() });
                } else if !line.code.trim().is_empty() {
                    out.push(AllowRange { rule, start: idx + 1, end: idx + 1 });
                } else {
                    let (start, end) = statement_extent(lines, idx + 1);
                    out.push(AllowRange { rule, start, end });
                }
            }
        }
    }
    out
}

/// Parses every `analyze:allow(…)` / `analyze:allow-file(…)` in a comment;
/// returns `(rules, is_file_scope)` per directive.
fn parse_directives(comment: &str) -> Vec<(Vec<String>, bool)> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("analyze:allow") {
        rest = &rest[pos + "analyze:allow".len()..];
        let file_scope = rest.starts_with("-file");
        let after = if file_scope { &rest["-file".len()..] } else { rest };
        if let Some(open) = after.find('(') {
            if let Some(close) = after[open..].find(')') {
                let rules = after[open + 1..open + close]
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                out.push((rules, file_scope));
                rest = &after[open + close..];
                continue;
            }
        }
        break;
    }
    out
}

/// The extent of the statement beginning at 1-based line `from`: through
/// the matching close brace when it opens a block, else through the
/// terminating `;` (or the single line). Shared with the symbol layer,
/// which uses it to scope `catch_unwind` containment.
pub(crate) fn statement_extent(lines: &[ScanLine], from: usize) -> (usize, usize) {
    // Skip to the next line that has code.
    let mut start = from;
    while start <= lines.len() && lines[start - 1].code.trim().is_empty() {
        start += 1;
    }
    if start > lines.len() {
        return (from, from);
    }
    let mut depth = 0i64;
    let mut opened = false;
    for (off, line) in lines[start - 1..].iter().enumerate() {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                ';' if !opened && depth == 0 => return (start, start + off),
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return (start, start + off);
        }
    }
    (start, lines.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_the_code_view() {
        let m = SourceModel::scan(
            "x.rs",
            "let x = \"panic! inside\"; // unwrap() in comment\nlet y = 1; /* expect( */\n",
        );
        assert!(!m.lines[0].code.contains("panic!"));
        assert!(!m.lines[0].code.contains("unwrap"));
        assert_eq!(m.lines[0].strings, vec!["panic! inside".to_string()]);
        assert!(m.lines[0].comment.contains("unwrap()"));
        assert!(!m.lines[1].code.contains("expect"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let m = SourceModel::scan(
            "x.rs",
            "let a = r#\"quote \" panic!\"#;\nlet b = '\\n'; let l: &'static str = \"x\";\n",
        );
        assert_eq!(m.lines[0].strings, vec!["quote \" panic!".to_string()]);
        assert!(!m.lines[0].code.contains("panic"));
        // Lifetime survives as code; char contents are blanked.
        assert!(m.lines[1].code.contains("'static"));
        assert_eq!(m.lines[1].strings, vec!["x".to_string()]);
    }

    #[test]
    fn nested_block_comments() {
        let m = SourceModel::scan("x.rs", "/* a /* b */ still comment */ let x = 1;\n");
        assert!(m.lines[0].code.contains("let x = 1;"));
        assert!(m.lines[0].comment.contains("still comment"));
    }

    #[test]
    fn nested_block_comments_span_lines_and_ignore_quotes() {
        // Quotes have no meaning inside a comment, but `/*` still nests
        // (rustc semantics) — everything here is one comment.
        let src = "/* \"/*\" */ let eaten = 1;\n/* /* deep */ still */ let eaten2 = 2;\n*/ let code = 3;\n";
        let m = SourceModel::scan("x.rs", src);
        assert!(m.lines[0].code.trim().is_empty(), "{:?}", m.lines[0]);
        assert!(m.lines[1].code.trim().is_empty(), "{:?}", m.lines[1]);
        assert!(m.lines[2].code.contains("let code = 3;"), "{:?}", m.lines[2]);
    }

    #[test]
    fn multiline_raw_strings_keep_code_and_comment_views_clean() {
        let src = "let s = r##\"line \"# one\n// not a comment\n*/ not a close\n\"##;\nlet after = 1;\n";
        let m = SourceModel::scan("x.rs", src);
        assert!(m.lines[1].comment.is_empty());
        assert!(m.lines[1].code.trim().is_empty());
        assert!(m.lines[2].code.trim().is_empty());
        assert_eq!(
            m.lines[3].strings,
            vec!["line \"# one\n// not a comment\n*/ not a close\n".to_string()]
        );
        assert!(m.lines[4].code.contains("let after"));
    }

    #[test]
    fn raw_prefix_needs_a_token_boundary() {
        // `var"s"` is the identifier `var` followed by a *normal* string;
        // the trailing `r` must not be taken as a raw-string prefix.
        let m = SourceModel::scan("x.rs", "mac!(var\"s\"); let x = 1;\n");
        assert!(m.lines[0].code.contains("var\"\""), "{:?}", m.lines[0]);
        assert!(m.lines[0].code.contains("let x = 1;"));
        assert_eq!(m.lines[0].strings, vec!["s".to_string()]);
        // Same for `abr"…"` (`abr` + string) vs a real `br"…"`.
        let m = SourceModel::scan("x.rs", "mac!(abr\"t\"); let y = br\"raw\";\n");
        assert!(m.lines[0].code.contains("abr\"\""), "{:?}", m.lines[0]);
        assert_eq!(m.lines[0].strings, vec!["t".to_string(), "raw".to_string()]);
    }

    #[test]
    fn unterminated_char_literal_does_not_eat_lines() {
        // `'\` at end of line is malformed; the scanner must not skip the
        // newline looking for a closing quote.
        let m = SourceModel::scan("x.rs", "mac!('\\\nlet next = 1;\n");
        assert_eq!(m.lines.len(), 3); // two source lines + trailing empty
        assert!(m.lines[1].code.contains("let next = 1;"), "{:?}", m.lines[1]);
    }

    #[test]
    fn multiline_strings_close_on_the_last_line() {
        let m = SourceModel::scan("x.rs", "let s = \"line1\nline2\";\nlet t = 3;\n");
        assert!(m.lines[0].strings.is_empty());
        assert_eq!(m.lines[1].strings, vec!["line1\nline2".to_string()]);
        assert!(m.lines[2].code.contains("let t"));
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn real() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn real2() {}\n";
        let m = SourceModel::scan("x.rs", src);
        assert!(!m.lines[0].in_test);
        assert!(m.lines[1].in_test); // attribute line
        assert!(m.lines[2].in_test);
        assert!(m.lines[3].in_test);
        assert!(m.lines[4].in_test);
        assert!(!m.lines[5].in_test);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let m = SourceModel::scan("x.rs", "#[cfg(not(test))]\nfn shipped() {}\n");
        assert!(!m.lines[1].in_test);
    }

    #[test]
    fn allow_on_code_line_covers_that_line_only() {
        let src = "let a = x.unwrap(); // analyze:allow(no-unwrap-in-lib) -- checked above\nlet b = y.unwrap();\n";
        let m = SourceModel::scan("x.rs", src);
        assert!(m.is_allowed("no-unwrap-in-lib", 1));
        assert!(!m.is_allowed("no-unwrap-in-lib", 2));
        assert!(!m.is_allowed("other-rule", 1));
    }

    #[test]
    fn allow_on_own_line_covers_next_block() {
        let src = "// analyze:allow(no-unwrap-in-lib) -- documented panic\nfn f() {\n    x.unwrap();\n}\nfn g() { y.unwrap(); }\n";
        let m = SourceModel::scan("x.rs", src);
        assert!(m.is_allowed("no-unwrap-in-lib", 3));
        assert!(!m.is_allowed("no-unwrap-in-lib", 5));
    }

    #[test]
    fn allow_file_covers_everything() {
        let src = "// analyze:allow-file(no-float-in-exact) -- log-domain bridge\nfn f() {}\nfn g() {}\n";
        let m = SourceModel::scan("x.rs", src);
        assert!(m.is_allowed("no-float-in-exact", 3));
    }

    #[test]
    fn comment_context_walks_up() {
        let src = "fn f() {\n    // ordering: counters are independent\n    // and readers join first.\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        let m = SourceModel::scan("x.rs", src);
        let ctx = m.comment_context(4);
        assert!(ctx.contains("ordering:"));
        assert!(ctx.contains("join first"));
    }
}
