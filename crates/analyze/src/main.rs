//! Standalone entry point: `cargo run -p aqo-analyze -- [flags]`.
//! Identical behavior to the `aqo analyze` subcommand.

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::ExitCode::from(aqo_analyze::cli_main(&args) as u8)
}
