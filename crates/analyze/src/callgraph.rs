//! Workspace call graph: name-resolution over the symbol layer plus the
//! **panic-path** reachability rule.
//!
//! Resolution is a heuristic, tuned to over-approximate (docs/ANALYSIS.md
//! lists the trade-offs):
//!
//! * `self.foo(…)` resolves to `foo` on the caller's impl type only.
//! * `recv.foo(…)` resolves via the receiver's field type when the last
//!   receiver segment is a known struct field; otherwise to *every*
//!   workspace method named `foo` — except names on the [`UBIQUITOUS`]
//!   blocklist (std-colliding names like `len`/`push`/`clone`), which
//!   would connect everything to everything.
//! * `Qual::foo(…)` resolves to the associated function when `Qual` is a
//!   known impl type, else to free functions named `foo` (module path).
//! * `foo(…)` resolves to free functions named `foo`.

use crate::rules::{Finding, Severity};
use crate::symbols::{CallKind, Item, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names too common in std to use for cross-type matching: an
/// unresolvable `.len()` edge to some workspace `len` would wire the
/// whole graph together. Receiver-field-typed calls bypass this list.
const UBIQUITOUS: [&str; 53] = [
    "len", "get", "get_mut", "insert", "push", "pop", "push_back", "pop_front", "lock",
    "read", "write", "flush", "clone", "fmt", "next", "iter", "iter_mut", "load", "store",
    "wait", "join", "clear", "is_empty", "contains", "contains_key", "remove", "new",
    "default", "from", "into", "to_string", "as_str", "as_bytes", "cmp", "eq", "hash",
    "drop", "take", "set", "min", "max", "count",
    // std I/O trait methods: `stdin.lock().read_line(…)` must not edge
    // to a workspace type's same-named wrapper.
    "read_line", "write_all", "write_fmt", "read_to_end", "read_exact", "read_until",
    "recv", "recv_timeout", "send", "accept", "connect",
];

/// A resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Index of the callee in `ws.items`.
    pub callee: usize,
    /// 1-based call-site line in the caller's file.
    pub line: usize,
    /// Inside `catch_unwind` — panic reachability stops, lock analysis
    /// does not.
    pub contained: bool,
}

/// The resolved workspace call graph.
pub struct CallGraph<'a> {
    /// The symbol layer the graph was resolved against.
    pub ws: &'a Workspace,
    /// Outgoing edges per item (indices into `ws.items`).
    pub edges: Vec<Vec<Edge>>,
}

impl<'a> CallGraph<'a> {
    /// Resolves every call site in `ws` to zero or more edges.
    pub fn build(ws: &'a Workspace) -> CallGraph<'a> {
        // Indices.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut assoc: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, it) in ws.items.iter().enumerate() {
            match &it.self_type {
                Some(ty) => {
                    methods.entry(it.name.as_str()).or_default().push(i);
                    assoc.entry((ty.as_str(), it.name.as_str())).or_default().push(i);
                }
                None => free.entry(it.name.as_str()).or_default().push(i),
            }
        }
        // Field name → unique type's last path segment, for
        // receiver-directed method resolution. Ambiguous names drop out.
        let mut field_types: BTreeMap<&str, Option<String>> = BTreeMap::new();
        for s in &ws.structs {
            for f in &s.fields {
                let ty = type_last_segment(&f.ty);
                match field_types.entry(f.name.as_str()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(Some(ty));
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        if e.get().as_deref() != Some(ty.as_str()) {
                            e.insert(None);
                        }
                    }
                }
            }
        }

        // Method name → unique returned type, with guard wrappers
        // unwrapped (`MutexGuard<'_, Shard>` → `Shard`), so
        // `self.shard(h).lookup(…)` resolves on `Shard`, not by name.
        let mut return_types: BTreeMap<&str, Option<String>> = BTreeMap::new();
        for it in &ws.items {
            let Some(ret) = it.signature.split("->").nth(1) else { continue };
            let ret = ret.trim().trim_end_matches('{').trim();
            let ty = match ret.find("Guard<") {
                Some(pos) => {
                    let inner = ret[pos..]
                        .trim_start_matches(|c| c != '<')
                        .trim_start_matches('<')
                        .trim_end_matches('>');
                    type_last_segment(inner.rsplit(',').next().unwrap_or(inner))
                }
                None => type_last_segment(ret),
            };
            match return_types.entry(it.name.as_str()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(Some(ty));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if e.get().as_deref() != Some(ty.as_str()) {
                        e.insert(None);
                    }
                }
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); ws.items.len()];
        for (i, it) in ws.items.iter().enumerate() {
            // Name-only fallbacks (unqualified free calls, methods on
            // untyped receivers) stay within the caller's crate:
            // cross-crate calls are in practice qualified or go through
            // typed fields, and a workspace-wide name match would wire
            // `run`/`build` between unrelated crates.
            let same_crate =
                |targets: Vec<usize>| -> Vec<usize> {
                    targets
                        .into_iter()
                        .filter(|&t| crate_of(&ws.items[t].file) == crate_of(&it.file))
                        .collect()
                };
            for call in &it.calls {
                let targets: Vec<usize> = match &call.kind {
                    CallKind::SelfMethod => {
                        let ty = it.self_type.as_deref().unwrap_or("");
                        assoc.get(&(ty, call.name.as_str())).cloned().unwrap_or_default()
                    }
                    CallKind::Method { receiver } => {
                        let by_field = receiver
                            .as_deref()
                            .and_then(|r| field_types.get(r).or_else(|| return_types.get(r)))
                            .and_then(|t| t.as_deref())
                            .and_then(|ty| assoc.get(&(ty, call.name.as_str())));
                        match by_field {
                            Some(t) => t.clone(),
                            None if UBIQUITOUS.contains(&call.name.as_str()) => Vec::new(),
                            None => same_crate(
                                methods.get(call.name.as_str()).cloned().unwrap_or_default(),
                            ),
                        }
                    }
                    CallKind::Path { qualifier } => {
                        match assoc.get(&(qualifier.as_str(), call.name.as_str())) {
                            Some(t) => t.clone(),
                            // A qualifier that names a known impl type but
                            // lacks this associated fn stays unresolved
                            // (std type or constructor); otherwise treat
                            // the qualifier as a module path.
                            None if ws.items.iter().any(|o| {
                                o.self_type.as_deref() == Some(qualifier.as_str())
                            }) =>
                            {
                                Vec::new()
                            }
                            None => same_crate(
                                free.get(call.name.as_str()).cloned().unwrap_or_default(),
                            ),
                        }
                    }
                    CallKind::Free => same_crate(
                        free.get(call.name.as_str()).cloned().unwrap_or_default(),
                    ),
                };
                for t in targets {
                    edges[i].push(Edge { callee: t, line: call.line, contained: call.contained });
                }
            }
        }
        CallGraph { ws, edges }
    }

    /// Display label for an item: `file::fn` with the impl type folded in.
    pub fn label(&self, idx: usize) -> String {
        let it = &self.ws.items[idx];
        let stem = it.file.rsplit('/').next().unwrap_or(&it.file);
        match &it.self_type {
            Some(ty) => format!("{stem}:{}::{}", ty, it.name),
            None => format!("{stem}:{}", it.name),
        }
    }
}

/// Serve entry points by exact name; any `handle*` in `crates/serve/src/`
/// also counts.
const ENTRY_FNS: [&str; 13] = [
    "run", "run_stdio", "serve_connection", "worker_loop", "intake_line", "submit",
    "evict_connection", "status_reply", "metrics_reply", "next_line", "write_reply",
    "sampler_loop", "begin_shutdown",
];

fn is_entry(it: &Item) -> bool {
    // chaos.rs / loadgen.rs drive the server from the *outside* (fault
    // campaigns, load harnesses); a panic there aborts a campaign, not a
    // live connection, so they are not hot-path entry points.
    it.file.starts_with("crates/serve/src/")
        && !it.file.ends_with("/chaos.rs")
        && !it.file.ends_with("/loadgen.rs")
        && !it.is_test
        && it.body.0 != 0
        && (ENTRY_FNS.contains(&it.name.as_str()) || it.name.starts_with("handle"))
}

/// **panic-path** — no serve entry point may reach a panic token outside
/// test code or an allow span. Traversal stops at `catch_unwind`
/// containment. One finding per panic site, witnessed by the shortest
/// entry→site call chain.
pub fn panic_path(graph: &CallGraph<'_>) -> Vec<Finding> {
    const RULE: &str = "panic-path";
    let items = &graph.ws.items;
    let mut findings: BTreeMap<(String, usize), Finding> = BTreeMap::new();

    for (entry, it) in items.iter().enumerate() {
        if !is_entry(it) {
            continue;
        }
        // BFS, recording predecessor for chain reconstruction.
        let mut pred: Vec<Option<usize>> = vec![None; items.len()];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(entry);
        queue.push_back(entry);
        while let Some(cur) = queue.pop_front() {
            for e in &graph.edges[cur] {
                if e.contained || items[e.callee].is_test || seen.contains(&e.callee) {
                    continue;
                }
                seen.insert(e.callee);
                pred[e.callee] = Some(cur);
                queue.push_back(e.callee);
            }
        }
        for &node in &seen {
            let target = &items[node];
            for p in &target.panics {
                if p.allowed {
                    continue;
                }
                let key = (target.file.clone(), p.line);
                let mut chain: Vec<String> = Vec::new();
                let mut cur = node;
                chain.push(graph.label(cur));
                while let Some(prev) = pred[cur] {
                    chain.push(graph.label(prev));
                    cur = prev;
                }
                chain.reverse();
                let better = findings
                    .get(&key)
                    .is_none_or(|f| chain.len() < f.chain.len());
                if better {
                    findings.insert(
                        key,
                        Finding {
                            rule: RULE,
                            severity: Severity::Error,
                            path: target.file.clone(),
                            line: p.line,
                            message: format!(
                                "{} in `{}` is reachable from serve entry `{}`; return an \
                                 error, contain with catch_unwind, or add \
                                 `// analyze:allow({RULE}) -- <why>`",
                                p.label,
                                target.name,
                                items[entry].name
                            ),
                            chain,
                            cycle: Vec::new(),
                        },
                    );
                }
            }
        }
    }
    findings.into_values().collect()
}

/// Crate-identifying path prefix: `crates/serve/src/x.rs` → `crates/serve`.
pub(crate) fn crate_of(file: &str) -> &str {
    match file.match_indices('/').nth(1).map(|(i, _)| i) {
        Some(i) => &file[..i],
        None => file,
    }
}

/// Last path segment of a type expression: `aqo_core::Bitset` → `Bitset`,
/// `Mutex<QueueState>` → `Mutex`, `&'a PlanCache` → `PlanCache`.
fn type_last_segment(ty: &str) -> String {
    let head = ty.split('<').next().unwrap_or(ty);
    let head = head.trim_start_matches(['&', ' ']).trim();
    let head = head.strip_prefix("'").map_or(head, |r| {
        r.split_once(' ').map(|(_, t)| t).unwrap_or(r)
    });
    let head = head.trim_start_matches("mut ").trim();
    head.rsplit("::").next().unwrap_or(head).trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::SourceModel;
    use crate::symbols;

    fn graph_findings(src: &str) -> Vec<Finding> {
        let models = vec![SourceModel::scan("crates/serve/src/server.rs", src)];
        let ws = Box::leak(Box::new(symbols::extract(&models)));
        panic_path(&CallGraph::build(ws))
    }

    #[test]
    fn reachable_panic_is_found_with_chain() {
        let src = "impl Server {\n    pub fn handle(&self) {\n        self.step();\n    }\n    fn step(&self) {\n        deep();\n    }\n}\nfn deep() {\n    x.unwrap();\n}\n";
        let hits = graph_findings(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 10);
        assert_eq!(hits[0].chain.len(), 3);
        assert!(hits[0].chain[0].contains("handle"));
        assert!(hits[0].chain[2].contains("deep"));
    }

    #[test]
    fn catch_unwind_and_allows_stop_the_walk() {
        let src = "impl Server {\n    pub fn handle(&self) {\n        let r = std::panic::catch_unwind(|| contained());\n        // analyze:allow(panic-path) -- slice bounds proven by cut < len\n        let b = &line[..cut];\n    }\n}\nfn contained() {\n    x.unwrap();\n}\n";
        let hits = graph_findings(src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn ubiquitous_names_do_not_wire_the_graph() {
        // `.len()` on an unknown receiver must not resolve to the
        // workspace `len` method even though one exists.
        let src = "impl Server {\n    pub fn handle(&self, v: &Thing) {\n        v.len();\n    }\n}\nstruct Other;\nimpl Other {\n    fn len(&self) -> usize {\n        self.raw.unwrap()\n    }\n}\n";
        let hits = graph_findings(src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn field_typed_receiver_bypasses_the_blocklist() {
        let src = "struct Server {\n    cache: PlanCache,\n}\nimpl Server {\n    pub fn handle(&self) {\n        self.cache.insert(1);\n    }\n}\nstruct PlanCache;\nimpl PlanCache {\n    fn insert(&self, k: u64) {\n        self.slots[k].set(1);\n    }\n}\n";
        let hits = graph_findings(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("indexing"));
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use crate::scanner::SourceModel;
    use crate::symbols;

    #[test]
    #[ignore]
    fn dump_real_edges() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut models = Vec::new();
        for f in ["crates/serve/src/server.rs", "crates/serve/src/chaos.rs", "crates/serve/src/client.rs", "crates/serve/src/loadgen.rs", "crates/serve/src/snapshot.rs"] {
            let text = std::fs::read_to_string(root.join(f)).unwrap();
            models.push(SourceModel::scan(f, &text));
        }
        let ws = symbols::extract(&models);
        let g = CallGraph::build(&ws);
        for (i, it) in ws.items.iter().enumerate() {
            if it.name == "run" && it.file.ends_with("server.rs") {
                println!("item {} {} body {:?}", g.label(i), it.file, it.body);
                for e in &g.edges[i] {
                    println!("  edge line {} -> {}", e.line, g.label(e.callee));
                }
                for c in &it.calls {
                    if c.name == "run" { println!("  rawcall line {} {:?}", c.line, c.kind); }
                }
            }
        }
    }
}
