//! Lock passes: **lock-order** (nested-acquisition cycles) and
//! **blocking-under-lock**.
//!
//! The model, in order of application:
//!
//! 1. **Registry** — every struct field and static whose type mentions
//!    `Mutex<`/`RwLock<` becomes a lock, labelled `Struct.field` or
//!    `NAME`. A `Vec<Mutex<…>>` (cache shards) is one label: the pass
//!    cannot tell shard *i* from shard *j*, so two simultaneous shard
//!    guards count as a self-nesting — which is exactly the hazard.
//! 2. **Helpers** — a fn whose signature returns a `…Guard` transfers
//!    its acquisition to the caller (`lock_state()`, `events()`); a fn
//!    returning `&Mutex<…>` (`shard()`) names a lock that the caller's
//!    `.lock()` then acquires.
//! 3. **Liveness** — a `let`-bound guard lives to the end of its
//!    enclosing brace block or an explicit `drop(g)`; a temporary lives
//!    to the end of its statement. Granularity is the line.
//! 4. **Edges** — acquiring `B` while `A` is live adds `A → B`; calling
//!    `f` while `A` is live adds `A → x` for every lock `x` in `f`'s
//!    transitive acquisition set (`catch_unwind` does *not* stop this —
//!    catching a panic releases no locks). Any cycle is a finding with
//!    the witness cycle printed; an edge is suppressed only by
//!    `analyze:allow(lock-order)` at its witness line.
//! 5. **Blocking** — a blocking token (`write_all`/`flush`/`read`/
//!    `sleep`/`recv`/…) on a line with a live guard, or a call one level
//!    deep into a fn that blocks, is a `blocking-under-lock` finding.
//!    `Condvar::wait*` is exempt: it releases the lock.

use crate::callgraph::{crate_of, CallGraph};
use crate::rules::{token_matches, Finding, Severity};
use crate::scanner::{self, SourceModel};
use crate::symbols::{ident_char, receiver_chain, CallKind, CallSite};
use std::collections::{BTreeMap, BTreeSet};

/// Blocking method calls (`.tok(` form). `Condvar::wait`/`wait_timeout`
/// are deliberately absent.
const BLOCKING_METHODS: [&str; 15] = [
    "write_all", "write_fmt", "write", "flush", "read", "read_line", "read_to_end",
    "read_exact", "read_until", "recv", "recv_timeout", "accept", "connect", "sync_all",
    "sync_data",
];
/// Blocking free/path calls (`tok(` form).
const BLOCKING_FREE: [&str; 1] = ["sleep"];

#[derive(Debug)]
struct LockRegistry {
    /// `(crate prefix, field-or-static name)` → label. Crate-scoped so
    /// same-named statics in different crates (two `REGISTRY`s) never
    /// resolve to each other's lock.
    by_name: BTreeMap<(String, String), String>,
    /// Label → declaration site.
    decl: BTreeMap<String, (String, usize)>,
    /// Labels backed by `RwLock` (acquired via `.read()`/`.write()`).
    rwlocks: BTreeSet<String>,
}

impl LockRegistry {
    /// Resolves a receiver-chain name within the caller's crate.
    fn resolve(&self, krate: &str, name: &str) -> Option<&String> {
        self.by_name.get(&(krate.to_string(), name.to_string()))
    }
}

/// `crates/obs` → `obs`: the short crate stem used to qualify static
/// labels (`obs::REGISTRY`).
fn crate_stem(krate: &str) -> &str {
    krate.rsplit('/').next().unwrap_or(krate)
}

fn build_registry(graph: &CallGraph<'_>) -> LockRegistry {
    let mut reg = LockRegistry {
        by_name: BTreeMap::new(),
        decl: BTreeMap::new(),
        rwlocks: BTreeSet::new(),
    };
    for s in &graph.ws.structs {
        for f in &s.fields {
            let is_mutex = f.ty.contains("Mutex<");
            let is_rw = f.ty.contains("RwLock<");
            if !is_mutex && !is_rw {
                continue;
            }
            let label = format!("{}.{}", s.name, f.name);
            reg.by_name.insert((crate_of(&s.file).to_string(), f.name.clone()), label.clone());
            reg.decl.insert(label.clone(), (s.file.clone(), f.line));
            if is_rw {
                reg.rwlocks.insert(label);
            }
        }
    }
    for st in &graph.ws.statics {
        let is_mutex = st.ty.contains("Mutex<");
        let is_rw = st.ty.contains("RwLock<");
        if !is_mutex && !is_rw {
            continue;
        }
        let krate = crate_of(&st.file).to_string();
        let label = format!("{}::{}", crate_stem(&krate), st.name);
        reg.by_name.insert((krate, st.name.clone()), label.clone());
        reg.decl.insert(label.clone(), (st.file.clone(), st.line));
        if is_rw {
            reg.rwlocks.insert(label);
        }
    }
    reg
}

/// A directed nesting edge with its witness.
#[derive(Debug, Clone)]
struct LockEdge {
    from: String,
    to: String,
    file: String,
    line: usize,
    /// Call chain when the edge came from propagation (`[caller, callee]`).
    chain: Vec<String>,
}

/// Both lock rules in one walk (they share the liveness model).
pub fn lock_rules(
    graph: &CallGraph<'_>,
    models: &[SourceModel],
    analysis_doc: Option<&str>,
) -> Vec<Finding> {
    let reg = build_registry(graph);
    let items = &graph.ws.items;
    let model_of: BTreeMap<&str, &SourceModel> =
        models.iter().map(|m| (m.rel_path.as_str(), m)).collect();

    // Helper maps: crate → item name → lock label. Crate-scoped like the
    // registry: two crates may each have a private `registry()` helper.
    let mut guard_helpers: BTreeMap<&str, BTreeMap<&str, String>> = BTreeMap::new();
    let mut mutex_ref_helpers: BTreeMap<&str, BTreeMap<&str, String>> = BTreeMap::new();
    for it in items.iter() {
        if it.body.0 == 0 || it.is_test {
            continue;
        }
        let ret = it.signature.split("->").nth(1).unwrap_or("");
        let Some(m) = model_of.get(it.file.as_str()) else { continue };
        let krate = crate_of(&it.file);
        let body_label = (it.body.0..=it.body.1)
            .filter_map(|ln| {
                first_lock_name_on(&m.lines[ln - 1].code, krate, &reg).map(|l| l.to_string())
            })
            .next();
        if ret.contains("Guard") {
            if let Some(label) = body_label.clone() {
                guard_helpers.entry(krate).or_default().insert(it.name.as_str(), label);
            }
        } else if ret.contains("Mutex<") || ret.contains("RwLock<") {
            if let Some(label) = body_label {
                mutex_ref_helpers.entry(krate).or_default().insert(it.name.as_str(), label);
            }
        }
    }
    let empty: BTreeMap<&str, String> = BTreeMap::new();
    let guards_in = |krate: &str| guard_helpers.get(krate).unwrap_or(&empty);
    let mutex_refs_in = |krate: &str| mutex_ref_helpers.get(krate).unwrap_or(&empty);

    // Direct acquisition labels per item (for transitive propagation) and
    // first unallowed blocking site per item (for depth-1 blocking).
    let mut direct_locks: Vec<BTreeSet<String>> = Vec::with_capacity(items.len());
    let mut direct_blocking: Vec<Option<(usize, &'static str)>> = Vec::with_capacity(items.len());
    for it in items.iter() {
        let mut locks = BTreeSet::new();
        let mut blocking = None;
        if it.body.0 != 0 && !it.is_test {
            if let Some(m) = model_of.get(it.file.as_str()) {
                let krate = crate_of(&it.file);
                for ln in it.body.0..=it.body.1 {
                    let code = &m.lines[ln - 1].code;
                    for (label, _) in acquisitions_on(code, krate, &reg, mutex_refs_in(krate)) {
                        locks.insert(label);
                    }
                    if blocking.is_none()
                        && !m.is_allowed("blocking-under-lock", ln)
                        && !m.lines[ln - 1].in_test
                    {
                        if let Some(tok) = blocking_token_on(code, krate, &reg) {
                            blocking = Some((ln, tok));
                        }
                    }
                }
                for c in &it.calls {
                    if !helper_call(c) {
                        continue;
                    }
                    if let Some(label) = guards_in(krate).get(c.name.as_str()) {
                        locks.insert(label.clone());
                    }
                }
            }
        }
        direct_locks.push(locks);
        direct_blocking.push(blocking);
    }

    // Transitive acquisition sets: fixpoint over call edges (contained
    // calls included — a caught panic releases no locks).
    let mut trans = direct_locks.clone();
    loop {
        let mut changed = false;
        for i in 0..items.len() {
            for e in &graph.edges[i] {
                let add: Vec<String> = trans[e.callee]
                    .iter()
                    .filter(|l| !trans[i].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    trans[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Per-item liveness walk.
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for (i, it) in items.iter().enumerate() {
        if it.body.0 == 0 || it.is_test {
            continue;
        }
        let Some(m) = model_of.get(it.file.as_str()) else { continue };
        let krate = crate_of(&it.file);
        let depth_before = depths(m);
        // (label, last live line)
        let mut live: Vec<(String, usize)> = Vec::new();
        for ln in it.body.0..=it.body.1 {
            live.retain(|&(_, end)| end >= ln);
            let line = &m.lines[ln - 1];
            if line.in_test {
                continue;
            }
            let code = &line.code;

            // Acquisitions: direct lock calls + guard-returning helpers.
            let mut acquired: Vec<String> = acquisitions_on(code, krate, &reg, mutex_refs_in(krate))
                .into_iter()
                .map(|(l, _)| l)
                .collect();
            for c in it.calls.iter().filter(|c| c.line == ln && helper_call(c)) {
                if let Some(label) = guards_in(krate).get(c.name.as_str()) {
                    acquired.push(label.clone());
                }
            }
            for label in acquired {
                if !m.is_allowed("lock-order", ln) {
                    for (held, _) in &live {
                        edges.push(LockEdge {
                            from: held.clone(),
                            to: label.clone(),
                            file: it.file.clone(),
                            line: ln,
                            chain: Vec::new(),
                        });
                    }
                }
                let end = guard_end(m, &depth_before, ln, it.body.1);
                live.push((label, end));
            }

            // Blocking: direct token on a line with a live guard.
            if !live.is_empty() && !m.is_allowed("blocking-under-lock", ln) {
                if let Some(tok) = blocking_token_on(code, krate, &reg) {
                    let held = live.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>().join("`, `");
                    findings.push(Finding {
                        rule: "blocking-under-lock",
                        severity: Severity::Error,
                        path: it.file.clone(),
                        line: ln,
                        message: format!(
                            "blocking `{tok}()` while holding `{held}`; move the I/O \
                             outside the guard or add \
                             `// analyze:allow(blocking-under-lock) -- <why>`"
                        ),
                        chain: vec![graph.label(i)],
                        cycle: Vec::new(),
                    });
                }
            }

            // Calls while holding: propagate lock sets (lock-order) and
            // one-call-deep blocking.
            if !live.is_empty() {
                for e in graph.edges[i].iter().filter(|e| e.line == ln) {
                    let callee = &items[e.callee];
                    let callee_crate = crate_of(&callee.file);
                    if guards_in(callee_crate).contains_key(callee.name.as_str())
                        || mutex_refs_in(callee_crate).contains_key(callee.name.as_str())
                    {
                        continue; // already modelled as an acquisition
                    }
                    if !m.is_allowed("lock-order", ln) {
                        for l in &trans[e.callee] {
                            for (held, _) in &live {
                                edges.push(LockEdge {
                                    from: held.clone(),
                                    to: l.clone(),
                                    file: it.file.clone(),
                                    line: ln,
                                    chain: vec![graph.label(i), graph.label(e.callee)],
                                });
                            }
                        }
                    }
                    if !m.is_allowed("blocking-under-lock", ln) {
                        if let Some((bln, tok)) = direct_blocking[e.callee] {
                            let held =
                                live.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>().join("`, `");
                            findings.push(Finding {
                                rule: "blocking-under-lock",
                                severity: Severity::Error,
                                path: it.file.clone(),
                                line: ln,
                                message: format!(
                                    "call to `{}` (blocking `{tok}()` at {}:{bln}) while \
                                     holding `{held}`",
                                    callee.name, callee.file
                                ),
                                chain: vec![graph.label(i), graph.label(e.callee)],
                                cycle: Vec::new(),
                            });
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the label digraph.
    let mut adj: BTreeMap<&str, BTreeMap<&str, &LockEdge>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().entry(&e.to).or_insert(e);
    }
    findings.extend(find_cycles(&adj));

    // Canonical-order doc check: every nesting lock must be listed.
    if let Some(doc) = analysis_doc {
        let mut nesting: BTreeSet<&str> = BTreeSet::new();
        for e in &edges {
            nesting.insert(&e.from);
            nesting.insert(&e.to);
        }
        for label in nesting {
            if !doc.contains(&format!("`{label}`")) {
                let (file, line) =
                    reg.decl.get(label).cloned().unwrap_or((String::new(), 1));
                findings.push(Finding::new(
                    "lock-order",
                    Severity::Error,
                    file,
                    line,
                    format!(
                        "lock `{label}` participates in nested acquisition but is \
                         missing from the canonical lock order in docs/ANALYSIS.md"
                    ),
                ));
            }
        }
    }
    findings
}

/// Brace depth before each 1-based line (index 0 unused).
fn depths(m: &SourceModel) -> Vec<i64> {
    let mut out = Vec::with_capacity(m.lines.len() + 2);
    out.push(0);
    let mut d = 0i64;
    for line in &m.lines {
        out.push(d);
        for c in line.code.chars() {
            match c {
                '{' => d += 1,
                '}' => d -= 1,
                _ => {}
            }
        }
    }
    out.push(d);
    out
}

/// Where a guard acquired on `ln` stops being live: end of the enclosing
/// brace block for a `let`-bound guard (or an explicit `drop(name)`),
/// end of statement for a temporary.
fn guard_end(m: &SourceModel, depth_before: &[i64], ln: usize, body_end: usize) -> usize {
    let code = m.lines[ln - 1].code.trim_start();
    let bound_name = code.strip_prefix("let ").map(|rest| {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        rest.chars().take_while(|c| ident_char(*c)).collect::<String>()
    });
    match bound_name {
        Some(name) if !name.is_empty() && name != "_" => {
            let d0 = depth_before[ln];
            let mut end = body_end;
            for l in ln..=body_end {
                if depth_before.get(l + 1).copied().unwrap_or(0) < d0 {
                    end = l;
                    break;
                }
            }
            // An explicit drop ends it earlier.
            for l in ln + 1..=end.min(m.lines.len()) {
                let c = &m.lines[l - 1].code;
                if token_matches(c, "drop")
                    .any(|idx| c[idx + 4..].trim_start().starts_with(&format!("({name})")))
                {
                    return l;
                }
            }
            end
        }
        _ => scanner::statement_extent(&m.lines, ln).1,
    }
}

/// Lock acquisitions on one code line: `.lock()` (and `.read()` /
/// `.write()` against RwLock labels) whose receiver chain names a
/// registered lock or a `&Mutex`-returning helper.
/// Whether a call site can plausibly target a guard-returning helper fn.
/// `Method`-kind calls are excluded: `guard.store(…)` / `m.lock()` are
/// std calls that merely share a helper's name — real dotted acquisitions
/// are recognized by [`acquisitions_on`] instead. (The cost: a guard
/// helper invoked through a field receiver is missed; none exist here and
/// docs/ANALYSIS.md records the trade-off.)
fn helper_call(c: &CallSite) -> bool {
    !matches!(c.kind, CallKind::Method { .. })
}

fn acquisitions_on(
    code: &str,
    krate: &str,
    reg: &LockRegistry,
    mutex_ref_helpers: &BTreeMap<&str, String>,
) -> Vec<(String, usize)> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    for (needle, rw_only) in [(".lock()", false), (".read()", true), (".write()", true)] {
        let mut from = 0;
        while let Some(rel) = code[from..].find(needle) {
            let dot = from + rel;
            from = dot + needle.len();
            // `dot` is a byte offset; the scanner's code view is ASCII
            // for code chars, but be safe on multibyte lines.
            let Some(dot_ci) = char_index(code, dot) else { continue };
            let segments = receiver_chain(&chars, dot_ci);
            let label = segments.iter().rev().find_map(|s| {
                reg.resolve(krate, s)
                    .cloned()
                    .or_else(|| mutex_ref_helpers.get(s.as_str()).cloned())
            });
            if let Some(label) = label {
                if !rw_only || reg.rwlocks.contains(&label) {
                    out.push((label, dot));
                }
            }
        }
    }
    out
}

/// First registered lock name of the same crate appearing (at a token
/// boundary) in `code`.
fn first_lock_name_on<'a>(code: &str, krate: &str, reg: &'a LockRegistry) -> Option<&'a str> {
    reg.by_name
        .iter()
        .find(|((k, name), _)| k == krate && token_matches(code, name).next().is_some())
        .map(|(_, label)| label.as_str())
}

/// First blocking token on a code line, if any. A `.read()`/`.write()`
/// that resolves to an RwLock acquisition is not blocking.
fn blocking_token_on(code: &str, krate: &str, reg: &LockRegistry) -> Option<&'static str> {
    let chars: Vec<char> = code.chars().collect();
    for tok in BLOCKING_METHODS {
        let pat = format!(".{tok}(");
        if let Some(idx) = code.find(&pat) {
            if (tok == "read" || tok == "write") && !reg.rwlocks.is_empty() {
                if let Some(ci) = char_index(code, idx) {
                    let segs = receiver_chain(&chars, ci);
                    let is_rw = segs.iter().any(|s| {
                        reg.resolve(krate, s).is_some_and(|l| reg.rwlocks.contains(l))
                    });
                    if is_rw {
                        continue;
                    }
                }
            }
            return Some(tok);
        }
    }
    BLOCKING_FREE
        .iter()
        .copied()
        .find(|tok| token_matches(code, tok).any(|i| code[i + tok.len()..].starts_with('(')))
}

fn char_index(s: &str, byte: usize) -> Option<usize> {
    s.char_indices().position(|(b, _)| b == byte)
}

/// DFS cycle enumeration over the label digraph; one finding per
/// distinct cycle (deduped by label set).
fn find_cycles(adj: &BTreeMap<&str, BTreeMap<&str, &LockEdge>>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys() {
        // Iterative DFS from `start`, only accepting cycles through it
        // (every cycle is found from its lexicographically first node).
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for (&next, _) in adj.get(node).into_iter().flatten() {
                if next == start {
                    let mut labels: Vec<String> =
                        path.iter().map(|s| s.to_string()).collect();
                    let mut key = labels.clone();
                    key.sort();
                    if !reported.insert(key) {
                        continue;
                    }
                    // Witness description per edge around the cycle.
                    let mut witness = Vec::new();
                    for w in 0..labels.len() {
                        let a = &labels[w];
                        let b = &labels[(w + 1) % labels.len()];
                        if let Some(e) =
                            adj.get(a.as_str()).and_then(|m| m.get(b.as_str()))
                        {
                            let via = if e.chain.is_empty() {
                                String::new()
                            } else {
                                format!(" via {}", e.chain.join(" -> "))
                            };
                            witness.push(format!(
                                "{a} -> {b} at {}:{}{via}",
                                e.file, e.line
                            ));
                        }
                    }
                    let first = adj[labels[0].as_str()]
                        [labels.get(1).unwrap_or(&labels[0]).as_str()];
                    labels.push(labels[0].clone());
                    findings.push(Finding {
                        rule: "lock-order",
                        severity: Severity::Error,
                        path: first.file.clone(),
                        line: first.line,
                        message: format!(
                            "lock-order cycle {}; witnesses: {}",
                            labels.join(" -> "),
                            witness.join("; ")
                        ),
                        chain: Vec::new(),
                        cycle: labels,
                    });
                } else if path.len() < 16
                    && !path.contains(&next)
                    && next > start
                    && visited.insert(next)
                {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols;

    fn run(src: &str) -> Vec<Finding> {
        run_with_doc(src, None)
    }

    fn run_with_doc(src: &str, doc: Option<&str>) -> Vec<Finding> {
        let models = vec![SourceModel::scan("crates/serve/src/server.rs", src)];
        let ws = Box::leak(Box::new(symbols::extract(&models)));
        let graph = CallGraph::build(ws);
        lock_rules(&graph, &models, doc)
    }

    const TWO_LOCKS: &str = "use std::sync::Mutex;\nstruct S {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n";

    #[test]
    fn a_two_lock_cycle_is_reported_with_witness() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n    fn ab(&self) {{\n        let g = self.a.lock();\n        let h = self.b.lock();\n    }}\n    fn ba(&self) {{\n        let g = self.b.lock();\n        let h = self.a.lock();\n    }}\n}}\n"
        );
        let hits = run(&src);
        let cycles: Vec<&Finding> =
            hits.iter().filter(|f| f.rule == "lock-order" && !f.cycle.is_empty()).collect();
        assert_eq!(cycles.len(), 1, "{hits:?}");
        assert_eq!(cycles[0].cycle, vec!["S.a", "S.b", "S.a"]);
        assert!(cycles[0].message.contains("witnesses"));
    }

    #[test]
    fn consistent_order_is_clean_and_drop_ends_liveness() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n    fn ab(&self) {{\n        let g = self.a.lock();\n        let h = self.b.lock();\n    }}\n    fn also_ab(&self) {{\n        let g = self.a.lock();\n        drop(g);\n        let h = self.b.lock();\n        let i = self.a.lock(); // b -> a, but a was dropped first? no: b -> a edge\n    }}\n}}\n"
        );
        // ab: a->b; also_ab: b->a after drop(g) — cycle via the second fn.
        let hits = run(&src);
        assert!(
            hits.iter().any(|f| !f.cycle.is_empty()),
            "drop(g) must end a's liveness but b->a still closes the cycle: {hits:?}"
        );
        // Without the b->a acquisition there is no cycle.
        let clean = format!(
            "{TWO_LOCKS}impl S {{\n    fn ab(&self) {{\n        let g = self.a.lock();\n        let h = self.b.lock();\n    }}\n    fn a_then_b_again(&self) {{\n        let g = self.a.lock();\n        drop(g);\n        let h = self.b.lock();\n    }}\n}}\n"
        );
        assert!(run(&clean).iter().all(|f| f.cycle.is_empty()), "{:?}", run(&clean));
    }

    #[test]
    fn propagation_through_calls_closes_cycles() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n    fn outer(&self) {{\n        let g = self.a.lock();\n        self.inner();\n    }}\n    fn inner(&self) {{\n        let h = self.b.lock();\n    }}\n    fn reverse(&self) {{\n        let h = self.b.lock();\n        let g = self.a.lock();\n    }}\n}}\n"
        );
        let hits = run(&src);
        let cycle = hits.iter().find(|f| !f.cycle.is_empty()).expect("cycle expected");
        assert!(cycle.message.contains("via"), "propagated edge keeps its chain: {cycle:?}");
    }

    #[test]
    fn blocking_write_under_lock_is_flagged_direct_and_one_deep() {
        let src = "use std::sync::Mutex;\nstruct W {\n    inner: Mutex<u32>,\n}\nimpl W {\n    fn direct(&self, out: &mut dyn std::io::Write) {\n        let g = self.inner.lock();\n        out.write_all(b\"x\");\n    }\n    fn deep(&self) {\n        let g = self.inner.lock();\n        do_io();\n    }\n}\nfn do_io() {\n    let mut f = std::io::stdout();\n    f.flush();\n}\n";
        let hits = run(src);
        let blocking: Vec<&Finding> =
            hits.iter().filter(|f| f.rule == "blocking-under-lock").collect();
        assert!(
            blocking.iter().any(|f| f.line == 8 && f.message.contains("write_all")),
            "{blocking:?}"
        );
        assert!(
            blocking.iter().any(|f| f.message.contains("do_io") || f.message.contains("flush")),
            "one-call-deep flush: {blocking:?}"
        );
    }

    #[test]
    fn condvar_wait_is_not_blocking_and_allows_suppress() {
        let src = "use std::sync::{Condvar, Mutex};\nstruct Q {\n    state: Mutex<u32>,\n    cv: Condvar,\n}\nimpl Q {\n    fn pump(&self, out: &mut dyn std::io::Write) {\n        let mut g = self.state.lock();\n        g = self.cv.wait(g);\n        // analyze:allow(blocking-under-lock) -- bounded by WRITE_TIMEOUT on the socket\n        out.write_all(b\"ok\");\n    }\n}\n";
        let hits = run(src);
        assert!(
            hits.iter().all(|f| f.rule != "blocking-under-lock"),
            "{hits:?}"
        );
    }

    #[test]
    fn guard_returning_helpers_transfer_acquisition() {
        let src = "use std::sync::{Mutex, MutexGuard};\nstruct S {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\nimpl S {\n    fn lock_a(&self) -> MutexGuard<'_, u32> {\n        self.a.lock().unwrap()\n    }\n    fn ab(&self) {\n        let g = self.lock_a();\n        let h = self.b.lock();\n    }\n    fn ba(&self) {\n        let h = self.b.lock();\n        let g = self.lock_a();\n    }\n}\n";
        let hits = run(src);
        assert!(hits.iter().any(|f| !f.cycle.is_empty()), "{hits:?}");
    }

    #[test]
    fn canonical_order_doc_check() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n    fn ab(&self) {{\n        let g = self.a.lock();\n        let h = self.b.lock();\n    }}\n}}\n"
        );
        let with = run_with_doc(&src, Some("order: `S.a` before `S.b`"));
        assert!(with.iter().all(|f| !f.message.contains("canonical")), "{with:?}");
        let without = run_with_doc(&src, Some("order: `S.a` only"));
        assert!(
            without.iter().any(|f| f.message.contains("canonical") && f.message.contains("S.b")),
            "{without:?}"
        );
    }
}
