//! `aqo-analyze` — zero-dependency invariant linter for the aqo
//! workspace.
//!
//! The paper's guarantees (QO_N/QO_H cost semantics, reduction soundness)
//! are only as trustworthy as the code's invariants, and the workspace
//! documents several that ordinary tests rarely catch being broken:
//! library code must not unwind, exact-cost paths must not drift into
//! floats, relaxed atomics must be justified, the metric catalog must
//! match the code, and every search entry point must be cancellable.
//! This crate enforces all of that mechanically:
//!
//! * [`scanner`] — a hand-rolled Rust token scanner (same no-dependency
//!   policy as `aqo_obs::json`) producing per-line code/comment/string
//!   views, test-region marks, and `analyze:allow` suppression ranges;
//! * [`rules`] — the rule catalog (see `docs/ANALYSIS.md` for rationale
//!   and examples);
//! * [`baseline`] — the committed-baseline gate: only *regressions*
//!   against `analyze-baseline.json` fail.
//!
//! Two front ends share [`cli_main`]: the `aqo-analyze` binary
//! (`cargo run -p aqo-analyze`) and the `aqo analyze` subcommand. The
//! static rules are one half of the story; the dynamic half (Miri,
//! ThreadSanitizer, and the exhaustive interleaving models in
//! `aqo_core::interleave`) checks the claims the allow-comments make —
//! DESIGN.md §11 describes the division of labor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod error_kinds;
pub mod locks;
pub mod rules;
pub mod scanner;
pub mod symbols;

use baseline::Baseline;
use rules::{Finding, Severity};
use scanner::SourceModel;
use std::path::{Path, PathBuf};

/// Default baseline filename, resolved relative to the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.json";

/// Everything that can go wrong while analyzing.
#[derive(Debug)]
pub enum AnalyzeError {
    /// Filesystem trouble at `path`.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A malformed baseline document or bad invocation.
    Invalid(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Io { path, source } => write!(f, "{path}: {source}"),
            AnalyzeError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

fn io_err(path: &Path, source: std::io::Error) -> AnalyzeError {
    AnalyzeError::Io { path: path.display().to_string(), source }
}

/// Locates the workspace root by walking up from `start` until a
/// `Cargo.toml` containing `[workspace]` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Scans every `crates/*/src/**/*.rs` under `root`, in sorted order.
pub fn scan_workspace(root: &Path) -> Result<Vec<SourceModel>, AnalyzeError> {
    let crates_dir = root.join("crates");
    let mut files: Vec<PathBuf> = Vec::new();
    let crates = std::fs::read_dir(&crates_dir).map_err(|e| io_err(&crates_dir, e))?;
    for entry in crates {
        let entry = entry.map_err(|e| io_err(&crates_dir, e))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut models = Vec::with_capacity(files.len());
    for path in files {
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        models.push(SourceModel::scan(&rel, &text));
    }
    Ok(models)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalyzeError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full rule catalog over the workspace at `root`. Reads
/// `docs/OBSERVABILITY.md`, `docs/SERVING.md`, and `docs/ANALYSIS.md`
/// for the doc-sync rules (a missing doc skips that rule's doc-side
/// checks — fixture workspaces rarely carry docs).
pub fn analyze(root: &Path) -> Result<Vec<Finding>, AnalyzeError> {
    let models = scan_workspace(root)?;
    let docs = root.join("docs");
    let ctx = rules::RuleContext {
        observability_doc: std::fs::read_to_string(docs.join("OBSERVABILITY.md")).ok(),
        serving_doc: std::fs::read_to_string(docs.join("SERVING.md")).ok(),
        analysis_doc: std::fs::read_to_string(docs.join("ANALYSIS.md")).ok(),
    };
    Ok(rules::run_all(&models, &ctx))
}

/// Renders findings as `path:line: severity [rule] message` lines, with
/// indented witness lines (call chain / lock cycle) where present.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: {} [{}] {}\n",
            f.path, f.line, f.severity, f.rule, f.message
        ));
        if !f.chain.is_empty() {
            out.push_str(&format!("    chain: {}\n", f.chain.join(" -> ")));
        }
        if !f.cycle.is_empty() {
            out.push_str(&format!("    cycle: {}\n", f.cycle.join(" -> ")));
        }
    }
    out
}

/// Renders the full report (findings + gate outcome) as one JSON
/// document, schema `aqo-analyze/v2`: v1 plus per-finding `chain` /
/// `cycle` witness arrays (present only when non-empty).
pub fn render_json(findings: &[Finding], gate: &baseline::Gate) -> String {
    use aqo_obs::json::escape_into;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"aqo-analyze/v2\",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"rule\": ");
        escape_into(&mut out, f.rule);
        out.push_str(", \"severity\": ");
        escape_into(&mut out, &f.severity.to_string());
        out.push_str(", \"path\": ");
        escape_into(&mut out, &f.path);
        out.push_str(&format!(", \"line\": {}, \"message\": ", f.line));
        escape_into(&mut out, &f.message);
        for (key, list) in [("chain", &f.chain), ("cycle", &f.cycle)] {
            if !list.is_empty() {
                out.push_str(&format!(", \"{key}\": ["));
                for (j, hop) in list.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    escape_into(&mut out, hop);
                }
                out.push(']');
            }
        }
        out.push('}');
    }
    out.push_str("\n  ],\n  \"regressions\": [");
    for (i, (rule, path, found, allowed)) in gate.regressions.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"rule\": ");
        escape_into(&mut out, rule);
        out.push_str(", \"path\": ");
        escape_into(&mut out, path);
        out.push_str(&format!(", \"found\": {found}, \"allowed\": {allowed}}}"));
    }
    out.push_str(&format!(
        "\n  ],\n  \"stale\": {},\n  \"total\": {}\n}}\n",
        gate.stale.len(),
        findings.len()
    ));
    out
}

/// Parsed command-line options shared by both front ends.
struct Options {
    root: Option<PathBuf>,
    json: bool,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    rule: Option<String>,
    explain: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, AnalyzeError> {
    let mut opts = Options {
        root: None,
        json: false,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        rule: None,
        explain: None,
    };
    let mut i = 0usize;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| AnalyzeError::Invalid(format!("{} requires a value", args[i])))
        };
        match args[i].as_str() {
            "--json" => opts.json = true,
            "--no-baseline" => opts.no_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--root" => {
                opts.root = Some(PathBuf::from(value(i)?));
                i += 1;
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(value(i)?));
                i += 1;
            }
            "--rule" => {
                let r = value(i)?;
                if !rules::RULE_IDS.contains(&r.as_str()) {
                    return Err(AnalyzeError::Invalid(format!(
                        "unknown rule `{r}` (rules: {})",
                        rules::RULE_IDS.join(", ")
                    )));
                }
                opts.rule = Some(r);
                i += 1;
            }
            "--explain" => {
                let r = value(i)?;
                if !rules::RULE_IDS.contains(&r.as_str()) {
                    return Err(AnalyzeError::Invalid(format!(
                        "unknown rule `{r}` (rules: {})",
                        rules::RULE_IDS.join(", ")
                    )));
                }
                opts.explain = Some(r);
                i += 1;
            }
            other => {
                return Err(AnalyzeError::Invalid(format!(
                    "analyze: unknown flag `{other}` (flags: --json --root <dir> \
                     --baseline <file> --no-baseline --write-baseline --rule <id> \
                     --explain <id>)"
                )))
            }
        }
        i += 1;
    }
    Ok(opts)
}

/// The shared CLI entry point. Returns the process exit code: `0` clean,
/// `1` baseline regressions, `2` bad invocation or I/O trouble. Output
/// goes to stdout (report) and stderr (gate summary).
pub fn cli_main(args: &[String]) -> i32 {
    match cli_inner(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("aqo-analyze: error: {e}");
            2
        }
    }
}

/// Renders one rule's catalog entry — the `--explain <rule>` output,
/// from the same [`rules::RULE_DOCS`] table docs/ANALYSIS.md is kept in
/// sync with.
pub fn explain_rule(id: &str) -> Option<String> {
    let doc = rules::RULE_DOCS.iter().find(|d| d.id == id)?;
    Some(format!(
        "{} ({})\n\n{}\n\n{}\n\nSee docs/ANALYSIS.md for the full catalog.\n",
        doc.id, doc.severity, doc.summary, doc.detail
    ))
}

fn cli_inner(args: &[String]) -> Result<i32, AnalyzeError> {
    let opts = parse_options(args)?;
    if let Some(id) = &opts.explain {
        // Validated by parse_options, so the lookup cannot miss.
        print!("{}", explain_rule(id).unwrap_or_default());
        return Ok(0);
    }
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| io_err(Path::new("."), e))?;
            find_workspace_root(&cwd).ok_or_else(|| {
                AnalyzeError::Invalid(
                    "no workspace root found above the current directory; pass --root".into(),
                )
            })?
        }
    };
    let mut findings = analyze(&root)?;
    if let Some(rule) = &opts.rule {
        findings.retain(|f| f.rule == rule.as_str());
    }

    let baseline_path = opts.baseline.clone().unwrap_or_else(|| root.join(BASELINE_FILE));
    let baseline = if opts.no_baseline {
        Baseline::empty()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text).map_err(AnalyzeError::Invalid)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::empty(),
            Err(e) => return Err(io_err(&baseline_path, e)),
        }
    };

    if opts.write_baseline {
        let fresh = Baseline::from_findings(&findings);
        std::fs::write(&baseline_path, fresh.to_json())
            .map_err(|e| io_err(&baseline_path, e))?;
        eprintln!(
            "aqo-analyze: wrote {} ({} entries, {} findings)",
            baseline_path.display(),
            fresh.len(),
            findings.len()
        );
        return Ok(0);
    }

    let gate = baseline.gate(&findings);
    if opts.json {
        print!("{}", render_json(&findings, &gate));
    } else {
        print!("{}", render_text(&findings));
    }
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    eprintln!(
        "aqo-analyze: {} findings ({errors} errors, {warnings} warnings); \
         baseline {} entries, {} regressions, {} stale",
        findings.len(),
        baseline.len(),
        gate.regressions.len(),
        gate.stale.len()
    );
    for (rule, path, found, allowed) in &gate.regressions {
        eprintln!("aqo-analyze: REGRESSION [{rule}] {path}: {found} findings (baseline {allowed})");
    }
    if !gate.stale.is_empty() {
        eprintln!(
            "aqo-analyze: note: {} baseline entries are stale; refresh with --write-baseline",
            gate.stale.len()
        );
    }
    Ok(if gate.regressions.is_empty() { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_and_reject() {
        let ok = parse_options(&["--json".into(), "--rule".into(), "ordering-audit".into()])
            .unwrap();
        assert!(ok.json);
        assert_eq!(ok.rule.as_deref(), Some("ordering-audit"));
        assert!(parse_options(&["--rule".into(), "nope".into()]).is_err());
        assert!(parse_options(&["--frobnicate".into()]).is_err());
        assert!(parse_options(&["--baseline".into()]).is_err());
    }

    #[test]
    fn json_report_parses() {
        let mut finding = rules::Finding::new(
            "no-unwrap-in-lib",
            Severity::Error,
            "crates/core/src/x.rs",
            7,
            "a \"quoted\" message",
        );
        finding.chain = vec!["server.rs:Server::handle".into(), "engine.rs:solve".into()];
        let findings = vec![finding];
        let gate = Baseline::empty().gate(&findings);
        let doc = render_json(&findings, &gate);
        let parsed = aqo_obs::json::parse(&doc).expect("report is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(aqo_obs::json::JsonValue::as_str),
            Some("aqo-analyze/v2")
        );
        let f0 = &parsed.get("findings").and_then(aqo_obs::json::JsonValue::as_arr).unwrap()[0];
        assert_eq!(
            f0.get("chain").and_then(aqo_obs::json::JsonValue::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert!(f0.get("cycle").is_none(), "empty witnesses are omitted");
        assert_eq!(
            parsed.get("findings").and_then(aqo_obs::json::JsonValue::as_arr).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(
            parsed.get("regressions").and_then(aqo_obs::json::JsonValue::as_arr).map(<[_]>::len),
            Some(1)
        );
    }
}
