//! **error-kind-sync** — the wire error kinds emitted by `crates/serve`
//! must be classified by the client and documented.
//!
//! Source of truth: the string literals in `ErrorKind::name()`
//! (`crates/serve/src/proto.rs`) — that is the exact set a server can
//! put on the wire. Each kind must then appear:
//!
//! * in `ErrorKind::from_wire` (the client-side decoder round-trips it),
//! * somewhere in `crates/serve/src/client.rs` (the retriable/fatal
//!   classification tables and their exhaustiveness tests name every
//!   kind — an unnamed kind falls into a default arm nobody audited),
//! * backticked in `docs/SERVING.md` (operators grep the doc, not the
//!   enum).

use crate::rules::{Finding, Severity};
use crate::scanner::SourceModel;
use crate::symbols::Workspace;

/// A plausible wire kind: short lowercase identifier.
fn is_kind_literal(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 24
        && s.chars().all(|c| c.is_ascii_lowercase() || c == '_')
}

/// Runs the rule; see the module docs for the three coverage targets.
pub fn error_kind_sync(
    ws: &Workspace,
    models: &[SourceModel],
    serving_doc: Option<&str>,
) -> Vec<Finding> {
    const RULE: &str = "error-kind-sync";
    let mut findings = Vec::new();

    // The emitting enum: ErrorKind::name() in crates/serve/src/.
    let Some(name_fn) = ws.items.iter().find(|it| {
        it.name == "name"
            && it.self_type.as_deref() == Some("ErrorKind")
            && it.file.starts_with("crates/serve/src/")
            && it.body.0 != 0
    }) else {
        return findings; // no serve wire enum in this workspace/fixture
    };
    let Some(proto) = models.iter().find(|m| m.rel_path == name_fn.file) else {
        return findings;
    };
    let kinds: Vec<(String, usize)> = (name_fn.body.0..=name_fn.body.1)
        .flat_map(|ln| {
            proto.lines[ln - 1]
                .strings
                .iter()
                .filter(|s| is_kind_literal(s))
                .map(move |s| (s.clone(), ln))
        })
        .collect();

    // from_wire coverage (same file).
    let from_wire = ws.items.iter().find(|it| {
        it.name == "from_wire"
            && it.self_type.as_deref() == Some("ErrorKind")
            && it.file == name_fn.file
            && it.body.0 != 0
    });

    // Everything client.rs mentions (strings in code *and* tests: the
    // classification arrays live in the exhaustiveness tests).
    let client = models
        .iter()
        .find(|m| m.rel_path.starts_with("crates/serve/src/") && m.rel_path.ends_with("client.rs"));

    for (kind, ln) in &kinds {
        if proto.is_allowed(RULE, *ln) {
            continue;
        }
        if let Some(fw) = from_wire {
            let covered = (fw.body.0..=fw.body.1)
                .any(|l| proto.lines[l - 1].strings.iter().any(|s| s == kind));
            if !covered {
                findings.push(Finding::new(
                    RULE,
                    Severity::Error,
                    name_fn.file.clone(),
                    *ln,
                    format!(
                        "wire error kind `{kind}` is emitted by ErrorKind::name() but \
                         not decoded in ErrorKind::from_wire"
                    ),
                ));
            }
        }
        if let Some(cl) = client {
            let mentioned = cl
                .lines
                .iter()
                .any(|l| l.strings.iter().any(|s| s == kind) || l.code.contains(kind.as_str()));
            if !mentioned {
                findings.push(Finding::new(
                    RULE,
                    Severity::Error,
                    name_fn.file.clone(),
                    *ln,
                    format!(
                        "wire error kind `{kind}` has no retriable/fatal classification \
                         coverage in {} (name it in the ErrorClass tables or their \
                         exhaustiveness tests)",
                        cl.rel_path
                    ),
                ));
            }
        }
        if let Some(doc) = serving_doc {
            if !doc.contains(&format!("`{kind}`")) {
                findings.push(Finding::new(
                    RULE,
                    Severity::Error,
                    name_fn.file.clone(),
                    *ln,
                    format!(
                        "wire error kind `{kind}` is not documented (backticked) in \
                         docs/SERVING.md"
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols;

    fn run(proto: &str, client: &str, doc: Option<&str>) -> Vec<Finding> {
        let models = vec![
            SourceModel::scan("crates/serve/src/proto.rs", proto),
            SourceModel::scan("crates/serve/src/client.rs", client),
        ];
        let ws = symbols::extract(&models);
        error_kind_sync(&ws, &models, doc)
    }

    const PROTO: &str = "pub enum ErrorKind {\n    Parse,\n    Frobbed,\n}\nimpl ErrorKind {\n    pub fn name(self) -> &'static str {\n        match self {\n            ErrorKind::Parse => \"parse\",\n            ErrorKind::Frobbed => \"frobbed\",\n        }\n    }\n    pub fn from_wire(s: &str) -> ErrorKind {\n        match s {\n            \"frobbed\" => ErrorKind::Frobbed,\n            _ => ErrorKind::Parse,\n        }\n    }\n}\n";

    #[test]
    fn missing_coverage_is_reported_per_target() {
        // client only knows "parse"; doc only documents `parse`.
        let hits = run(PROTO, "fn classify(k: &str) { matches!(k, \"parse\"); }\n", Some("kinds: `parse`"));
        // `parse` missing from from_wire; `frobbed` missing from client + doc.
        assert!(
            hits.iter().any(|f| f.message.contains("`parse`") && f.message.contains("from_wire")),
            "{hits:?}"
        );
        assert!(
            hits.iter().any(|f| f.message.contains("`frobbed`") && f.message.contains("classification")),
            "{hits:?}"
        );
        assert!(
            hits.iter().any(|f| f.message.contains("`frobbed`") && f.message.contains("SERVING")),
            "{hits:?}"
        );
        assert!(!hits.iter().any(|f| f.message.contains("`parse`") && f.message.contains("SERVING")));
    }

    #[test]
    fn full_coverage_is_clean() {
        let client = "fn classify(k: &str) { matches!(k, \"parse\" | \"frobbed\"); }\n";
        let proto_full = PROTO.replace(
            "\"frobbed\" => ErrorKind::Frobbed,",
            "\"frobbed\" => ErrorKind::Frobbed,\n            \"parse\" => ErrorKind::Parse,",
        );
        let hits = run(&proto_full, client, Some("kinds: `parse`, `frobbed`"));
        assert!(hits.is_empty(), "{hits:?}");
    }
}
