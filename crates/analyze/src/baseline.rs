//! The committed-baseline gate: `aqo analyze` fails only on *regressions*
//! against `analyze-baseline.json`, so the rule catalog can be stricter
//! than the legacy code without blocking CI on day one.
//!
//! Baseline entries are `(rule, path, count)` — deliberately not
//! line-anchored, so unrelated edits that shift line numbers don't churn
//! the file. A regression is a `(rule, path)` pair whose finding count
//! exceeds its baseline allowance (new pairs have allowance 0). Pairs
//! that now undershoot their allowance are reported as *stale* so the
//! baseline gets re-tightened (`--write-baseline`), but staleness never
//! fails the gate.

use crate::rules::Finding;
use aqo_obs::json::{self, JsonValue};
use std::collections::BTreeMap;

/// Document schema identifier for the baseline file.
pub const SCHEMA: &str = "aqo-analyze-baseline/v1";

/// Allowed finding counts keyed by `(rule, path)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), u64>,
}

/// The outcome of gating findings against a baseline.
#[derive(Debug, Default)]
pub struct Gate {
    /// `(rule, path, found, allowed)` for every pair over its allowance.
    pub regressions: Vec<(String, String, u64, u64)>,
    /// `(rule, path, found, allowed)` for every pair under its allowance.
    pub stale: Vec<(String, String, u64, u64)>,
}

impl Baseline {
    /// An empty baseline (every finding is a regression).
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Captures the current findings as the new baseline.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            *entries.entry((f.rule.to_string(), f.path.clone())).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Parses the baseline document written by [`Baseline::to_json`].
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text)?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("bad baseline schema {other:?} (want {SCHEMA})")),
        }
        let entries = doc
            .get("entries")
            .and_then(JsonValue::as_arr)
            .ok_or("baseline has no `entries` array")?;
        let mut out = BTreeMap::new();
        for e in entries {
            let field = |k: &str| {
                e.get(k)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry missing `{k}`"))
            };
            let count = e
                .get("count")
                .and_then(JsonValue::as_num)
                .ok_or("baseline entry missing `count`")? as u64;
            out.insert((field("rule")?, field("path")?), count);
        }
        Ok(Baseline { entries: out })
    }

    /// Serializes as a stable, diff-friendly JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": ");
        json::escape_into(&mut out, SCHEMA);
        out.push_str(",\n  \"entries\": [");
        for (i, ((rule, path), count)) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"rule\": ");
            json::escape_into(&mut out, rule);
            out.push_str(", \"path\": ");
            json::escape_into(&mut out, path);
            out.push_str(&format!(", \"count\": {count}}}"));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Gates `findings`: anything over its `(rule, path)` allowance is a
    /// regression, anything under is stale.
    pub fn gate(&self, findings: &[Finding]) -> Gate {
        let current = Baseline::from_findings(findings);
        let mut gate = Gate::default();
        for ((rule, path), &found) in &current.entries {
            let allowed = self.entries.get(&(rule.clone(), path.clone())).copied().unwrap_or(0);
            if found > allowed {
                gate.regressions.push((rule.clone(), path.clone(), found, allowed));
            } else if found < allowed {
                gate.stale.push((rule.clone(), path.clone(), found, allowed));
            }
        }
        for ((rule, path), &allowed) in &self.entries {
            if !current.entries.contains_key(&(rule.clone(), path.clone())) {
                gate.stale.push((rule.clone(), path.clone(), 0, allowed));
            }
        }
        gate
    }

    /// Number of `(rule, path)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline allows nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn finding(rule: &'static str, path: &str, line: usize) -> Finding {
        Finding::new(rule, Severity::Error, path, line, "m")
    }

    #[test]
    fn round_trips_through_json() {
        let fs = vec![
            finding("no-unwrap-in-lib", "crates/core/src/a.rs", 3),
            finding("no-unwrap-in-lib", "crates/core/src/a.rs", 9),
            finding("ordering-audit", "crates/obs/src/lib.rs", 1),
        ];
        let b = Baseline::from_findings(&fs);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn gate_classifies_regressions_and_stale() {
        let base = Baseline::from_findings(&[
            finding("r", "a.rs", 1),
            finding("r", "a.rs", 2),
            finding("r", "gone.rs", 1),
        ]);
        // a.rs grew to 3 (regression), gone.rs dropped to 0 (stale).
        let now = vec![
            finding("r", "a.rs", 1),
            finding("r", "a.rs", 2),
            finding("r", "a.rs", 3),
        ];
        let gate = base.gate(&now);
        assert_eq!(gate.regressions, vec![("r".into(), "a.rs".into(), 3, 2)]);
        assert_eq!(gate.stale, vec![("r".into(), "gone.rs".into(), 0, 1)]);
    }

    #[test]
    fn line_shifts_do_not_regress() {
        let base = Baseline::from_findings(&[finding("r", "a.rs", 10)]);
        let gate = base.gate(&[finding("r", "a.rs", 999)]);
        assert!(gate.regressions.is_empty());
        assert!(gate.stale.is_empty());
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(Baseline::parse("{\"schema\": \"nope\", \"entries\": []}").is_err());
    }
}
