//! Integration tests over the committed fixture workspace in
//! `tests/fixtures/ws/`, which exercises every rule three ways: a plain
//! hit, an `analyze:allow` suppression, and a baseline suppression. Plus
//! the self-check: the real workspace must gate clean against the real
//! committed `analyze-baseline.json`.

use aqo_analyze::baseline::Baseline;
use aqo_analyze::rules::Severity;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn real_root() -> PathBuf {
    // crates/analyze -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/analyze")
        .to_path_buf()
}

#[test]
fn fixture_findings_hit_every_rule_and_respect_allows() {
    let findings = aqo_analyze::analyze(&fixture_root()).expect("fixture scan");
    let got: Vec<(String, String, usize)> = findings
        .iter()
        .map(|f| (f.rule.to_string(), f.path.clone(), f.line))
        .collect();
    let want: Vec<(String, String, usize)> = [
        ("no-unwrap-in-lib", "crates/core/src/legacy.rs", 5),
        ("no-unwrap-in-lib", "crates/core/src/lib.rs", 8),
        ("ordering-audit", "crates/core/src/lib.rs", 19),
        ("ordering-audit", "crates/core/src/lib.rs", 22),
        ("counter-catalog-sync", "crates/core/src/lib.rs", 28),
        ("no-float-in-exact", "crates/core/src/qon.rs", 3),
        ("no-float-in-exact", "crates/core/src/qon.rs", 4),
        ("budget-hook-coverage", "crates/optimizer/src/lib.rs", 6),
        ("counter-catalog-sync", "docs/OBSERVABILITY.md", 11),
        // The seeded known-bad serve crates, one finding each (their
        // allow-annotated twins stay clean).
        ("blocking-under-lock", "crates/serve/src/blocking.rs", 15),
        ("lock-order", "crates/serve/src/lock_cycle.rs", 14),
        ("panic-path", "crates/serve/src/panic_hot.rs", 27),
        ("error-kind-sync", "crates/serve/src/proto.rs", 13),
    ]
    .into_iter()
    .map(|(r, p, l)| (r.to_string(), p.to_string(), l))
    .collect();
    // Sorted by (path, line, rule), same as run_all's output order.
    let mut want_sorted = want.clone();
    want_sorted.sort_by(|a, b| (&a.1, a.2, &a.0).cmp(&(&b.1, b.2, &b.0)));
    assert_eq!(got, want_sorted, "full findings: {findings:#?}");

    // Severity split: budget-hook + SeqCst are warnings, the rest errors.
    let warnings: Vec<_> =
        findings.iter().filter(|f| f.severity == Severity::Warning).collect();
    assert_eq!(warnings.len(), 2, "{warnings:?}");
}

/// The seeded lock cycle fails with its witness cycle printed, and the
/// reachable panic carries the full entry→site call chain.
#[test]
fn fixture_witnesses_name_the_cycle_and_the_chain() {
    let findings = aqo_analyze::analyze(&fixture_root()).expect("fixture scan");

    let cycle = findings
        .iter()
        .find(|f| f.rule == "lock-order" && !f.cycle.is_empty())
        .expect("seeded lock cycle");
    assert_eq!(cycle.cycle, vec!["Pair.a", "Pair.b", "Pair.a"]);
    assert!(cycle.message.contains("witnesses:"), "{cycle:?}");
    assert!(cycle.message.contains("lock_cycle.rs:14"), "{cycle:?}");
    assert!(cycle.message.contains("lock_cycle.rs:20"), "{cycle:?}");

    let panic = findings
        .iter()
        .find(|f| f.rule == "panic-path")
        .expect("seeded reachable panic");
    assert_eq!(
        panic.chain,
        vec![
            "panic_hot.rs:Hot::handle",
            "panic_hot.rs:Hot::step",
            "panic_hot.rs:boom"
        ]
    );

    // Both witnesses survive the text rendering (what CI logs show).
    let text = aqo_analyze::render_text(&findings);
    assert!(text.contains("cycle: Pair.a -> Pair.b -> Pair.a"), "{text}");
    assert!(text.contains("chain: panic_hot.rs:Hot::handle ->"), "{text}");
}

#[test]
fn fixture_baseline_gates_legacy_but_not_new_findings() {
    let root = fixture_root();
    let findings = aqo_analyze::analyze(&root).expect("fixture scan");
    let text = std::fs::read_to_string(root.join(aqo_analyze::BASELINE_FILE)).expect("baseline");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let gate = baseline.gate(&findings);

    // legacy.rs is allowed by the baseline: it must NOT be a regression.
    assert!(
        !gate.regressions.iter().any(|(_, p, _, _)| p.contains("legacy.rs")),
        "{:?}",
        gate.regressions
    );
    // Everything else is new relative to the baseline.
    assert_eq!(gate.regressions.len(), 10, "{:?}", gate.regressions);
    // The baseline's gone.rs entry no longer matches anything: stale.
    assert_eq!(gate.stale.len(), 1, "{:?}", gate.stale);
    assert!(gate.stale[0].1.contains("gone.rs"));
}

#[test]
fn cli_exit_codes() {
    let root = fixture_root();
    let s = |v: &str| v.to_string();
    // Regressions against the fixture baseline: exit 1.
    assert_eq!(aqo_analyze::cli_main(&[s("--root"), s(root.to_str().unwrap())]), 1);
    // Bad flag / bad rule: exit 2.
    assert_eq!(aqo_analyze::cli_main(&[s("--frobnicate")]), 2);
    assert_eq!(aqo_analyze::cli_main(&[s("--rule"), s("nope")]), 2);
    // A rule with findings and no baseline: exit 1.
    assert_eq!(
        aqo_analyze::cli_main(&[
            s("--root"),
            s(root.to_str().unwrap()),
            s("--no-baseline"),
            s("--rule"),
            s("no-float-in-exact"),
        ]),
        1
    );
    // --explain needs no workspace at all: exit 0 for a known rule,
    // exit 2 for an unknown one.
    assert_eq!(aqo_analyze::cli_main(&[s("--explain"), s("lock-order")]), 0);
    assert_eq!(aqo_analyze::cli_main(&[s("--explain"), s("nope")]), 2);
}

/// `--explain` output comes from the same table as the doc catalog, and
/// docs/ANALYSIS.md carries a `### `rule`` heading for every rule id —
/// the sync that keeps findings self-serve debuggable.
#[test]
fn explain_and_analysis_doc_cover_every_rule() {
    let doc = std::fs::read_to_string(real_root().join("docs/ANALYSIS.md"))
        .expect("docs/ANALYSIS.md");
    for id in aqo_analyze::rules::RULE_IDS {
        let text = aqo_analyze::explain_rule(id).expect("every rule id has a doc entry");
        assert!(text.starts_with(id), "{id}: {text}");
        assert!(text.contains("docs/ANALYSIS.md"), "{id}: {text}");
        assert!(
            doc.contains(&format!("### `{id}`")),
            "docs/ANALYSIS.md is missing the `### `{id}`` catalog heading"
        );
    }
}

#[test]
fn write_baseline_then_gate_is_clean() {
    let root = fixture_root();
    let tmp = std::env::temp_dir()
        .join(format!("aqo-analyze-fixture-baseline-{}.json", std::process::id()));
    let s = |v: &str| v.to_string();
    let path = tmp.to_str().unwrap();
    // Capture the current findings as a fresh baseline…
    assert_eq!(
        aqo_analyze::cli_main(&[
            s("--root"),
            s(root.to_str().unwrap()),
            s("--write-baseline"),
            s("--baseline"),
            s(path),
        ]),
        0
    );
    // …then gating against it is clean (exit 0), JSON mode included.
    assert_eq!(
        aqo_analyze::cli_main(&[
            s("--root"),
            s(root.to_str().unwrap()),
            s("--baseline"),
            s(path),
            s("--json"),
        ]),
        0
    );
    let _ = std::fs::remove_file(&tmp);
}

/// The self-check the CI gate relies on: the real workspace, gated
/// against the real committed baseline, has zero regressions.
#[test]
fn real_workspace_gates_clean_against_committed_baseline() {
    let root = real_root();
    let findings = aqo_analyze::analyze(&root).expect("workspace scan");
    let text = std::fs::read_to_string(root.join(aqo_analyze::BASELINE_FILE))
        .expect("committed analyze-baseline.json at the workspace root");
    let baseline = Baseline::parse(&text).expect("committed baseline parses");
    let gate = baseline.gate(&findings);
    assert!(
        gate.regressions.is_empty(),
        "lint regressions against the committed baseline:\n{:#?}\n\
         fix the findings or (for sanctioned violations) refresh with\n\
         `cargo run -p aqo-analyze -- --write-baseline`",
        gate.regressions
    );
}
