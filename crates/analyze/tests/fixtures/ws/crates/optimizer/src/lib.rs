//! Fixture: exercises budget-hook-coverage.

pub struct Budget;
pub struct Plan;

pub fn optimize_bad(n: usize) -> Plan {
    let _ = n;
    Plan
}

pub fn optimize_good(n: usize) -> Plan {
    optimize_good_with_budget(n, &Budget)
}

pub fn optimize_good_with_budget(n: usize, budget: &Budget) -> Plan {
    let _ = (n, budget);
    Plan
}

pub fn optimize_inline(n: usize, budget: &Budget) -> Plan {
    let _ = (n, budget);
    Plan
}

// analyze:allow(budget-hook-coverage) -- fixture: bounded polynomial work
pub fn optimize_allowed(n: usize) -> Plan {
    let _ = n;
    Plan
}

fn private_optimize_helper() {}

pub fn not_an_entry_point() {
    private_optimize_helper();
}
