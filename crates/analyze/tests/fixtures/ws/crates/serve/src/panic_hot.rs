//! Fixture: a panic token reachable from a serve entry point — the
//! `panic-path` pass must report it with the full call chain, and the
//! allow-annotated twin must stay clean.

pub struct Hot {
    tail: Option<u32>,
}

impl Hot {
    pub fn handle(&self) {
        self.step();
    }

    fn step(&self) {
        boom();
    }

    pub fn handle_quietly(&self) -> u32 {
        // analyze:allow(panic-path) -- fixture: the justified allow keeps
        // this entry clean
        self.tail.unwrap()
    }
}

fn boom() {
    let v: Option<u32> = None;
    v.unwrap();
}
