//! Fixture: blocking I/O while a lock guard is live — `append` must be a
//! `blocking-under-lock` finding; the allow-annotated twin stays clean.

use std::io::Write;
use std::sync::Mutex;

pub struct Journal {
    seq: Mutex<u64>,
}

impl Journal {
    pub fn append(&self, out: &mut dyn Write, line: &[u8]) {
        let mut g = self.seq.lock().unwrap();
        *g += 1;
        out.write_all(line).ok();
    }

    pub fn append_bounded(&self, out: &mut dyn Write, line: &[u8]) {
        let mut g = self.seq.lock().unwrap();
        *g += 1;
        // analyze:allow(blocking-under-lock) -- fixture: the hold is
        // bounded by a write timeout on the sink
        out.write_all(line).ok();
    }
}
