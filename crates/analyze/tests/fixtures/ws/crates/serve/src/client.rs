//! Fixture: the retriable/fatal classification table — deliberately
//! missing `mystery` so the sync rule has something to find.

pub fn is_retriable(kind: &str) -> bool {
    matches!(kind, "parse")
}
