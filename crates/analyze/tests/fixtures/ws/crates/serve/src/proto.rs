//! Fixture: wire error kinds — `mystery` is emitted but never named in
//! the client classification, so `error-kind-sync` must flag it.

pub enum ErrorKind {
    Parse,
    Mystery,
}

impl ErrorKind {
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Mystery => "mystery",
        }
    }

    pub fn from_wire(s: &str) -> ErrorKind {
        match s {
            "mystery" => ErrorKind::Mystery,
            "parse" => ErrorKind::Parse,
            _ => ErrorKind::Parse,
        }
    }
}
