//! Fixture: a two-lock acquisition cycle — `ab` nests `a → b`, `ba`
//! nests `b → a`; the `lock-order` pass must fail with the witness cycle.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let g = self.a.lock().unwrap();
        let h = self.b.lock().unwrap();
        *g + *h
    }

    pub fn ba(&self) -> u32 {
        let h = self.b.lock().unwrap();
        let g = self.a.lock().unwrap();
        *g + *h
    }
}
