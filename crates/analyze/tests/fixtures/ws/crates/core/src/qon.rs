//! Fixture: exercises no-float-in-exact in an exact-cost module.

pub fn float_hit(x: u64) -> f64 {
    x as f64
}

// analyze:allow(no-float-in-exact) -- fixture: the sanctioned lossy bridge
pub fn float_allowed(x: u64) -> f64 {
    x as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn floats_in_tests_are_fine() {
        let _x: f64 = 1.0;
    }
}
