//! Fixture: exercises no-unwrap-in-lib, ordering-audit and
//! counter-catalog-sync (hits, allow suppressions, test regions).
//! Scanned as text only — never compiled.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn unwrap_hit(x: Option<u32>) -> u32 {
    x.unwrap() // no-unwrap-in-lib hit
}

pub fn unwrap_allowed(x: Option<u32>) -> u32 {
    x.unwrap() // analyze:allow(no-unwrap-in-lib) -- fixture: invariant holds
}

// A string literal mentioning .unwrap() must not trip the rule.
pub const DOC: &str = "call .unwrap() at your own risk";

pub fn atomics(a: &AtomicU64) {
    a.load(Ordering::Relaxed); // ordering-audit hit (no justification)
    // ordering: fixture — independent counter, readers join first.
    a.fetch_add(1, Ordering::Relaxed);
    a.store(0, Ordering::SeqCst); // ordering-audit SeqCst warning
}

pub fn metrics() {
    aqo_obs::counter_handle!("fixture.hits").add(1);
    aqo_obs::gauge("fixture.depth").set(3);
    aqo_obs::counter("fixture.undocumented").add(1); // catalog-sync hit
    aqo_obs::counter("fixture.shadow").add(1); // analyze:allow(counter-catalog-sync) -- fixture-only name
    let _guard = aqo_obs::span("fix_span");
    aqo_obs::journal::event("fix_event", vec![("n", 1.into())]);
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
